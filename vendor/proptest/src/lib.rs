//! Offline stand-in for `proptest` covering the API blockrep uses.
//!
//! Property tests still generate random inputs and run the body per case —
//! with a per-test deterministic seed, so failures reproduce — but there is
//! **no shrinking**: a failing case reports the panic for the original
//! input. Supported surface: `proptest!` (with optional
//! `#![proptest_config(...)]`), `prop_oneof!` (weighted and unweighted),
//! `prop_assert!`/`prop_assert_eq!`, `Strategy::prop_map`, `any::<T>()`,
//! `Just`, integer and `f64` range strategies, tuple strategies, and
//! `prop::collection::{vec, btree_set}`.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Case-count configuration and the deterministic per-test generator.

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// How a test case fails; bodies may `?`-propagate it.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    /// Per-test configuration (only the case count is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The generator strategies draw from. Seeded from the test's name so
    /// every run of a given test sees the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// A generator whose stream is determined by `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }
    }

    impl Rng for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Object-safe strategy view, used by [`Union`] to mix arm types.
    pub trait AnyStrategy<V> {
        /// Draws one value.
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> AnyStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Boxes a strategy for use as a [`Union`] arm.
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn AnyStrategy<S::Value>> {
        Box::new(s)
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Full-range generation for primitive types; see [`any`].
    #[derive(Clone, Debug)]
    pub struct Any<T> {
        marker: PhantomData<fn() -> T>,
    }

    /// Types [`any`] can generate.
    pub trait Arbitrary: Sized {
        /// Draws one value from the type's whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {
            $(impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            })*
        };
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// A strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            marker: PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_strategy_for_uint_range {
        ($($t:ty),*) => {
            $(impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            })*
        };
    }

    impl_strategy_for_uint_range!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_strategy_for_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_strategy_for_tuple!(A: 0);
    impl_strategy_for_tuple!(A: 0, B: 1);
    impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
    impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
    impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    /// Weighted choice between arms of differing strategy types; built by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn AnyStrategy<V>>)>,
        total_weight: u64,
    }

    impl<V> Union<V> {
        /// Builds a union from `(weight, strategy)` arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty or all weights are zero.
        pub fn new(arms: Vec<(u32, Box<dyn AnyStrategy<V>>)>) -> Self {
            let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(
                total_weight > 0,
                "prop_oneof! needs a positive total weight"
            );
            Union { arms, total_weight }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.random_range(0..self.total_weight);
            for (weight, arm) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return arm.generate_dyn(rng);
                }
                pick -= weight;
            }
            unreachable!("weighted pick out of range")
        }
    }

    /// Collection strategies.
    pub mod collection {
        use super::{Strategy, TestRng};
        use rand::Rng;
        use std::collections::BTreeSet;
        use std::ops::Range;

        /// Generates `Vec`s with lengths drawn from `size`.
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// A strategy for `Vec<S::Value>` with `size.start..size.end` items.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.random_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Generates `BTreeSet`s; see [`btree_set`].
        #[derive(Clone, Debug)]
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// A strategy for `BTreeSet<S::Value>` with up to `size.end - 1`
        /// elements (duplicates collapse, as in real proptest).
        pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy { element, size }
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.random_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    //! Everything a property test needs, for glob import.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of the crate root (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::strategy::collection;
    }
}

/// Asserts a condition inside a property test (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => {
        assert!($($args)*)
    };
}

/// Asserts equality inside a property test (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => {
        assert_eq!($($args)*)
    };
}

/// Asserts inequality inside a property test (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => {
        assert_ne!($($args)*)
    };
}

/// Weighted (`w => strategy`) or unweighted choice between strategies whose
/// values share one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases. Bodies
/// may use `?` on `Result<_, TestCaseError>`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let strategies = ($($strat,)+);
                for case in 0..config.cases {
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("property case {case} failed: {e}");
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot,
        Line(u8),
        Rect(u8, u8),
    }

    fn shape() -> impl Strategy<Value = Shape> {
        prop_oneof![
            1 => Just(Shape::Dot),
            3 => any::<u8>().prop_map(Shape::Line),
            3 => (any::<u8>(), any::<u8>()).prop_map(|(w, h)| Shape::Rect(w, h)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn unions_generate_every_arm(shapes in prop::collection::vec(shape(), 32..33)) {
            // With 128 cases of 32 draws each, all arms must appear overall;
            // per-case we only check the values are well-formed.
            for s in shapes {
                match s {
                    Shape::Dot | Shape::Line(_) | Shape::Rect(_, _) => {}
                }
            }
        }

        #[test]
        fn bodies_may_use_question_mark(x in 0u8..10) {
            fn check(x: u8) -> Result<(), TestCaseError> {
                if x > 9 {
                    return Err(TestCaseError::fail("impossible"));
                }
                Ok(())
            }
            check(x)?;
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = crate::strategy::collection::vec(any::<u32>(), 0..16);
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..32 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
