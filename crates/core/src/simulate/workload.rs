//! Read/write request generation.

use blockrep_types::BlockIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the workload picks blocks — the locality knob that decides how much
/// a buffer cache (Figure 1) can help.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPattern {
    /// Every block equally likely (the §5 cost model's implicit default).
    Uniform,
    /// Zipf-distributed popularity with exponent `theta` — the skew real
    /// file accesses exhibit; higher `theta` = hotter hot set.
    Zipf(f64),
    /// A sequential scan that wraps around — backup/scan workloads, the
    /// buffer cache's worst case.
    Sequential,
}

impl AccessPattern {
    fn sampler(&self, num_blocks: u64) -> PatternState {
        match self {
            AccessPattern::Uniform => PatternState::Uniform,
            AccessPattern::Sequential => PatternState::Sequential { next: 0 },
            AccessPattern::Zipf(theta) => {
                assert!(
                    theta.is_finite() && *theta > 0.0,
                    "zipf exponent must be positive"
                );
                // Cumulative distribution over ranks 1..=num_blocks.
                let mut cdf = Vec::with_capacity(num_blocks as usize);
                let mut total = 0.0;
                for rank in 1..=num_blocks {
                    total += 1.0 / (rank as f64).powf(*theta);
                    cdf.push(total);
                }
                for c in &mut cdf {
                    *c /= total;
                }
                PatternState::Zipf { cdf }
            }
        }
    }
}

#[derive(Debug, Clone)]
enum PatternState {
    Uniform,
    Sequential { next: u64 },
    Zipf { cdf: Vec<f64> },
}

impl PatternState {
    fn sample(&mut self, num_blocks: u64, rng: &mut StdRng) -> BlockIndex {
        match self {
            PatternState::Uniform => BlockIndex::new(rng.random_range(0..num_blocks)),
            PatternState::Sequential { next } => {
                let k = *next;
                *next = (*next + 1) % num_blocks;
                BlockIndex::new(k)
            }
            PatternState::Zipf { cdf } => {
                let u: f64 = rng.random();
                let rank = cdf.partition_point(|&c| c < u);
                BlockIndex::new(rank.min(cdf.len() - 1) as u64)
            }
        }
    }
}

/// One file-system-level block request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Read a block.
    Read(BlockIndex),
    /// Write a block (payload synthesized by the driver).
    Write(BlockIndex),
}

/// A stream of block requests with a fixed read:write ratio over uniformly
/// random blocks — the workload shape of §5's composite cost "one write and
/// `x` reads", with `x = 2.5` as the observed UNIX ratio the paper cites
/// from the BSD trace study.
///
/// # Examples
///
/// ```
/// use blockrep_core::simulate::workload::{Op, WorkloadGen};
///
/// let mut gen = WorkloadGen::new(2.5, 64, 42);
/// let ops: Vec<Op> = (0..1000).map(|_| gen.next_op()).collect();
/// let reads = ops.iter().filter(|op| matches!(op, Op::Read(_))).count();
/// assert!((650..780).contains(&reads)); // ≈ 2.5 / 3.5 of requests
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    reads_per_write: f64,
    num_blocks: u64,
    rng: StdRng,
    pattern: PatternState,
}

impl WorkloadGen {
    /// Creates a generator issuing `reads_per_write` reads per write on a
    /// device of `num_blocks` blocks, uniformly over blocks, seeded
    /// deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `reads_per_write` is negative/non-finite or `num_blocks`
    /// is zero.
    pub fn new(reads_per_write: f64, num_blocks: u64, seed: u64) -> Self {
        Self::with_pattern(reads_per_write, num_blocks, seed, AccessPattern::Uniform)
    }

    /// Creates a generator with an explicit block [`AccessPattern`].
    ///
    /// # Panics
    ///
    /// As [`new`](Self::new), plus a non-positive Zipf exponent.
    pub fn with_pattern(
        reads_per_write: f64,
        num_blocks: u64,
        seed: u64,
        pattern: AccessPattern,
    ) -> Self {
        assert!(
            reads_per_write.is_finite() && reads_per_write >= 0.0,
            "read:write ratio must be finite and nonnegative"
        );
        assert!(num_blocks > 0, "a device needs at least one block");
        WorkloadGen {
            reads_per_write,
            num_blocks,
            rng: StdRng::seed_from_u64(seed),
            pattern: pattern.sampler(num_blocks),
        }
    }

    /// The configured reads-per-write ratio.
    pub fn reads_per_write(&self) -> f64 {
        self.reads_per_write
    }

    /// Draws the next request.
    pub fn next_op(&mut self) -> Op {
        let k = self.pattern.sample(self.num_blocks, &mut self.rng);
        let p_read = self.reads_per_write / (1.0 + self.reads_per_write);
        if self.rng.random::<f64>() < p_read {
            Op::Read(k)
        } else {
            Op::Write(k)
        }
    }
}

impl Iterator for WorkloadGen {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        Some(self.next_op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_zero_is_write_only() {
        let mut gen = WorkloadGen::new(0.0, 8, 1);
        assert!((0..100).all(|_| matches!(gen.next_op(), Op::Write(_))));
    }

    #[test]
    fn blocks_stay_in_range() {
        let gen = WorkloadGen::new(1.0, 16, 2);
        for op in gen.take(1000) {
            let k = match op {
                Op::Read(k) | Op::Write(k) => k,
            };
            assert!(k.as_u64() < 16);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<Op> = WorkloadGen::new(2.5, 32, 7).take(50).collect();
        let b: Vec<Op> = WorkloadGen::new(2.5, 32, 7).take(50).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sequential_pattern_scans_and_wraps() {
        let mut gen = WorkloadGen::with_pattern(0.0, 3, 1, AccessPattern::Sequential);
        let ks: Vec<u64> = (0..7)
            .map(|_| match gen.next_op() {
                Op::Read(k) | Op::Write(k) => k.as_u64(),
            })
            .collect();
        assert_eq!(ks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn zipf_pattern_is_head_heavy() {
        let gen = WorkloadGen::with_pattern(1.0, 64, 5, AccessPattern::Zipf(1.0));
        let n = 20_000;
        let head = gen
            .take(n)
            .filter(|op| {
                let k = match op {
                    Op::Read(k) | Op::Write(k) => k.as_u64(),
                };
                k < 8 // the 8 hottest of 64 blocks
            })
            .count();
        // Under uniform access the head would get 12.5% of requests; under
        // Zipf(1) over 64 blocks it gets ~57%.
        assert!(
            head as f64 / n as f64 > 0.45,
            "head share {}",
            head as f64 / n as f64
        );
    }

    #[test]
    fn zipf_blocks_stay_in_range() {
        let gen = WorkloadGen::with_pattern(1.0, 16, 9, AccessPattern::Zipf(0.8));
        for op in gen.take(2_000) {
            let k = match op {
                Op::Read(k) | Op::Write(k) => k.as_u64(),
            };
            assert!(k < 16);
        }
    }

    #[test]
    fn empirical_ratio_matches_configuration() {
        for ratio in [1.0, 2.0, 4.0] {
            let gen = WorkloadGen::new(ratio, 8, 3);
            let n = 20_000;
            let reads = gen.take(n).filter(|op| matches!(op, Op::Read(_))).count();
            let measured = reads as f64 / (n - reads) as f64;
            assert!(
                (measured - ratio).abs() < 0.25 * ratio,
                "ratio {ratio}: measured {measured}"
            );
        }
    }
}
