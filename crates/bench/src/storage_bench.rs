//! Storage durability benchmark: group commit vs per-install fsync.
//!
//! `blockrep bench --suite storage` drives a stream of block installs
//! through a [`Journaled`] device — a [`FileStore`] data image behind a
//! [`FileStore`]-backed write-ahead journal — at several group-commit batch
//! windows and times each install. Window 1 is the per-install-fsync
//! baseline: every append commits immediately, one `sync_data` per install,
//! exactly what a journal without group commit would pay. Larger windows
//! amortise the same durability barrier over the whole batch (one
//! sequential journal write plus a single `sync_data` per `window`
//! installs), which is where the paper's §3.2 write-all durability becomes
//! affordable.
//!
//! The data image, journal geometry and install stream are byte-identical
//! across windows; the only variable is how many appends share one commit.
//! The suite emits `BENCH_storage.json` (schema [`SCHEMA`]) with ops/s,
//! p50/p99 and the actual journal sync count per window, plus the
//! window-over-baseline speedups the PR's acceptance criterion reads off.

use blockrep_obs::metrics::Histogram;
use blockrep_storage::{BlockDevice, FileStore, Journaled, WalRecord};
use blockrep_types::{BlockData, BlockIndex, VersionNumber};
use std::time::Instant;

/// Schema identifier written into (and required from) the JSON report.
pub const SCHEMA: &str = "blockrep.bench.storage/v1";

/// The group-commit batch windows the suite sweeps, baseline first.
pub const WINDOWS: [usize; 4] = [1, 4, 16, 64];

/// Parameters of one storage benchmark suite run.
#[derive(Debug, Clone, Copy)]
pub struct StorageBenchConfig {
    /// Blocks in the data image.
    pub data_blocks: u64,
    /// Bytes per block (journal and data image share the geometry).
    pub block_size: usize,
    /// Installs timed per window.
    pub writes: u64,
}

impl StorageBenchConfig {
    /// The acceptance-criterion default: 4 KiB blocks, enough installs for
    /// stable percentiles.
    pub fn new() -> StorageBenchConfig {
        StorageBenchConfig {
            data_blocks: 64,
            block_size: 4096,
            writes: 256,
        }
    }

    /// Journal blocks needed to hold the whole install stream without a
    /// mid-run checkpoint (a checkpoint would add data-image syncs and
    /// muddy the per-window comparison).
    fn journal_blocks(&self) -> u64 {
        let record = WalRecord {
            block: BlockIndex::new(0),
            version: VersionNumber::new(1),
            payload: BlockData::zeroed(self.block_size),
        }
        .encoded_len() as u64;
        (self.writes * record).div_ceil(self.block_size as u64) + 2
    }
}

impl Default for StorageBenchConfig {
    fn default() -> StorageBenchConfig {
        StorageBenchConfig::new()
    }
}

/// One measured batch window.
#[derive(Debug, Clone)]
pub struct StorageCaseResult {
    /// Group-commit batch window (1 = per-install fsync).
    pub window: usize,
    /// Installs timed.
    pub ops: u64,
    /// Installs per second over the timed section.
    pub ops_per_sec: f64,
    /// Median per-install latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-install latency, microseconds.
    pub p99_us: f64,
    /// Journal commits the run actually performed — each is exactly one
    /// `sync_data` on the journal file.
    pub syncs: u64,
    /// Latency samples backing the percentiles.
    pub samples: u64,
    /// True when `samples` is below
    /// [`blockrep_obs::metrics::LOW_CONFIDENCE_SAMPLES`], meaning the
    /// percentile estimates above are noisy.
    pub low_confidence: bool,
}

/// Window-over-baseline throughput ratio.
#[derive(Debug, Clone, Copy)]
pub struct StorageSpeedup {
    /// The batch window being compared to the window-1 baseline.
    pub window: usize,
    /// `window.ops_per_sec / baseline.ops_per_sec`.
    pub ratio: f64,
}

/// The full suite result: every window plus the derived speedups.
#[derive(Debug, Clone)]
pub struct StorageBenchReport {
    /// The configuration that produced this report.
    pub config: StorageBenchConfig,
    /// One result per entry of [`WINDOWS`].
    pub results: Vec<StorageCaseResult>,
    /// Window-over-baseline ratios for every window above 1.
    pub speedups: Vec<StorageSpeedup>,
}

fn temp_path(tag: &str, window: usize) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "blockrep-storage-bench-{tag}-w{window}-{}",
        std::process::id()
    ));
    p
}

/// Measures one batch window: `cfg.writes` installs through a journaled
/// file-backed device, ending with the commit that makes the tail durable.
pub fn run_case(cfg: &StorageBenchConfig, window: usize) -> StorageCaseResult {
    let data_path = temp_path("data", window);
    let journal_path = temp_path("journal", window);
    let data = FileStore::create(&data_path, cfg.data_blocks, cfg.block_size)
        .expect("benchmark data image");
    let journal = FileStore::create(&journal_path, cfg.journal_blocks(), cfg.block_size)
        .expect("benchmark journal");
    let dev = Journaled::create(data, journal, window).expect("benchmark journaled device");
    let latencies = Histogram::new();
    let started = Instant::now();
    for i in 0..cfg.writes {
        let k = BlockIndex::new(i % cfg.data_blocks);
        let payload = BlockData::from(vec![(i % 251) as u8 + 1; cfg.block_size]);
        let timer = latencies.timer();
        dev.write_block(k, payload).expect("benchmark install");
        drop(timer);
    }
    // The tail of the last batch is not durable until this commit; charging
    // it to the timed section keeps every window honest about the same
    // durability point.
    dev.flush().expect("final commit");
    let elapsed = started.elapsed().as_secs_f64();
    let stats = dev.stats();
    drop(dev);
    let _ = std::fs::remove_file(&data_path);
    let _ = std::fs::remove_file(&journal_path);
    let summary = latencies.summary();
    StorageCaseResult {
        window,
        ops: cfg.writes,
        ops_per_sec: if elapsed > 0.0 {
            cfg.writes as f64 / elapsed
        } else {
            0.0
        },
        p50_us: summary.p50 / 1_000.0,
        p99_us: summary.p99 / 1_000.0,
        syncs: stats.commits,
        samples: summary.count,
        low_confidence: summary.low_confidence(),
    }
}

/// Runs every window of [`WINDOWS`] and derives the speedups.
pub fn run_suite(cfg: &StorageBenchConfig) -> StorageBenchReport {
    let results: Vec<StorageCaseResult> = WINDOWS.iter().map(|&w| run_case(cfg, w)).collect();
    let speedups = compute_speedups(&results);
    StorageBenchReport {
        config: *cfg,
        results,
        speedups,
    }
}

/// Derives window-over-baseline ratios from a result set.
pub fn compute_speedups(results: &[StorageCaseResult]) -> Vec<StorageSpeedup> {
    let Some(baseline) = results.iter().find(|r| r.window == 1) else {
        return Vec::new();
    };
    results
        .iter()
        .filter(|r| r.window != 1 && baseline.ops_per_sec > 0.0)
        .map(|r| StorageSpeedup {
            window: r.window,
            ratio: r.ops_per_sec / baseline.ops_per_sec,
        })
        .collect()
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_string()
    }
}

impl StorageBenchReport {
    /// The report as `blockrep.bench.storage/v1` JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!(
            "  \"data_blocks\": {},\n",
            self.config.data_blocks
        ));
        out.push_str(&format!("  \"block_size\": {},\n", self.config.block_size));
        out.push_str(&format!(
            "  \"journal_blocks\": {},\n",
            self.config.journal_blocks()
        ));
        out.push_str(&format!("  \"writes\": {},\n", self.config.writes));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"window\": {}, \"ops\": {}, \"ops_per_sec\": {}, \"p50_us\": {}, \
                 \"p99_us\": {}, \"syncs\": {}, \"samples\": {}, \"low_confidence\": {}}}{}\n",
                r.window,
                r.ops,
                json_f64(r.ops_per_sec),
                json_f64(r.p50_us),
                json_f64(r.p99_us),
                r.syncs,
                r.samples,
                r.low_confidence,
                if i + 1 < self.results.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"speedups\": [\n");
        for (i, s) in self.speedups.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"window\": {}, \"over_per_install_fsync\": {}}}{}\n",
                s.window,
                json_f64(s.ratio),
                if i + 1 < self.speedups.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// A human-readable table of the same numbers.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str("| window | ops/s | p50 µs | p99 µs | syncs |\n");
        out.push_str("|---|---|---|---|---|\n");
        for r in &self.results {
            // `~` marks percentile estimates from too few samples.
            let tilde = if r.low_confidence { "~" } else { "" };
            out.push_str(&format!(
                "| {} | {:.1} | {tilde}{:.1} | {tilde}{:.1} | {} |\n",
                r.window, r.ops_per_sec, r.p50_us, r.p99_us, r.syncs
            ));
        }
        for s in &self.speedups {
            out.push_str(&format!(
                "window {}: {:.2}x per-install fsync\n",
                s.window, s.ratio
            ));
        }
        out
    }
}

/// Validates a `blockrep.bench.storage/v1` report.
///
/// # Errors
///
/// The first structural problem found: syntax error, wrong schema tag,
/// missing/ill-typed field, an empty result set, a window below 1, or a
/// missing window-1 baseline.
pub fn validate(text: &str) -> Result<(), String> {
    let doc = crate::schema::parse_report(text, SCHEMA)?;
    let root = crate::schema::Node::root(&doc);
    root.require_nums(&["data_blocks", "block_size", "journal_blocks", "writes"])?;
    let mut has_baseline = false;
    for (i, r) in root.require_nonempty_array("results")?.iter().enumerate() {
        r.require_nonneg(&["window", "ops", "ops_per_sec", "p50_us", "p99_us", "syncs"])?;
        let window = r.num("window").unwrap_or(0.0);
        if window < 1.0 {
            return Err(format!("results[{i}].window is below 1"));
        }
        has_baseline |= window == 1.0;
        r.optional_sampling_fields()?;
    }
    if !has_baseline {
        return Err("no window-1 (per-install fsync) baseline in \"results\"".into());
    }
    for (i, s) in root.require_nonempty_array("speedups")?.iter().enumerate() {
        if s.require_num("window")? < 2.0 {
            return Err(format!("speedups[{i}].window is below 2"));
        }
        s.require_nonneg(&["over_per_install_fsync"])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> StorageBenchConfig {
        StorageBenchConfig {
            data_blocks: 4,
            block_size: 64,
            writes: 8,
        }
    }

    #[test]
    fn suite_emits_valid_json_for_every_window() {
        let report = run_suite(&tiny());
        assert_eq!(report.results.len(), WINDOWS.len());
        assert_eq!(report.speedups.len(), WINDOWS.len() - 1);
        validate(&report.to_json()).unwrap();
    }

    #[test]
    fn group_commit_syncs_once_per_window() {
        let cfg = tiny();
        let baseline = run_case(&cfg, 1);
        let batched = run_case(&cfg, 4);
        // Window 1: one commit per install, plus a no-op final flush.
        assert_eq!(baseline.syncs, cfg.writes);
        // Window 4: one commit per full batch.
        assert_eq!(batched.syncs, cfg.writes / 4);
    }

    #[test]
    fn validate_rejects_structural_damage() {
        let good = StorageBenchReport {
            config: tiny(),
            results: vec![
                StorageCaseResult {
                    window: 1,
                    ops: 8,
                    ops_per_sec: 100.0,
                    p50_us: 10.0,
                    p99_us: 20.0,
                    syncs: 8,
                    samples: 8,
                    low_confidence: true,
                },
                StorageCaseResult {
                    window: 16,
                    ops: 8,
                    ops_per_sec: 300.0,
                    p50_us: 4.0,
                    p99_us: 18.0,
                    syncs: 1,
                    samples: 8,
                    low_confidence: true,
                },
            ],
            speedups: vec![StorageSpeedup {
                window: 16,
                ratio: 3.0,
            }],
        }
        .to_json();
        validate(&good).unwrap();
        assert!(validate(&good.replace(SCHEMA, "other/v0")).is_err());
        assert!(validate(&good.replace("\"window\": 1,", "\"window\": 0,")).is_err());
        assert!(validate(&good.replace("\"ops_per_sec\"", "\"oops\"")).is_err());
        assert!(validate(&good.replace("\"syncs\": 8", "\"syncs\": -1")).is_err());
        assert!(validate("{\"schema\": \"blockrep.bench.storage/v1\"}").is_err());
        assert!(validate("not json").is_err());
    }

    #[test]
    fn missing_baseline_is_rejected() {
        let report = StorageBenchReport {
            config: tiny(),
            results: vec![StorageCaseResult {
                window: 16,
                ops: 8,
                ops_per_sec: 300.0,
                p50_us: 4.0,
                p99_us: 18.0,
                syncs: 1,
                samples: 8,
                low_confidence: true,
            }],
            speedups: vec![StorageSpeedup {
                window: 16,
                ratio: 3.0,
            }],
        };
        assert!(validate(&report.to_json())
            .unwrap_err()
            .contains("baseline"));
    }
}
