//! Multicast vs. unique addressing.

use core::fmt;

/// The two network environments of §5.
///
/// The schemes keep their relative ordering in both environments, but the
/// differences are "amplified in a single destination network" — which the
/// Figure 11 vs. Figure 12 benches reproduce.
///
/// # Examples
///
/// ```
/// use blockrep_net::DeliveryMode;
///
/// // Updating four remote replicas:
/// assert_eq!(DeliveryMode::Multicast.fanout_cost(4), 1);
/// assert_eq!(DeliveryMode::Unicast.fanout_cost(4), 4);
/// // Replies are always individual transmissions:
/// assert_eq!(DeliveryMode::Multicast.fanout_cost(0), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeliveryMode {
    /// A single transmission may be received by several sites (§5.1).
    #[default]
    Multicast,
    /// Each transmission must be addressed to an individual site (§5.2).
    Unicast,
}

impl DeliveryMode {
    /// Both environments, in the order the paper treats them.
    pub const ALL: [DeliveryMode; 2] = [DeliveryMode::Multicast, DeliveryMode::Unicast];

    /// Number of high-level transmissions needed to deliver one logical
    /// message to `targets` destinations: one multicast regardless of
    /// fan-out, or one unicast per destination. Zero targets cost nothing in
    /// either mode.
    pub const fn fanout_cost(self, targets: u64) -> u64 {
        match self {
            DeliveryMode::Multicast => {
                if targets == 0 {
                    0
                } else {
                    1
                }
            }
            DeliveryMode::Unicast => targets,
        }
    }

    /// Short label used in tables and benches.
    pub const fn label(self) -> &'static str {
        match self {
            DeliveryMode::Multicast => "multicast",
            DeliveryMode::Unicast => "unicast",
        }
    }
}

impl fmt::Display for DeliveryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multicast_is_flat_rate() {
        for n in 1..100 {
            assert_eq!(DeliveryMode::Multicast.fanout_cost(n), 1);
        }
    }

    #[test]
    fn unicast_is_linear() {
        for n in 0..100 {
            assert_eq!(DeliveryMode::Unicast.fanout_cost(n), n);
        }
    }

    #[test]
    fn zero_targets_is_free() {
        assert_eq!(DeliveryMode::Multicast.fanout_cost(0), 0);
        assert_eq!(DeliveryMode::Unicast.fanout_cost(0), 0);
    }

    #[test]
    fn labels() {
        assert_eq!(DeliveryMode::Multicast.to_string(), "multicast");
        assert_eq!(DeliveryMode::Unicast.to_string(), "unicast");
    }
}
