//! Cursor-style file handles with `std::io` interop.

use crate::{FileSystem, FsError, FsResult};
use blockrep_storage::BlockDevice;

/// A sequential cursor over one file — the `open`/`read`/`write` shape
/// programs expect, layered on the positional [`FileSystem`] API.
///
/// The handle addresses the file by path on every operation (like a
/// userspace stdio wrapper, not a kernel file descriptor), so renaming or
/// removing the file underneath it surfaces as [`FsError::NotFound`] on the
/// next use rather than acting on a recycled inode.
///
/// Implements [`std::io::Read`] and [`std::io::Write`], so generic I/O code
/// — including code that has no idea the bytes live on a replicated
/// device — works unchanged.
///
/// # Examples
///
/// ```
/// use blockrep_fs::FileSystem;
/// use blockrep_storage::MemStore;
/// use std::io::{Read, Write};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fs = FileSystem::format(MemStore::new(128, 512))?;
/// fs.create("/log")?;
///
/// let mut w = fs.open("/log")?;
/// writeln!(w, "line one")?;
/// writeln!(w, "line two")?;
///
/// let mut text = String::new();
/// fs.open("/log")?.read_to_string(&mut text)?;
/// assert_eq!(text, "line one\nline two\n");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FileHandle<'fs, D> {
    fs: &'fs FileSystem<D>,
    path: String,
    offset: u64,
}

impl<D: BlockDevice> FileSystem<D> {
    /// Opens an existing regular file, returning a cursor at offset 0.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] or [`FsError::IsADirectory`].
    pub fn open(&self, path: &str) -> FsResult<FileHandle<'_, D>> {
        let meta = self.stat(path)?;
        if meta.is_dir() {
            return Err(FsError::IsADirectory(path.to_string()));
        }
        Ok(FileHandle {
            fs: self,
            path: path.to_string(),
            offset: 0,
        })
    }
}

impl<D: BlockDevice> FileHandle<'_, D> {
    /// The path this handle addresses.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Current cursor offset in bytes.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Moves the cursor to an absolute offset (may exceed the file size;
    /// a later write creates a sparse hole).
    pub fn seek_to(&mut self, offset: u64) -> &mut Self {
        self.offset = offset;
        self
    }

    /// Moves the cursor to the end of the file and returns the new offset.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if the file vanished.
    pub fn seek_end(&mut self) -> FsResult<u64> {
        self.offset = self.fs.stat(&self.path)?.size;
        Ok(self.offset)
    }

    /// Reads up to `len` bytes at the cursor, advancing it. Short reads at
    /// end of file; empty at or past it.
    ///
    /// # Errors
    ///
    /// As for [`FileSystem::read`].
    pub fn read_at_cursor(&mut self, len: usize) -> FsResult<Vec<u8>> {
        let data = self.fs.read(&self.path, self.offset, len)?;
        self.offset += data.len() as u64;
        Ok(data)
    }

    /// Writes `data` at the cursor, advancing it.
    ///
    /// # Errors
    ///
    /// As for [`FileSystem::write`].
    pub fn write_at_cursor(&mut self, data: &[u8]) -> FsResult<()> {
        self.fs.write(&self.path, self.offset, data)?;
        self.offset += data.len() as u64;
        Ok(())
    }

    /// Appends `data` at the end of the file, leaving the cursor after it.
    ///
    /// # Errors
    ///
    /// As for [`FileSystem::write`].
    pub fn append(&mut self, data: &[u8]) -> FsResult<()> {
        self.seek_end()?;
        self.write_at_cursor(data)
    }
}

fn to_io(e: FsError) -> std::io::Error {
    let kind = match &e {
        FsError::NotFound(_) => std::io::ErrorKind::NotFound,
        FsError::NoSpace | FsError::NoInodes => std::io::ErrorKind::StorageFull,
        FsError::FileTooLarge => std::io::ErrorKind::FileTooLarge,
        _ => std::io::ErrorKind::Other,
    };
    std::io::Error::new(kind, e)
}

impl<D: BlockDevice> std::io::Read for FileHandle<'_, D> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let data = self.read_at_cursor(buf.len()).map_err(to_io)?;
        buf[..data.len()].copy_from_slice(&data);
        Ok(data.len())
    }
}

impl<D: BlockDevice> std::io::Write for FileHandle<'_, D> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.write_at_cursor(buf).map_err(to_io)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.fs
            .device()
            .flush()
            .map_err(|e| to_io(FsError::Device(e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockrep_storage::MemStore;
    use std::io::{Read, Write};

    fn fresh() -> FileSystem<MemStore> {
        FileSystem::format(MemStore::new(256, 512)).unwrap()
    }

    #[test]
    fn sequential_writes_then_reads() {
        let fs = fresh();
        fs.create("/f").unwrap();
        let mut h = fs.open("/f").unwrap();
        h.write_at_cursor(b"abc").unwrap();
        h.write_at_cursor(b"def").unwrap();
        assert_eq!(h.offset(), 6);
        let mut r = fs.open("/f").unwrap();
        assert_eq!(r.read_at_cursor(4).unwrap(), b"abcd");
        assert_eq!(r.read_at_cursor(10).unwrap(), b"ef");
        assert_eq!(r.read_at_cursor(10).unwrap(), b"");
    }

    #[test]
    fn append_always_lands_at_the_end() {
        let fs = fresh();
        fs.write_file("/log", b"start").unwrap();
        let mut h = fs.open("/log").unwrap();
        h.append(b"+one").unwrap();
        let mut h2 = fs.open("/log").unwrap();
        h2.append(b"+two").unwrap();
        assert_eq!(fs.read_file("/log").unwrap(), b"start+one+two");
    }

    #[test]
    fn seek_and_sparse_write() {
        let fs = fresh();
        fs.create("/sparse").unwrap();
        let mut h = fs.open("/sparse").unwrap();
        h.seek_to(1000);
        h.write_at_cursor(b"tail").unwrap();
        assert_eq!(fs.stat("/sparse").unwrap().size, 1004);
        let mut r = fs.open("/sparse").unwrap();
        let head = r.read_at_cursor(4).unwrap();
        assert_eq!(head, vec![0, 0, 0, 0]);
    }

    #[test]
    fn opening_directories_and_missing_files_fails() {
        let fs = fresh();
        fs.mkdir("/d").unwrap();
        assert!(matches!(fs.open("/d"), Err(FsError::IsADirectory(_))));
        assert!(matches!(fs.open("/ghost"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn handle_detects_removed_file() {
        let fs = fresh();
        fs.write_file("/f", b"x").unwrap();
        let mut h = fs.open("/f").unwrap();
        fs.remove_file("/f").unwrap();
        assert!(matches!(h.read_at_cursor(1), Err(FsError::NotFound(_))));
    }

    #[test]
    fn io_read_write_interop() {
        let fs = fresh();
        fs.create("/io").unwrap();
        {
            let mut w = fs.open("/io").unwrap();
            w.write_all(b"hello ").unwrap();
            write!(w, "world {}", 42).unwrap();
            w.flush().unwrap();
        }
        let mut s = String::new();
        fs.open("/io").unwrap().read_to_string(&mut s).unwrap();
        assert_eq!(s, "hello world 42");
    }

    #[test]
    fn io_errors_map_to_kinds() {
        let fs = fresh();
        fs.write_file("/f", b"x").unwrap();
        let mut h = fs.open("/f").unwrap();
        fs.remove_file("/f").unwrap();
        let mut buf = [0u8; 1];
        let err = std::io::Read::read(&mut h, &mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }
}
