//! Figure 9 regeneration benchmark: three available copies vs. six voting
//! copies. Benchmarks both the analytic sweep and one DES cross-check
//! point, so `cargo bench` exercises the full regeneration path.

use blockrep_analysis::figures;
use blockrep_core::simulate::availability::{estimate, AvailabilityConfig};
use blockrep_types::Scheme;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09");
    g.sample_size(10);
    g.bench_function("analytic_sweep", |b| b.iter(|| black_box(figures::fig9())));
    for scheme in Scheme::ALL {
        let n = if scheme == Scheme::Voting { 6 } else { 3 };
        let mut cfg = AvailabilityConfig::new(scheme, n, 0.10);
        cfg.horizon = 2_000.0;
        g.bench_function(format!("des_{}", scheme.label()), |b| {
            b.iter(|| black_box(estimate(&cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
