//! End-to-end traffic accounting: an identical file-system workload billed
//! under each consistency scheme, plus the block-level read:write ratio the
//! workload actually induces (the `x` of Figures 11/12, measured rather
//! than assumed).
//!
//! ```text
//! cargo run --release --example fs_workload
//! ```

use blockrep::net::DeliveryMode;
use blockrep::types::Scheme;
use blockrep_bench::fsload::{measure, FsLoadConfig};

fn main() {
    println!("500 file operations (60% reads / 30% writes / 10% deletes) on 3 sites\n");
    for mode in DeliveryMode::ALL {
        println!("### {mode}\n");
        println!("| scheme | block reads | block writes | r:w ratio | transmissions | per fs-op |");
        println!("|---|---|---|---|---|---|");
        for scheme in Scheme::ALL {
            let est = measure(&FsLoadConfig::new(scheme, mode));
            println!(
                "| {} | {} | {} | {:.2} | {} | {:.2} |",
                scheme,
                est.block_reads,
                est.block_writes,
                est.read_write_ratio(),
                est.transmissions,
                est.per_fs_op(),
            );
        }
        println!();
    }
    println!("Same block workload, very different bills — §5's conclusion holds at the");
    println!("file-system level: naive available copy is the cheapest scheme in both");
    println!("network environments.");
}
