//! Online statistics for simulation output.

use crate::SimTime;

/// Welford's online mean/variance accumulator for per-sample measurements
/// (message counts per operation, recovery durations, …).
///
/// # Examples
///
/// ```
/// use blockrep_sim::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// A normal-approximation confidence interval around the mean.
    pub fn confidence(&self, level: Confidence) -> (f64, f64) {
        if self.count < 2 {
            return (self.mean, self.mean);
        }
        let half = level.z() * self.std_dev() / (self.count as f64).sqrt();
        (self.mean - half, self.mean + half)
    }

    /// Merges another accumulator into this one (parallel replications).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
    }
}

/// Standard confidence levels for [`RunningStats::confidence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Confidence {
    /// 90% two-sided.
    P90,
    /// 95% two-sided.
    P95,
    /// 99% two-sided.
    P99,
}

impl Confidence {
    /// The standard-normal quantile for the level.
    pub fn z(self) -> f64 {
        match self {
            Confidence::P90 => 1.6448536269514722,
            Confidence::P95 => 1.959963984540054,
            Confidence::P99 => 2.5758293035489004,
        }
    }
}

/// Time-weighted average of a piecewise-constant binary signal — the
/// estimator for availability `A = lim p(t)`: feed it *(time, device is up)*
/// transitions and read off the fraction of simulated time spent up.
///
/// # Examples
///
/// ```
/// use blockrep_sim::{SimTime, TimeWeighted};
///
/// let mut a = TimeWeighted::new(SimTime::ZERO, true);
/// a.record(SimTime::new(8.0), false); // up during [0, 8)
/// a.record(SimTime::new(10.0), true); // down during [8, 10)
/// a.finish(SimTime::new(20.0));       // up during [10, 20)
/// assert!((a.mean() - 0.9).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TimeWeighted {
    last_change: SimTime,
    current: bool,
    time_true: f64,
    time_total: f64,
}

impl TimeWeighted {
    /// Starts observing a signal with the given initial value at `start`.
    pub fn new(start: SimTime, initial: bool) -> Self {
        TimeWeighted {
            last_change: start,
            current: initial,
            time_true: 0.0,
            time_total: 0.0,
        }
    }

    /// Records the signal value `value` from time `at` onwards. Recording
    /// the unchanged value is harmless; time never runs backwards.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the previous record.
    pub fn record(&mut self, at: SimTime, value: bool) {
        let span = (at - self.last_change).as_f64();
        self.time_total += span;
        if self.current {
            self.time_true += span;
        }
        self.last_change = at;
        self.current = value;
    }

    /// Closes the observation window at `at` without changing the signal.
    pub fn finish(&mut self, at: SimTime) {
        let current = self.current;
        self.record(at, current);
    }

    /// The current signal value.
    pub fn current(&self) -> bool {
        self.current
    }

    /// Fraction of observed time the signal was true (0 if nothing observed
    /// yet).
    pub fn mean(&self) -> f64 {
        if self.time_total == 0.0 {
            0.0
        } else {
            self.time_true / self.time_total
        }
    }

    /// Total observed time.
    pub fn total_time(&self) -> f64 {
        self.time_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_single_sample() {
        let mut s = RunningStats::new();
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.confidence(Confidence::P95), (3.0, 3.0));
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn confidence_narrows_with_samples() {
        let mut small = RunningStats::new();
        let mut large = RunningStats::new();
        for i in 0..10 {
            small.push((i % 2) as f64);
        }
        for i in 0..1000 {
            large.push((i % 2) as f64);
        }
        let w = |s: &RunningStats| {
            let (lo, hi) = s.confidence(Confidence::P95);
            hi - lo
        };
        assert!(w(&large) < w(&small));
    }

    #[test]
    fn time_weighted_all_up() {
        let mut a = TimeWeighted::new(SimTime::ZERO, true);
        a.finish(SimTime::new(5.0));
        assert_eq!(a.mean(), 1.0);
        assert_eq!(a.total_time(), 5.0);
    }

    #[test]
    fn time_weighted_ignores_redundant_records() {
        let mut a = TimeWeighted::new(SimTime::ZERO, true);
        a.record(SimTime::new(1.0), true);
        a.record(SimTime::new(2.0), true);
        a.record(SimTime::new(3.0), false);
        a.finish(SimTime::new(4.0));
        assert!((a.mean() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_empty_is_zero() {
        let a = TimeWeighted::new(SimTime::ZERO, true);
        assert_eq!(a.mean(), 0.0);
    }

    #[test]
    fn confidence_z_values_are_ordered() {
        assert!(Confidence::P90.z() < Confidence::P95.z());
        assert!(Confidence::P95.z() < Confidence::P99.z());
    }
}

/// A full sample set with exact quantile queries — for distribution-shaped
/// answers (e.g. "p99 time to restore service") that a mean cannot give.
///
/// Stores every sample; suitable for the tens of thousands of episodes the
/// lifetime experiments run, not for unbounded streams.
///
/// # Examples
///
/// ```
/// use blockrep_sim::Samples;
///
/// let mut s = Samples::new();
/// for x in 1..=100 {
///     s.push(x as f64);
/// }
/// assert_eq!(s.percentile(50.0), 50.0);
/// assert_eq!(s.percentile(99.0), 99.0);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 100.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics on NaN (which would poison the ordering).
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "samples cannot be NaN");
        self.values.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Smallest sample.
    ///
    /// # Panics
    ///
    /// Panics when empty.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest sample.
    ///
    /// # Panics
    ///
    /// Panics when empty (returns negative infinity otherwise, asserted).
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The `p`-th percentile (nearest-rank), `p` in `[0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics when empty or `p` is out of range.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!(!self.values.is_empty(), "no samples recorded");
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("samples are never NaN"));
            self.sorted = true;
        }
        let rank = ((p / 100.0) * self.values.len() as f64).ceil() as usize;
        self.values[rank.saturating_sub(1).min(self.values.len() - 1)]
    }
}

impl Extend<f64> for Samples {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod samples_tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = Samples::new();
        s.extend([5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(20.0), 1.0);
        assert_eq!(s.percentile(40.0), 2.0);
        assert_eq!(s.percentile(100.0), 5.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn pushes_after_query_resort() {
        let mut s = Samples::new();
        s.push(10.0);
        assert_eq!(s.percentile(50.0), 10.0);
        s.push(1.0);
        assert_eq!(s.percentile(0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_percentile_panics() {
        Samples::new().percentile(50.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Samples::new().push(f64::NAN);
    }
}
