//! Coordinator-side concurrency control: the sharded block-lock table and
//! the read-lease registry.
//!
//! # Block locks
//!
//! The paper's protocols (§3) are defined *per block*, yet the runtimes
//! historically serialized every operation behind one coordinator-wide
//! mutex. [`BlockLockTable`] restores the paper's granularity: each block
//! hashes to one of a fixed set of shards, each shard is an independent
//! readers-writer lock, and a protocol operation holds only the shards of
//! the blocks it touches. Operations on distinct blocks (in distinct
//! shards) never serialize; two writers of the *same* block are mutually
//! excluded, so the vote → `max(v) + 1` → install sequence of Figure 4
//! stays atomic under concurrent clients.
//!
//! **Lock-ordering discipline.** Multi-block operations acquire their
//! shards in strictly ascending shard-index order, asserted at every
//! acquisition, so two batched writers can never deadlock however their
//! block sets overlap. This is the same discipline
//! [`TcpCluster`](crate::TcpCluster)'s connection pipelining follows for
//! conn locks, and `blockrep-lint`'s lock-order pass machine-verifies both.
//! Replica locks are only ever acquired *after* block-shard locks (and one
//! at a time), so the global order is `block shard (ascending) → replica`.
//!
//! # Read leases
//!
//! [`LeaseTable`] is the coordinator-granted read-lease registry behind
//! Harmonia-style read offload (see PAPERS.md): after a successful quorum
//! operation the coordinator records which replicas are *known current*
//! for a block and at what version. A later read consults the lease and
//! fetches from one known-current replica in a single round — or serves
//! locally for free — instead of assembling a read quorum. Leases are
//! invalidated at the start of every write fan-out and re-granted after
//! the installs land; any failure, repair or topology change bumps the
//! table's epoch, which invalidates every outstanding lease at once.
//! Served lease reads are version-validated against the grant, so even a
//! replica answering with a stale copy (the chaos suite's `StaleLease`
//! fault) degrades to a quorum read instead of breaking one-copy
//! semantics.

use blockrep_types::{BlockIndex, SiteId, VersionNumber};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Number of shards in a [`BlockLockTable`]. A power of two comfortably
/// above any realistic client count, so independent blocks rarely collide.
const SHARDS: usize = 64;

/// A sharded readers-writer lock table over block indices.
///
/// See the [module docs](self) for the locking discipline.
#[derive(Debug)]
pub struct BlockLockTable {
    shards: Vec<RwLock<()>>,
}

/// A held shard guard, tagged with its shard index so multi-shard
/// acquisitions can assert the ascending-order discipline.
pub type ShardWriteGuard<'a> = (usize, RwLockWriteGuard<'a, ()>);

impl BlockLockTable {
    /// Creates a table with the default shard count.
    pub fn new() -> Self {
        BlockLockTable {
            shards: (0..SHARDS).map(|_| RwLock::new(())).collect(),
        }
    }

    /// The shard a block hashes to.
    fn shard_of(&self, k: BlockIndex) -> usize {
        (k.as_u64() % self.shards.len() as u64) as usize
    }

    /// Acquires block `k`'s shard for shared (read) access.
    pub fn read_guard(&self, k: BlockIndex) -> RwLockReadGuard<'_, ()> {
        self.shards[self.shard_of(k)].read()
    }

    /// Acquires block `k`'s shard for exclusive (write) access.
    pub fn write_guard(&self, k: BlockIndex) -> RwLockWriteGuard<'_, ()> {
        self.shards[self.shard_of(k)].write()
    }

    /// Deduplicated shard indices of `ks`, in ascending order — the only
    /// order multi-shard acquisitions are permitted to use.
    fn ascending_shards(&self, ks: &[BlockIndex]) -> Vec<usize> {
        let mut shards: Vec<usize> = ks.iter().map(|&k| self.shard_of(k)).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }

    /// Acquires the shards of every block in `ks` for shared access, in
    /// ascending shard order.
    pub fn read_guard_many(&self, ks: &[BlockIndex]) -> Vec<(usize, RwLockReadGuard<'_, ()>)> {
        let mut guards: Vec<(usize, RwLockReadGuard<'_, ()>)> = Vec::new();
        for s in self.ascending_shards(ks) {
            debug_assert!(
                guards.last().is_none_or(|&(prev, _)| prev < s),
                "block-lock shards must be acquired in ascending order"
            );
            guards.push((s, self.shards[s].read()));
        }
        guards
    }

    /// Acquires the shards of every block in `ks` for exclusive access, in
    /// ascending shard order (the deadlock-freedom discipline the module
    /// docs describe; `blockrep-lint` verifies the assertion is in place).
    pub fn write_guard_many(&self, ks: &[BlockIndex]) -> Vec<ShardWriteGuard<'_>> {
        let mut guards: Vec<ShardWriteGuard<'_>> = Vec::new();
        for s in self.ascending_shards(ks) {
            debug_assert!(
                guards.last().is_none_or(|&(prev, _)| prev < s),
                "block-lock shards must be acquired in ascending order"
            );
            guards.push((s, self.shards[s].write()));
        }
        guards
    }
}

impl Default for BlockLockTable {
    fn default() -> Self {
        Self::new()
    }
}

/// One granted lease: the version every holder was known to hold, the
/// holders themselves, and the table epoch the grant belongs to.
#[derive(Debug, Clone)]
struct LeaseEntry {
    epoch: u64,
    version: VersionNumber,
    holders: Vec<SiteId>,
}

/// The coordinator-granted read-lease registry (see the [module
/// docs](self)). Disabled by default; [`set_enabled`](Self::set_enabled)
/// turns the read-offload path on.
#[derive(Debug)]
pub struct LeaseTable {
    enabled: AtomicBool,
    epoch: AtomicU64,
    shards: Vec<Mutex<HashMap<u64, LeaseEntry>>>,
}

impl LeaseTable {
    /// Creates an empty, disabled table.
    pub fn new() -> Self {
        LeaseTable {
            enabled: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard_of(&self, k: BlockIndex) -> usize {
        (k.as_u64() % self.shards.len() as u64) as usize
    }

    /// Turns lease-based read offload on or off. Turning it off drops no
    /// state; lookups simply stop answering.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether read offload is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The current epoch. Capture it *before* assembling a quorum and pass
    /// it to [`grant`](Self::grant): if a failure intervenes, the bumped
    /// epoch makes the late grant dead on arrival instead of stale.
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Invalidates every outstanding lease at once by advancing the epoch.
    /// Called on every failure, repair and topology change.
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Records that every site in `holders` holds block `k` at `version`,
    /// as certified by a quorum assembled while the table was at `epoch`.
    /// A no-op when disabled or when the epoch has moved on.
    pub fn grant(&self, k: BlockIndex, version: VersionNumber, holders: &[SiteId], epoch: u64) {
        if !self.enabled() || epoch != self.current_epoch() {
            return;
        }
        let entry = LeaseEntry {
            epoch,
            version,
            holders: holders.to_vec(),
        };
        self.shards[self.shard_of(k)]
            .lock()
            .insert(k.as_u64(), entry);
    }

    /// Revokes block `k`'s lease (the start of every write fan-out).
    pub fn invalidate(&self, k: BlockIndex) {
        if !self.enabled() {
            return;
        }
        self.shards[self.shard_of(k)].lock().remove(&k.as_u64());
    }

    /// The current-epoch lease for block `k`, if any: the certified version
    /// and the known-current holders.
    pub fn lookup(&self, k: BlockIndex) -> Option<(VersionNumber, Vec<SiteId>)> {
        if !self.enabled() {
            return None;
        }
        let shard = self.shards[self.shard_of(k)].lock();
        let entry = shard.get(&k.as_u64())?;
        if entry.epoch != self.current_epoch() || entry.holders.is_empty() {
            return None;
        }
        Some((entry.version, entry.holders.clone()))
    }
}

impl Default for LeaseTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn k(i: u64) -> BlockIndex {
        BlockIndex::new(i)
    }

    fn sid(i: u32) -> SiteId {
        SiteId::new(i)
    }

    #[test]
    fn distinct_shards_do_not_serialize() {
        let table = Arc::new(BlockLockTable::new());
        let g0 = table.write_guard(k(0));
        // A different shard is still acquirable while shard 0 is held.
        let g1 = table.write_guard(k(1));
        drop(g0);
        drop(g1);
    }

    #[test]
    fn readers_share_a_shard() {
        let table = BlockLockTable::new();
        let r1 = table.read_guard(k(3));
        let r2 = table.read_guard(k(3));
        drop(r1);
        drop(r2);
    }

    #[test]
    fn multi_shard_guards_come_back_ascending_and_deduped() {
        let table = BlockLockTable::new();
        // 64-shard table: 0, 65 and 1 map to shards {0, 1, 1} → {0, 1}.
        let guards = table.write_guard_many(&[k(65), k(0), k(1)]);
        let shards: Vec<usize> = guards.iter().map(|&(s, _)| s).collect();
        assert_eq!(shards, vec![0, 1]);
        drop(guards); // the readers below want the same shards
        let readers = table.read_guard_many(&[k(65), k(0), k(1)]);
        assert_eq!(readers.len(), 2);
    }

    #[test]
    fn same_block_writers_exclude_each_other() {
        let table = Arc::new(BlockLockTable::new());
        let g = table.write_guard(k(5));
        let t = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                let _g = table.write_guard(k(5));
            })
        };
        // The spawned writer must block until the guard drops.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!t.is_finished(), "second writer acquired a held shard");
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn leases_are_off_by_default_and_grant_is_inert() {
        let t = LeaseTable::new();
        t.grant(k(0), VersionNumber::new(1), &[sid(0)], t.current_epoch());
        assert_eq!(t.lookup(k(0)), None);
    }

    #[test]
    fn grant_lookup_invalidate_roundtrip() {
        let t = LeaseTable::new();
        t.set_enabled(true);
        let e = t.current_epoch();
        t.grant(k(2), VersionNumber::new(7), &[sid(0), sid(2)], e);
        assert_eq!(
            t.lookup(k(2)),
            Some((VersionNumber::new(7), vec![sid(0), sid(2)]))
        );
        t.invalidate(k(2));
        assert_eq!(t.lookup(k(2)), None);
    }

    #[test]
    fn epoch_bump_invalidates_everything() {
        let t = LeaseTable::new();
        t.set_enabled(true);
        let e = t.current_epoch();
        t.grant(k(0), VersionNumber::new(1), &[sid(0)], e);
        t.grant(k(1), VersionNumber::new(2), &[sid(1)], e);
        t.bump_epoch();
        assert_eq!(t.lookup(k(0)), None);
        assert_eq!(t.lookup(k(1)), None);
    }

    #[test]
    fn grant_with_a_stale_epoch_is_dead_on_arrival() {
        let t = LeaseTable::new();
        t.set_enabled(true);
        let e = t.current_epoch();
        t.bump_epoch(); // a failure lands between quorum assembly and grant
        t.grant(k(0), VersionNumber::new(3), &[sid(0)], e);
        assert_eq!(t.lookup(k(0)), None);
    }

    #[test]
    fn a_heal_time_epoch_bump_beats_an_in_flight_grant() {
        // A partition heals (epoch bump) while a grant whose quorum was
        // assembled before the heal is still in flight. The late grant must
        // be dead on arrival — whatever order it lands in relative to the
        // bump — and only a grant certified at the new epoch may serve.
        let t = LeaseTable::new();
        t.set_enabled(true);
        let e = t.current_epoch();
        t.grant(k(3), VersionNumber::new(1), &[sid(0)], e);
        assert!(t.lookup(k(3)).is_some());
        t.bump_epoch(); // the heal: every outstanding lease dies at once
        t.grant(k(3), VersionNumber::new(2), &[sid(1)], e); // late grant
        assert_eq!(t.lookup(k(3)), None, "a dead lease was resurrected");
        let healed = t.current_epoch();
        t.grant(k(3), VersionNumber::new(2), &[sid(1)], healed);
        assert_eq!(
            t.lookup(k(3)),
            Some((VersionNumber::new(2), vec![sid(1)])),
            "a current-epoch grant must serve after the heal"
        );
    }

    #[test]
    fn a_grant_racing_the_epoch_bump_never_resurrects_a_dead_lease() {
        // The threaded version of the heal race: the grant and the bump run
        // concurrently from a barrier, with the grant's epoch captured
        // before the bump. Whichever interleaving the scheduler picks —
        // including a bump landing between the grant's epoch check and its
        // insert — the lookup must never serve the dead lease.
        use std::sync::Barrier;
        let table = Arc::new(LeaseTable::new());
        table.set_enabled(true);
        for round in 0..200u64 {
            let e = table.current_epoch();
            let barrier = Arc::new(Barrier::new(2));
            let granter = {
                let table = Arc::clone(&table);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    table.grant(k(5), VersionNumber::new(round + 1), &[sid(0)], e);
                })
            };
            let healer = {
                let table = Arc::clone(&table);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    table.bump_epoch();
                })
            };
            granter.join().unwrap();
            healer.join().unwrap();
            assert_eq!(
                table.lookup(k(5)),
                None,
                "round {round}: a grant racing the heal-time epoch bump \
                 resurrected a dead lease"
            );
        }
    }
}
