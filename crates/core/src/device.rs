//! The client face of the reliable device (Figures 1 and 2).
//!
//! In the paper's UNIX deployment, a kernel device-driver *stub* forwards
//! block requests to a user-state server; in the MACH deployment the file
//! system talks to the server over IPC. Either way, what the file system
//! sees is an ordinary block device. [`DriverStub`] models the pinned,
//! single-server stub exactly; [`ReliableDevice`] adds the failover a
//! diskless-workstation client would want (try the preferred server, fall
//! back to any serving site).

use crate::backend::Backend;
use crate::protocol;
use blockrep_storage::BlockDevice;
use blockrep_types::{BlockData, BlockIndex, DeviceError, DeviceResult, SiteId};
use std::sync::Arc;

/// A block device served by one pinned site, like the kernel stub of
/// Figure 1: every request is forwarded to the same server, and if that
/// server is down the request fails.
///
/// # Examples
///
/// ```
/// use blockrep_core::{Cluster, ClusterOptions, DriverStub};
/// use blockrep_storage::BlockDevice;
/// use blockrep_types::{BlockData, BlockIndex, DeviceConfig, Scheme, SiteId};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), blockrep_types::DeviceError> {
/// let cfg = DeviceConfig::builder(Scheme::NaiveAvailableCopy).sites(3).build()?;
/// let cluster = Arc::new(Cluster::new(cfg, ClusterOptions::default()));
/// let stub = DriverStub::new(Arc::clone(&cluster), SiteId::new(0));
/// stub.write_block(BlockIndex::new(0), BlockData::zeroed(512))?;
/// cluster.fail_site(SiteId::new(0));
/// assert!(stub.read_block(BlockIndex::new(0)).is_err()); // pinned server down
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DriverStub<C> {
    cluster: Arc<C>,
    site: SiteId,
}

impl<C> Clone for DriverStub<C> {
    fn clone(&self) -> Self {
        DriverStub {
            cluster: Arc::clone(&self.cluster),
            site: self.site,
        }
    }
}

impl<C: Backend> DriverStub<C> {
    /// Creates a stub forwarding to the server process on `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` is not a site of the device.
    pub fn new(cluster: Arc<C>, site: SiteId) -> Self {
        assert!(cluster.config().contains_site(site), "unknown site {site}");
        DriverStub { cluster, site }
    }

    /// The site this stub forwards to.
    pub fn site(&self) -> SiteId {
        self.site
    }
}

impl<C: Backend> BlockDevice for DriverStub<C> {
    fn num_blocks(&self) -> u64 {
        self.cluster.config().num_blocks()
    }

    fn block_size(&self) -> usize {
        self.cluster.config().block_size()
    }

    fn read_block(&self, k: BlockIndex) -> DeviceResult<BlockData> {
        protocol::read(&*self.cluster, self.site, k)
    }

    fn write_block(&self, k: BlockIndex, data: BlockData) -> DeviceResult<()> {
        protocol::write(&*self.cluster, self.site, k, &data)
    }

    fn read_blocks(&self, ks: &[BlockIndex]) -> DeviceResult<Vec<BlockData>> {
        protocol::read_many(&*self.cluster, self.site, ks)
    }

    fn write_blocks(&self, writes: &[(BlockIndex, BlockData)]) -> DeviceResult<()> {
        protocol::write_many(&*self.cluster, self.site, writes)
    }
}

/// The reliable device as a client library: an ordinary [`BlockDevice`]
/// that coordinates every request through a serving site, preferring a
/// local one and failing over to any other site that can serve.
///
/// This is the handle an unmodified file system mounts; replication,
/// quorums and recovery stay entirely below this interface.
///
/// # Examples
///
/// ```
/// use blockrep_core::{Cluster, ClusterOptions, ReliableDevice};
/// use blockrep_storage::BlockDevice;
/// use blockrep_types::{BlockData, BlockIndex, DeviceConfig, Scheme, SiteId};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), blockrep_types::DeviceError> {
/// let cfg = DeviceConfig::builder(Scheme::AvailableCopy).sites(3).build()?;
/// let cluster = Arc::new(Cluster::new(cfg, ClusterOptions::default()));
/// let dev = ReliableDevice::new(Arc::clone(&cluster), SiteId::new(0));
/// dev.write_block(BlockIndex::new(7), BlockData::from(vec![1; 512]))?;
/// cluster.fail_site(SiteId::new(0)); // preferred site dies…
/// let data = dev.read_block(BlockIndex::new(7))?; // …and the device fails over
/// assert_eq!(data.as_slice()[0], 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ReliableDevice<C> {
    cluster: Arc<C>,
    preferred: SiteId,
}

impl<C> Clone for ReliableDevice<C> {
    fn clone(&self) -> Self {
        ReliableDevice {
            cluster: Arc::clone(&self.cluster),
            preferred: self.preferred,
        }
    }
}

impl<C: Backend> ReliableDevice<C> {
    /// Creates a device handle that coordinates through `preferred` when
    /// possible.
    ///
    /// # Panics
    ///
    /// Panics if `preferred` is not a site of the device.
    pub fn new(cluster: Arc<C>, preferred: SiteId) -> Self {
        assert!(
            cluster.config().contains_site(preferred),
            "unknown site {preferred}"
        );
        ReliableDevice { cluster, preferred }
    }

    /// The preferred coordinator site.
    pub fn preferred(&self) -> SiteId {
        self.preferred
    }

    /// The underlying cluster handle.
    pub fn cluster(&self) -> &Arc<C> {
        &self.cluster
    }

    /// Origins to try, preferred first, then the rest in id order.
    fn origins(&self) -> impl Iterator<Item = SiteId> + '_ {
        let preferred = self.preferred;
        std::iter::once(preferred).chain(
            self.cluster
                .config()
                .site_ids()
                .filter(move |&s| s != preferred),
        )
    }

    fn with_failover<T>(&self, mut op: impl FnMut(SiteId) -> DeviceResult<T>) -> DeviceResult<T> {
        let mut last = None;
        for origin in self.origins() {
            match op(origin) {
                // Only a coordinator that cannot serve triggers failover;
                // a quorum failure is global and retrying elsewhere would
                // just repeat it.
                Err(e @ DeviceError::SiteNotServing { .. }) => last = Some(e),
                other => return other,
            }
        }
        Err(last.expect("devices have at least one site"))
    }
}

impl<C: Backend> BlockDevice for ReliableDevice<C> {
    fn num_blocks(&self) -> u64 {
        self.cluster.config().num_blocks()
    }

    fn block_size(&self) -> usize {
        self.cluster.config().block_size()
    }

    fn read_block(&self, k: BlockIndex) -> DeviceResult<BlockData> {
        self.with_failover(|origin| protocol::read(&*self.cluster, origin, k))
    }

    fn write_block(&self, k: BlockIndex, data: BlockData) -> DeviceResult<()> {
        // The payload is borrowed by every attempt: failover retries reuse
        // it, and the common single-origin success path never clones.
        self.with_failover(|origin| protocol::write(&*self.cluster, origin, k, &data))
    }

    fn read_blocks(&self, ks: &[BlockIndex]) -> DeviceResult<Vec<BlockData>> {
        self.with_failover(|origin| protocol::read_many(&*self.cluster, origin, ks))
    }

    fn write_blocks(&self, writes: &[(BlockIndex, BlockData)]) -> DeviceResult<()> {
        self.with_failover(|origin| protocol::write_many(&*self.cluster, origin, writes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, ClusterOptions};
    use blockrep_types::{DeviceConfig, Scheme};

    fn cluster(scheme: Scheme) -> Arc<Cluster> {
        let cfg = DeviceConfig::builder(scheme)
            .sites(3)
            .num_blocks(4)
            .block_size(8)
            .build()
            .unwrap();
        Arc::new(Cluster::new(cfg, ClusterOptions::default()))
    }

    #[test]
    fn reliable_device_geometry_matches_config() {
        let dev = ReliableDevice::new(cluster(Scheme::Voting), SiteId::new(0));
        assert_eq!(dev.num_blocks(), 4);
        assert_eq!(dev.block_size(), 8);
    }

    #[test]
    fn failover_moves_past_failed_preferred_site() {
        let c = cluster(Scheme::AvailableCopy);
        let dev = ReliableDevice::new(Arc::clone(&c), SiteId::new(0));
        dev.write_block(BlockIndex::new(0), BlockData::from(vec![9; 8]))
            .unwrap();
        c.fail_site(SiteId::new(0));
        assert_eq!(
            dev.read_block(BlockIndex::new(0)).unwrap().as_slice(),
            &[9; 8]
        );
        dev.write_block(BlockIndex::new(1), BlockData::from(vec![8; 8]))
            .unwrap();
        assert_eq!(
            c.data_of(SiteId::new(2), BlockIndex::new(1)).as_slice(),
            &[8; 8]
        );
    }

    #[test]
    fn failover_gives_up_when_no_site_serves() {
        let c = cluster(Scheme::NaiveAvailableCopy);
        let dev = ReliableDevice::new(Arc::clone(&c), SiteId::new(1));
        for i in 0..3 {
            c.fail_site(SiteId::new(i));
        }
        let err = dev.read_block(BlockIndex::new(0)).unwrap_err();
        assert!(err.is_unavailable());
    }

    #[test]
    fn quorum_loss_is_not_retried_on_other_sites() {
        let c = cluster(Scheme::Voting);
        let dev = ReliableDevice::new(Arc::clone(&c), SiteId::new(2));
        c.fail_site(SiteId::new(0));
        c.fail_site(SiteId::new(1));
        let before = c.traffic();
        let err = dev.read_block(BlockIndex::new(0)).unwrap_err();
        assert!(matches!(err, DeviceError::Unavailable { .. }));
        // Exactly one coordination attempt: one vote broadcast, no replies.
        let delta = c.traffic() - before;
        assert_eq!(delta.total(), 1);
    }

    #[test]
    fn driver_stub_is_pinned() {
        let c = cluster(Scheme::AvailableCopy);
        let stub = DriverStub::new(Arc::clone(&c), SiteId::new(1));
        assert_eq!(stub.site(), SiteId::new(1));
        stub.write_block(BlockIndex::new(2), BlockData::from(vec![3; 8]))
            .unwrap();
        c.fail_site(SiteId::new(1));
        assert!(stub.read_block(BlockIndex::new(2)).is_err());
        // Unpinned handle still works.
        let dev = ReliableDevice::new(Arc::clone(&c), SiteId::new(1));
        assert!(dev.read_block(BlockIndex::new(2)).is_ok());
    }

    #[test]
    #[should_panic(expected = "unknown site")]
    fn stub_rejects_unknown_site() {
        let _ = DriverStub::new(cluster(Scheme::Voting), SiteId::new(7));
    }
}
