//! The ordinary block-device interface.

use blockrep_types::{BlockData, BlockIndex, DeviceError, DeviceResult};

/// The interface of an ordinary block-structured device.
///
/// This is the boundary the paper is built around: the file system issues
/// block reads and writes against this trait and cannot tell whether it is
/// talking to a single local disk ([`MemStore`](crate::MemStore),
/// [`FileStore`](crate::FileStore)) or to the replicated reliable device —
/// which is precisely how replication is added "while leaving the operating
/// system kernel and the file system unchanged".
///
/// Methods take `&self`; implementations use interior mutability so a device
/// can be shared between a file system and a failure injector.
///
/// # Examples
///
/// ```
/// use blockrep_storage::{BlockDevice, MemStore};
/// use blockrep_types::{BlockData, BlockIndex};
///
/// # fn main() -> Result<(), blockrep_types::DeviceError> {
/// fn copy_block(dev: &dyn BlockDevice, from: BlockIndex, to: BlockIndex)
///     -> Result<(), blockrep_types::DeviceError>
/// {
///     let data = dev.read_block(from)?;
///     dev.write_block(to, data)
/// }
///
/// let disk = MemStore::new(8, 512);
/// disk.write_block(BlockIndex::new(0), BlockData::from(vec![7u8; 512]))?;
/// copy_block(&disk, BlockIndex::new(0), BlockIndex::new(1))?;
/// assert_eq!(disk.read_block(BlockIndex::new(1))?.as_slice()[0], 7);
/// # Ok(())
/// # }
/// ```
pub trait BlockDevice: Send + Sync {
    /// Number of blocks on the device.
    fn num_blocks(&self) -> u64;

    /// Size of every block in bytes.
    fn block_size(&self) -> usize;

    /// Reads block `k`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BlockOutOfRange`] for an index beyond the end
    /// of the device; replicated implementations additionally return
    /// [`DeviceError::Unavailable`] when consistency cannot be guaranteed.
    fn read_block(&self, k: BlockIndex) -> DeviceResult<BlockData>;

    /// Writes block `k`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BlockOutOfRange`] or
    /// [`DeviceError::WrongBlockSize`] for invalid requests, and
    /// [`DeviceError::Unavailable`] when a replicated implementation cannot
    /// reach the sites it needs.
    fn write_block(&self, k: BlockIndex, data: BlockData) -> DeviceResult<()>;

    /// Reads a batch of blocks in one call. `ks` must hold distinct indices.
    ///
    /// The default loops [`read_block`](Self::read_block) per index, so every
    /// existing implementation keeps working; vectored implementations (the
    /// reliable device, the write-back cache) override this to amortize one
    /// round of coordination over the whole batch. Results come back in the
    /// order of `ks`.
    ///
    /// # Errors
    ///
    /// As for [`read_block`](Self::read_block); the first failing block aborts
    /// the batch.
    fn read_blocks(&self, ks: &[BlockIndex]) -> DeviceResult<Vec<BlockData>> {
        ks.iter().map(|&k| self.read_block(k)).collect()
    }

    /// Writes a batch of blocks in one call. `writes` must hold distinct
    /// indices.
    ///
    /// The default loops [`write_block`](Self::write_block) per entry;
    /// vectored implementations override this to issue one coordination
    /// round for the whole batch.
    ///
    /// # Errors
    ///
    /// As for [`write_block`](Self::write_block); the first failing block
    /// aborts the batch, leaving earlier entries written.
    fn write_blocks(&self, writes: &[(BlockIndex, BlockData)]) -> DeviceResult<()> {
        for (k, data) in writes {
            self.write_block(*k, data.clone())?;
        }
        Ok(())
    }

    /// Flushes buffered state to stable storage. The in-memory stores are
    /// always durable with respect to the simulated fail-stop model, so the
    /// default is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Io`] if the underlying medium fails.
    fn flush(&self) -> DeviceResult<()> {
        Ok(())
    }

    /// Validates a block index against the device bounds.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BlockOutOfRange`] when `k` is out of bounds.
    fn check_block(&self, k: BlockIndex) -> DeviceResult<()> {
        if k.as_u64() < self.num_blocks() {
            Ok(())
        } else {
            Err(DeviceError::BlockOutOfRange {
                block: k,
                num_blocks: self.num_blocks(),
            })
        }
    }

    /// Validates a payload against the device block size.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::WrongBlockSize`] when the length differs.
    fn check_payload(&self, data: &BlockData) -> DeviceResult<()> {
        if data.len() == self.block_size() {
            Ok(())
        } else {
            Err(DeviceError::WrongBlockSize {
                got: data.len(),
                expected: self.block_size(),
            })
        }
    }
}

impl<T: BlockDevice + ?Sized> BlockDevice for &T {
    fn num_blocks(&self) -> u64 {
        (**self).num_blocks()
    }
    fn block_size(&self) -> usize {
        (**self).block_size()
    }
    fn read_block(&self, k: BlockIndex) -> DeviceResult<BlockData> {
        (**self).read_block(k)
    }
    fn write_block(&self, k: BlockIndex, data: BlockData) -> DeviceResult<()> {
        (**self).write_block(k, data)
    }
    fn read_blocks(&self, ks: &[BlockIndex]) -> DeviceResult<Vec<BlockData>> {
        (**self).read_blocks(ks)
    }
    fn write_blocks(&self, writes: &[(BlockIndex, BlockData)]) -> DeviceResult<()> {
        (**self).write_blocks(writes)
    }
    fn flush(&self) -> DeviceResult<()> {
        (**self).flush()
    }
}

impl<T: BlockDevice + ?Sized> BlockDevice for std::sync::Arc<T> {
    fn num_blocks(&self) -> u64 {
        (**self).num_blocks()
    }
    fn block_size(&self) -> usize {
        (**self).block_size()
    }
    fn read_block(&self, k: BlockIndex) -> DeviceResult<BlockData> {
        (**self).read_block(k)
    }
    fn write_block(&self, k: BlockIndex, data: BlockData) -> DeviceResult<()> {
        (**self).write_block(k, data)
    }
    fn read_blocks(&self, ks: &[BlockIndex]) -> DeviceResult<Vec<BlockData>> {
        (**self).read_blocks(ks)
    }
    fn write_blocks(&self, writes: &[(BlockIndex, BlockData)]) -> DeviceResult<()> {
        (**self).write_blocks(writes)
    }
    fn flush(&self) -> DeviceResult<()> {
        (**self).flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;
    use std::sync::Arc;

    #[test]
    fn trait_is_object_safe() {
        let disk = MemStore::new(4, 64);
        let dyn_dev: &dyn BlockDevice = &disk;
        assert_eq!(dyn_dev.num_blocks(), 4);
        assert_eq!(dyn_dev.block_size(), 64);
    }

    #[test]
    fn blanket_impls_forward() {
        let disk = Arc::new(MemStore::new(2, 8));
        let by_ref: &MemStore = &disk;
        assert_eq!(BlockDevice::num_blocks(&by_ref), 2);
        assert_eq!(disk.block_size(), 8);
        disk.flush().unwrap();
    }

    #[test]
    fn check_block_bounds() {
        let disk = MemStore::new(2, 8);
        assert!(disk.check_block(BlockIndex::new(1)).is_ok());
        let err = disk.check_block(BlockIndex::new(2)).unwrap_err();
        assert!(matches!(err, DeviceError::BlockOutOfRange { .. }));
    }

    #[test]
    fn check_payload_size() {
        let disk = MemStore::new(2, 8);
        assert!(disk.check_payload(&BlockData::zeroed(8)).is_ok());
        let err = disk.check_payload(&BlockData::zeroed(9)).unwrap_err();
        assert!(matches!(
            err,
            DeviceError::WrongBlockSize {
                got: 9,
                expected: 8
            }
        ));
    }
}
