//! Replica disk images: serialize a site's persistent state.
//!
//! Fail-stop sites lose their process but keep their disk. Inside one OS
//! process the `Replica` struct plays the disk's role; these images are the
//! disk's role *across* processes: a server that is shut down exports its
//! image (blocks, version numbers, was-available set) and a later
//! incarnation imports it and runs the ordinary recovery protocol — exactly
//! what a production deployment would persist under each server process.

use crate::replica::Replica;
use crate::{Cluster, ClusterOptions};
use blockrep_storage::VersionedStore;
use blockrep_types::{
    BlockData, BlockIndex, DeviceConfig, DeviceError, DeviceResult, SiteId, SiteState,
    VersionNumber,
};
use bytes::{Buf, BufMut};
use std::collections::BTreeSet;

const MAGIC: [u8; 4] = *b"BRIM"; // BlockRep IMage
const VERSION: u32 = 1;

impl Replica {
    /// Serializes the replica's persistent state: block contents, version
    /// numbers, and the was-available set. Site state is volatile and not
    /// included — an imported replica starts failed, awaiting recovery.
    pub fn to_image(&self) -> Vec<u8> {
        let num_blocks = self.version_vector().len() as u64;
        let block_size = self.data(BlockIndex::new(0)).len();
        let mut buf = Vec::with_capacity(64 + (block_size + 8) * num_blocks as usize);
        buf.put_slice(&MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(self.id().as_u32());
        buf.put_u64_le(num_blocks);
        buf.put_u32_le(block_size as u32);
        let w = self.was_available();
        buf.put_u32_le(w.len() as u32);
        for site in w {
            buf.put_u32_le(site.as_u32());
        }
        for k in BlockIndex::all(num_blocks) {
            let (v, data) = self.versioned(k);
            buf.put_u64_le(v.as_u64());
            buf.put_slice(data.as_slice());
        }
        buf
    }

    /// Reconstructs a replica from an image, validating it against the
    /// device configuration. The replica comes back in the
    /// [`Failed`](SiteState::Failed) state — its process is not running
    /// until the cluster repairs it.
    ///
    /// # Errors
    ///
    /// [`DeviceError::InvalidConfig`] for a corrupt image or one that does
    /// not match the device geometry.
    pub fn from_image(mut raw: &[u8], cfg: &DeviceConfig) -> DeviceResult<Replica> {
        let corrupt = |why: &str| DeviceError::InvalidConfig(format!("replica image: {why}"));
        if raw.len() < 24 {
            return Err(corrupt("truncated header"));
        }
        let mut magic = [0u8; 4];
        raw.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(corrupt("wrong magic"));
        }
        if raw.get_u32_le() != VERSION {
            return Err(corrupt("unsupported version"));
        }
        let id = SiteId::new(raw.get_u32_le());
        if !cfg.contains_site(id) {
            return Err(corrupt("site not in this device"));
        }
        let num_blocks = raw.get_u64_le();
        let block_size = raw.get_u32_le() as usize;
        if num_blocks != cfg.num_blocks() || block_size != cfg.block_size() {
            return Err(corrupt("geometry mismatch"));
        }
        if raw.remaining() < 4 {
            return Err(corrupt("truncated was-available set"));
        }
        let w_len = raw.get_u32_le() as usize;
        if raw.remaining() < w_len * 4 {
            return Err(corrupt("truncated was-available set"));
        }
        let mut w = BTreeSet::new();
        for _ in 0..w_len {
            let site = SiteId::new(raw.get_u32_le());
            if !cfg.contains_site(site) {
                return Err(corrupt("was-available member not in this device"));
            }
            w.insert(site);
        }
        let per_block = 8 + block_size;
        if raw.remaining() != per_block * num_blocks as usize {
            return Err(corrupt("block payload length mismatch"));
        }
        let mut store = VersionedStore::new(num_blocks, block_size);
        for k in BlockIndex::all(num_blocks) {
            let v = VersionNumber::new(raw.get_u64_le());
            let mut data = vec![0u8; block_size];
            raw.copy_to_slice(&mut data);
            store.install(k, BlockData::from(data), v);
        }
        let mut replica = Replica::new(id, cfg);
        replica.set_state(SiteState::Failed);
        replica.set_was_available(w);
        replica.replace_store(store);
        Ok(replica)
    }
}

impl Cluster {
    /// Exports the persistent image of site `s`'s disk (valid in any site
    /// state; a running server exports a point-in-time snapshot).
    pub fn export_site(&self, s: SiteId) -> Vec<u8> {
        assert!(self.config().contains_site(s), "unknown site {s}");
        self.with_replica(s, Replica::to_image)
    }

    /// Replaces the disk of a **failed** site with a previously exported
    /// image — the moment a replacement server boots with the old disk.
    /// Follow with [`repair_site`](Cluster::repair_site) to run recovery.
    ///
    /// # Errors
    ///
    /// [`DeviceError::InvalidConfig`] for a corrupt or mismatched image.
    ///
    /// # Panics
    ///
    /// Panics if `s` is unknown, not currently failed, or the image was
    /// taken from a different site.
    pub fn import_site(&self, s: SiteId, image: &[u8]) -> DeviceResult<()> {
        assert!(self.config().contains_site(s), "unknown site {s}");
        assert_eq!(
            self.site_state(s),
            SiteState::Failed,
            "import requires the site to be down"
        );
        let replica = Replica::from_image(image, self.config())?;
        assert_eq!(replica.id(), s, "image belongs to {}", replica.id());
        self.replace_replica(s, replica);
        Ok(())
    }

    /// Builds a cluster entirely from exported images (a cold restart of
    /// every site). All sites start failed; repair them to resume service.
    ///
    /// # Errors
    ///
    /// [`DeviceError::InvalidConfig`] if any image is corrupt, mismatched,
    /// duplicated, or missing.
    pub fn from_images(
        cfg: DeviceConfig,
        options: ClusterOptions,
        images: &[Vec<u8>],
    ) -> DeviceResult<Cluster> {
        if images.len() != cfg.num_sites() {
            return Err(DeviceError::InvalidConfig(format!(
                "expected {} images, got {}",
                cfg.num_sites(),
                images.len()
            )));
        }
        let cluster = Cluster::new(cfg, options);
        let mut seen = BTreeSet::new();
        for image in images {
            let replica = Replica::from_image(image, cluster.config())?;
            if !seen.insert(replica.id()) {
                return Err(DeviceError::InvalidConfig(format!(
                    "duplicate image for {}",
                    replica.id()
                )));
            }
            let id = replica.id();
            cluster.replace_replica(id, replica);
        }
        Ok(cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockrep_types::Scheme;

    fn cfg() -> DeviceConfig {
        DeviceConfig::builder(Scheme::AvailableCopy)
            .sites(3)
            .num_blocks(4)
            .block_size(16)
            .build()
            .unwrap()
    }

    fn s(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn fill(b: u8) -> BlockData {
        BlockData::from(vec![b; 16])
    }

    #[test]
    fn replica_image_roundtrip() {
        let device = cfg();
        let mut r = Replica::new(s(1), &device);
        r.install(BlockIndex::new(2), fill(7), VersionNumber::new(5));
        r.set_was_available([s(0), s(1)].into_iter().collect());
        let image = r.to_image();
        let back = Replica::from_image(&image, &device).unwrap();
        assert_eq!(back.id(), s(1));
        assert_eq!(
            back.state(),
            SiteState::Failed,
            "imported replicas start failed"
        );
        assert_eq!(back.version(BlockIndex::new(2)), VersionNumber::new(5));
        assert_eq!(back.data(BlockIndex::new(2)), fill(7));
        assert_eq!(back.was_available().len(), 2);
    }

    #[test]
    fn corrupt_images_are_rejected() {
        let device = cfg();
        let r = Replica::new(s(0), &device);
        let image = r.to_image();
        // Wrong magic.
        let mut bad = image.clone();
        bad[0] = b'X';
        assert!(Replica::from_image(&bad, &device).is_err());
        // Truncated.
        assert!(Replica::from_image(&image[..image.len() - 1], &device).is_err());
        // Wrong geometry.
        let small = DeviceConfig::builder(Scheme::AvailableCopy)
            .sites(3)
            .num_blocks(2)
            .block_size(16)
            .build()
            .unwrap();
        assert!(Replica::from_image(&image, &small).is_err());
    }

    #[test]
    fn cluster_cold_restart_from_images() {
        let device = cfg();
        let original = Cluster::new(device.clone(), ClusterOptions::default());
        original
            .write(s(0), BlockIndex::new(0), fill(0xAA))
            .unwrap();
        original.fail_site(s(2));
        original
            .write(s(0), BlockIndex::new(1), fill(0xBB))
            .unwrap();
        let images: Vec<Vec<u8>> = (0..3).map(|i| original.export_site(s(i))).collect();

        // Cold restart: all sites come back failed, with their old disks.
        let restarted = Cluster::from_images(device, ClusterOptions::default(), &images).unwrap();
        assert!(!restarted.is_available());
        for i in [0, 1, 2] {
            restarted.repair_site(s(i));
        }
        assert!(restarted.is_available());
        assert_eq!(
            restarted.read(s(2), BlockIndex::new(0)).unwrap(),
            fill(0xAA)
        );
        // s2 was down for the second write; recovery caught it up.
        assert_eq!(
            restarted.read(s(2), BlockIndex::new(1)).unwrap(),
            fill(0xBB)
        );
    }

    #[test]
    fn single_site_disk_swap() {
        let device = cfg();
        let c = Cluster::new(device, ClusterOptions::default());
        c.write(s(0), BlockIndex::new(0), fill(1)).unwrap();
        let image = c.export_site(s(1));
        c.fail_site(s(1));
        c.write(s(0), BlockIndex::new(0), fill(2)).unwrap();
        // The replacement machine boots with the old (now stale) disk…
        c.import_site(s(1), &image).unwrap();
        c.repair_site(s(1));
        // …and recovery brings it current.
        assert_eq!(c.read(s(1), BlockIndex::new(0)).unwrap(), fill(2));
    }

    #[test]
    fn import_rejects_wrong_site_count() {
        let device = cfg();
        let c = Cluster::new(device.clone(), ClusterOptions::default());
        let images = vec![c.export_site(s(0))];
        assert!(Cluster::from_images(device.clone(), ClusterOptions::default(), &images).is_err());
        let dup = vec![c.export_site(s(0)); 3];
        assert!(Cluster::from_images(device, ClusterOptions::default(), &dup).is_err());
    }
}
