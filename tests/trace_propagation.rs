//! Cross-site trace propagation and its compatibility story.
//!
//! Two invariants share this binary (and a lock, since tracing is a
//! process-global flag):
//!
//! 1. **Mixed versions degrade cleanly.** A traced coordinator talking to a
//!    peer that predates the wire trace envelope gets a hangup on the first
//!    traced frame, falls back to bare frames for that connection, and the
//!    operation still succeeds — the causal tree simply misses that peer's
//!    remote spans.
//! 2. **Untraced-peer mode is byte-identical.** With tracing enabled but
//!    wire tracing off (the default), every runtime produces exactly the
//!    results and §5 traffic counts of a fully untraced run — the parity
//!    the runtime suites pin survives turning the flight recorder on.

use blockrep::core::{Cluster, ClusterOptions, LiveCluster, TcpCluster};
use blockrep::net::{DeliveryMode, TrafficSnapshot};
use blockrep::obs::{self, trace};
use blockrep::types::{BlockData, BlockIndex, DeviceConfig, Scheme, SiteId};
use std::sync::Mutex;

/// Serializes the tests in this file: tracing flags and the flight
/// recorder ring are process-global.
static TRACER_LOCK: Mutex<()> = Mutex::new(());

fn cfg(scheme: Scheme) -> DeviceConfig {
    DeviceConfig::builder(scheme)
        .sites(3)
        .num_blocks(8)
        .block_size(32)
        .build()
        .unwrap()
}

fn s(i: u32) -> SiteId {
    SiteId::new(i)
}

fn blk(i: u64) -> BlockIndex {
    BlockIndex::new(i)
}

fn fill(b: u8) -> BlockData {
    BlockData::from(vec![b; 32])
}

/// Remote-apply span count per site in the current flight recorder.
fn remote_applies_by_site(site: u32) -> usize {
    trace::snapshot()
        .iter()
        .filter(|r| trace::phase_name(r.phase) == "phase.remote_apply" && r.site == site)
        .count()
}

#[test]
fn traced_coordinator_falls_back_to_bare_frames_for_untraced_peers() {
    let _serial = TRACER_LOCK.lock().unwrap();
    let was_obs = obs::enabled();
    let was_tracing = trace::enabled();
    trace::enable();
    trace::clear();

    let tcp = TcpCluster::spawn(cfg(Scheme::Voting), DeliveryMode::Multicast).unwrap();
    tcp.set_wire_tracing(true);
    // Site 2 runs the "old" protocol: traced frames make it hang up.
    tcp.set_untraced_peer(s(2), true);

    // Single-op path (`rpc`): the first scatter to site 2 is traced, gets
    // the hangup, and is retried bare on a fresh connection.
    tcp.write(s(0), blk(0), fill(1)).unwrap();
    // Batched path (`pipelined`): retries happen after the gather loop.
    tcp.write_many(s(0), &[(blk(1), fill(2)), (blk(2), fill(3))])
        .unwrap();
    assert_eq!(tcp.read(s(1), blk(0)).unwrap(), fill(1));
    assert_eq!(tcp.read(s(2), blk(1)).unwrap(), fill(2));
    assert_eq!(tcp.read(s(0), blk(2)).unwrap(), fill(3));

    // The traced peer contributed remote spans; the legacy one could not.
    assert!(
        remote_applies_by_site(1) > 0,
        "traced peer must stitch remote apply spans into the tree"
    );
    assert_eq!(
        remote_applies_by_site(2),
        0,
        "legacy peer cannot emit remote spans"
    );

    // An upgraded peer starts stitching in without reconnect gymnastics:
    // clearing the legacy flag also re-arms the connection's trace_ok.
    tcp.set_untraced_peer(s(2), false);
    trace::clear();
    tcp.write(s(0), blk(3), fill(4)).unwrap();
    assert_eq!(tcp.read(s(1), blk(3)).unwrap(), fill(4));
    assert!(
        remote_applies_by_site(2) > 0,
        "upgraded peer must resume emitting remote spans"
    );

    if !was_tracing {
        trace::disable();
    }
    if !was_obs {
        obs::disable();
    }
}

/// A fixed workload with a failure, a degraded write, a repair, and reads.
fn drive(
    read: &dyn Fn(SiteId, BlockIndex) -> Option<BlockData>,
    write: &dyn Fn(SiteId, BlockIndex, BlockData) -> bool,
    fail: &dyn Fn(SiteId),
    repair: &dyn Fn(SiteId),
    traffic: &dyn Fn() -> TrafficSnapshot,
) -> (Vec<Option<Vec<u8>>>, TrafficSnapshot) {
    write(s(0), blk(0), fill(1));
    write(s(1), blk(1), fill(2));
    fail(s(2));
    write(s(0), blk(0), fill(3));
    repair(s(2));
    write(s(1), blk(2), fill(4));
    let reads = vec![
        read(s(0), blk(0)).map(|d| d.as_slice().to_vec()),
        read(s(2), blk(1)).map(|d| d.as_slice().to_vec()),
        read(s(1), blk(2)).map(|d| d.as_slice().to_vec()),
    ];
    (reads, traffic())
}

#[test]
fn untraced_peer_mode_keeps_runtime_parity_byte_identical() {
    let _serial = TRACER_LOCK.lock().unwrap();
    let was_obs = obs::enabled();
    let was_tracing = trace::enabled();
    // Baseline: everything off.
    trace::disable();
    obs::disable();

    for scheme in Scheme::ALL {
        for mode in DeliveryMode::ALL {
            let det = Cluster::new(cfg(scheme), ClusterOptions { mode });
            let baseline = drive(
                &|o, k| det.read(o, k).ok(),
                &|o, k, d| det.write(o, k, d).is_ok(),
                &|x| det.fail_site(x),
                &|x| det.repair_site(x),
                &|| det.traffic(),
            );

            // Same workload with the flight recorder armed. Wire tracing
            // stays off (the default): frames are byte-identical, so the
            // §5 accounting must be too.
            trace::enable();

            let det2 = Cluster::new(cfg(scheme), ClusterOptions { mode });
            let got = drive(
                &|o, k| det2.read(o, k).ok(),
                &|o, k, d| det2.write(o, k, d).is_ok(),
                &|x| det2.fail_site(x),
                &|x| det2.repair_site(x),
                &|| det2.traffic(),
            );
            assert_eq!(baseline, got, "{scheme}/{mode}: deterministic + tracing");

            let live = LiveCluster::spawn(cfg(scheme), mode);
            let got = drive(
                &|o, k| live.read(o, k).ok(),
                &|o, k, d| live.write(o, k, d).is_ok(),
                &|x| live.fail_site(x),
                &|x| live.repair_site(x),
                &|| live.counter().snapshot(),
            );
            assert_eq!(baseline, got, "{scheme}/{mode}: live + tracing");

            let tcp = TcpCluster::spawn(cfg(scheme), mode).unwrap();
            let got = drive(
                &|o, k| tcp.read(o, k).ok(),
                &|o, k, d| tcp.write(o, k, d).is_ok(),
                &|x| tcp.fail_site(x),
                &|x| tcp.repair_site(x),
                &|| tcp.counter().snapshot(),
            );
            assert_eq!(baseline, got, "{scheme}/{mode}: tcp + tracing");

            trace::disable();
            obs::disable();
        }
    }

    if was_tracing {
        trace::enable();
    } else if was_obs {
        obs::enable();
    }
}
