//! Small numeric helpers shared by the availability formulas.

/// Exact binomial coefficient `C(n, k)` as `f64`.
///
/// Computed multiplicatively over `u128` to stay exact for every `n` the
/// replication analysis can meaningfully use (overflow would need `n > 120`
/// copies of a block).
///
/// # Examples
///
/// ```
/// use blockrep_analysis::math::binomial;
///
/// assert_eq!(binomial(5, 2), 10.0);
/// assert_eq!(binomial(7, 0), 1.0);
/// assert_eq!(binomial(3, 5), 0.0);
/// ```
///
/// # Panics
///
/// Panics if an intermediate product overflows `u128` (requires `n` in the
/// hundreds).
pub fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc
            .checked_mul((n - i) as u128)
            .expect("binomial overflow: n too large for exact arithmetic");
        acc /= (i + 1) as u128;
    }
    acc as f64
}

/// `n!` as `f64`, exact for `n <= 25` (beyond that, `f64` itself rounds).
///
/// # Examples
///
/// ```
/// use blockrep_analysis::math::factorial;
/// assert_eq!(factorial(0), 1.0);
/// assert_eq!(factorial(5), 120.0);
/// ```
pub fn factorial(n: u64) -> f64 {
    (1..=n).fold(1.0, |acc, i| acc * i as f64)
}

/// Validates an availability argument pair: `n >= 1` copies and a finite,
/// nonnegative failure-to-repair ratio.
///
/// # Panics
///
/// Panics on invalid arguments; the availability functions call this so
/// misuse fails loudly rather than returning NaN.
pub fn check_args(n: usize, rho: f64) {
    assert!(n >= 1, "at least one copy required, got n={n}");
    assert!(
        rho.is_finite() && rho >= 0.0,
        "failure-to-repair ratio must be finite and nonnegative, got {rho}"
    );
}

/// Whether two floats agree to within `tol`, absolutely.
pub fn almost_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_matches_pascal_triangle() {
        for n in 0..30u64 {
            assert_eq!(binomial(n, 0), 1.0);
            assert_eq!(binomial(n, n), 1.0);
            for k in 1..n {
                assert_eq!(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
            }
        }
    }

    #[test]
    fn binomial_symmetry() {
        for n in 0..25u64 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
            }
        }
    }

    #[test]
    fn binomial_row_sums_are_powers_of_two() {
        for n in 0..20u64 {
            let sum: f64 = (0..=n).map(|k| binomial(n, k)).sum();
            assert_eq!(sum, (2u64.pow(n as u32)) as f64);
        }
    }

    #[test]
    fn factorial_values() {
        assert_eq!(factorial(1), 1.0);
        assert_eq!(factorial(10), 3_628_800.0);
    }

    #[test]
    #[should_panic(expected = "at least one copy")]
    fn check_args_rejects_zero_copies() {
        check_args(0, 0.1);
    }

    #[test]
    #[should_panic(expected = "finite and nonnegative")]
    fn check_args_rejects_negative_rho() {
        check_args(3, -0.1);
    }

    #[test]
    fn almost_eq_tolerance() {
        assert!(almost_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!almost_eq(1.0, 1.1, 1e-9));
    }
}
