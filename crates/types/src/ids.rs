//! Identifier newtypes for sites and blocks.

use core::fmt;

/// Identifies one *site*: a host running a server process that holds a full
/// copy of the reliable device's blocks.
///
/// Sites are numbered densely from zero within a device, so a `SiteId` also
/// serves as an index into per-site tables.
///
/// # Examples
///
/// ```
/// use blockrep_types::SiteId;
///
/// let s = SiteId::new(3);
/// assert_eq!(s.index(), 3);
/// assert_eq!(s.to_string(), "s3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SiteId(u32);

impl SiteId {
    /// Creates a site identifier from its dense index.
    pub const fn new(index: u32) -> Self {
        SiteId(index)
    }

    /// Returns the dense index of this site, usable as a table index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw numeric value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Iterates over the first `n` site identifiers, `s0..s(n-1)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use blockrep_types::SiteId;
    /// let all: Vec<_> = SiteId::all(3).collect();
    /// assert_eq!(all, vec![SiteId::new(0), SiteId::new(1), SiteId::new(2)]);
    /// ```
    pub fn all(n: usize) -> impl DoubleEndedIterator<Item = SiteId> + ExactSizeIterator {
        (0..n as u32).map(SiteId)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u32> for SiteId {
    fn from(value: u32) -> Self {
        SiteId(value)
    }
}

impl From<SiteId> for u32 {
    fn from(value: SiteId) -> Self {
        value.0
    }
}

/// Identifies one block of the reliable device.
///
/// The reliable device presents the same flat array of fixed-size blocks as
/// an ordinary disk; a `BlockIndex` is an offset into that array.
///
/// # Examples
///
/// ```
/// use blockrep_types::BlockIndex;
///
/// let b = BlockIndex::new(42);
/// assert_eq!(b.index(), 42);
/// assert_eq!(b.to_string(), "b42");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockIndex(u64);

impl BlockIndex {
    /// Creates a block index.
    pub const fn new(index: u64) -> Self {
        BlockIndex(index)
    }

    /// Returns the block offset as a table index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw numeric value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Iterates over the first `n` block indices, `b0..b(n-1)`.
    pub fn all(n: u64) -> impl DoubleEndedIterator<Item = BlockIndex> {
        (0..n).map(BlockIndex)
    }
}

impl fmt::Display for BlockIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl From<u64> for BlockIndex {
    fn from(value: u64) -> Self {
        BlockIndex(value)
    }
}

impl From<BlockIndex> for u64 {
    fn from(value: BlockIndex) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn site_id_roundtrip() {
        let s = SiteId::new(7);
        assert_eq!(u32::from(s), 7);
        assert_eq!(SiteId::from(7u32), s);
        assert_eq!(s.index(), 7);
    }

    #[test]
    fn site_id_display() {
        assert_eq!(SiteId::new(0).to_string(), "s0");
        assert_eq!(SiteId::new(12).to_string(), "s12");
    }

    #[test]
    fn site_id_ordering_follows_index() {
        let mut set = BTreeSet::new();
        set.insert(SiteId::new(2));
        set.insert(SiteId::new(0));
        set.insert(SiteId::new(1));
        let ordered: Vec<_> = set.into_iter().collect();
        assert_eq!(ordered, SiteId::all(3).collect::<Vec<_>>());
    }

    #[test]
    fn site_all_is_exact_size() {
        let iter = SiteId::all(5);
        assert_eq!(iter.len(), 5);
        assert_eq!(iter.last(), Some(SiteId::new(4)));
    }

    #[test]
    fn block_index_roundtrip() {
        let b = BlockIndex::new(99);
        assert_eq!(u64::from(b), 99);
        assert_eq!(BlockIndex::from(99u64), b);
        assert_eq!(b.to_string(), "b99");
    }

    #[test]
    fn block_all_enumerates_in_order() {
        let blocks: Vec<_> = BlockIndex::all(3).collect();
        assert_eq!(
            blocks,
            vec![BlockIndex::new(0), BlockIndex::new(1), BlockIndex::new(2)]
        );
    }

    #[test]
    fn ids_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SiteId>();
        assert_send_sync::<BlockIndex>();
    }
}
