//! Network substrate for `blockrep`.
//!
//! The paper's §5 compares consistency schemes by the number of **high-level
//! transmissions** they generate — vote requests, version-vector exchanges,
//! block transfers — under two network models: a *multi-cast environment*
//! where one transmission reaches many sites, and a *unique addressing
//! environment* where every destination costs a separate message.
//!
//! This crate supplies exactly that bookkeeping, shared by every transport
//! the protocols run over:
//!
//! * [`DeliveryMode`] — multicast vs. unique addressing, with the fan-out
//!   cost rule.
//! * [`MsgKind`] / [`OpClass`] / [`TrafficCounter`] — the taxonomy and
//!   counters of high-level transmissions, attributable per operation.
//! * [`Topology`] — reachability between sites. The available copy schemes
//!   assume a partition-free network; the topology lets tests inject
//!   partitions anyway and watch what breaks.
//! * [`Network`] — a live message router over crossbeam channels for the
//!   threaded server-process runtime.
//!
//! # Examples
//!
//! ```
//! use blockrep_net::{DeliveryMode, MsgKind, OpClass, TrafficCounter};
//!
//! let counter = TrafficCounter::new();
//! // A naive-available-copy write: one multicast update, no replies.
//! let fanout = DeliveryMode::Multicast.fanout_cost(2);
//! counter.add(OpClass::Write, MsgKind::WriteUpdate, fanout);
//! assert_eq!(counter.total(), 1);
//! // The same write with unique addressing costs one message per replica.
//! assert_eq!(DeliveryMode::Unicast.fanout_cost(2), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod live;
mod mode;
mod topology;

pub use counter::{MsgKind, OpClass, TrafficCounter, TrafficSnapshot};
pub use live::{Network, SendError};
pub use mode::{DeliveryMode, FanoutMode};
pub use topology::Topology;
