//! Offline stand-in for `crossbeam` covering the channel API blockrep uses.
//!
//! Channels are backed by `std::sync::mpsc` (whose `Sender` has been `Sync`
//! since Rust 1.72, which the live network layer relies on). The [`select!`]
//! macro is a fair polling loop over `try_recv` rather than a true blocking
//! multiplexer: correctness is identical, the cost is a bounded amount of
//! idle polling latency, which the threaded cluster tolerates.

#![forbid(unsafe_code)]

/// Multi-producer channels with unified bounded/unbounded `Sender`.
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: SenderInner<T>,
    }

    enum SenderInner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let inner = match &self.inner {
                SenderInner::Unbounded(tx) => SenderInner::Unbounded(tx.clone()),
                SenderInner::Bounded(tx) => SenderInner::Bounded(tx.clone()),
            };
            Sender { inner }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking on a full bounded channel.
        ///
        /// # Errors
        ///
        /// Returns the value back if the receiving half was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                SenderInner::Unbounded(tx) => tx.send(value),
                SenderInner::Bounded(tx) => tx.send(value),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives.
        ///
        /// # Errors
        ///
        /// Errors when every sender was dropped and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Returns a queued value without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when no value is queued,
        /// [`TryRecvError::Disconnected`] when the channel is closed.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Blocks for a value up to `timeout`.
        ///
        /// # Errors
        ///
        /// Errors on timeout or disconnect.
        pub fn recv_timeout(
            &self,
            timeout: std::time::Duration,
        ) -> Result<T, mpsc::RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }
    }

    /// Creates a channel of unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: SenderInner::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// Creates a channel that holds at most `cap` in-flight values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: SenderInner::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    pub use crate::select;
}

/// Polling multiplexer over several receivers.
///
/// Supports the `recv(rx) -> msg => body` arm form. Each pass polls every
/// arm with `try_recv`; `Ok` and `Disconnected` results fire the arm (the
/// latter as `Err(RecvError)`, matching crossbeam), `Empty` moves on. A
/// short sleep between passes keeps idle threads cheap.
#[macro_export]
macro_rules! select {
    ($(recv($rx:expr) -> $msg:pat => $body:expr),+ $(,)?) => {
        loop {
            $(
                match $rx.try_recv() {
                    ::core::result::Result::Ok(value) => {
                        let $msg = ::core::result::Result::<_, $crate::channel::RecvError>::Ok(value);
                        break $body;
                    }
                    ::core::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                        let $msg = ::core::result::Result::<_, $crate::channel::RecvError>::Err(
                            $crate::channel::RecvError,
                        );
                        break $body;
                    }
                    ::core::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
                }
            )+
            ::std::thread::sleep(::std::time::Duration::from_micros(20));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError};

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
    }

    #[test]
    fn bounded_roundtrip() {
        let (tx, rx) = bounded(1);
        tx.send("a").unwrap();
        assert_eq!(rx.recv().unwrap(), "a");
    }

    #[test]
    fn select_prefers_ready_arm() {
        let (tx1, rx1) = unbounded::<u32>();
        let (_tx2, rx2) = unbounded::<u32>();
        tx1.send(9).unwrap();
        let got = select! {
            recv(rx1) -> msg => msg.unwrap(),
            recv(rx2) -> msg => msg.unwrap(),
        };
        assert_eq!(got, 9);
    }

    #[test]
    fn select_fires_on_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        let got = select! {
            recv(rx) -> msg => msg.is_err(),
        };
        assert!(got);
    }
}
