//! Source model: lexed files, brace-matched functions, and the helpers the
//! passes share (brace matching, receiver chains, statement boundaries).

use crate::lexer::{self, Lexed, Tok, Token};
use std::io;
use std::path::{Path, PathBuf};

/// One `.rs` file under `crates/*/src`.
pub(crate) struct SourceFile {
    /// Path relative to the scan root, with `/` separators (stable across
    /// platforms so `lint.allow` entries and diagnostics are portable).
    pub(crate) rel: String,
    /// The file stem, e.g. `tcp` — used to namespace lock keys.
    pub(crate) stem: String,
    pub(crate) lexed: Lexed,
    pub(crate) functions: Vec<Function>,
}

/// A scanned `fn` item.
pub(crate) struct Function {
    pub(crate) name: String,
    /// Token range of the signature: `fn` keyword up to (excluding) the
    /// body `{`.
    pub(crate) sig: (usize, usize),
    /// Token range of the body including both braces.
    pub(crate) body: (usize, usize),
    pub(crate) line: u32,
    /// The `impl` type this function sits in, if any.
    pub(crate) impl_type: Option<String>,
}

impl SourceFile {
    pub(crate) fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }
}

/// Every scanned file of the workspace.
pub(crate) struct Workspace {
    pub(crate) files: Vec<SourceFile>,
}

impl Workspace {
    /// Walks `root/crates/*/src/**/*.rs`, lexes and scans every file.
    /// `mod tests` blocks are skipped: the passes guard library invariants,
    /// and test-local locks/atomics would only add noise.
    pub(crate) fn load(root: &Path) -> io::Result<Workspace> {
        let crates_dir = root.join("crates");
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.join("src").is_dir())
            .collect();
        crate_dirs.sort();
        let mut files = Vec::new();
        for crate_dir in crate_dirs {
            let mut sources = Vec::new();
            collect_rs(&crate_dir.join("src"), &mut sources)?;
            sources.sort();
            for path in sources {
                let text = std::fs::read_to_string(&path)?;
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                let stem = path
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let lexed = lexer::lex(&text);
                let functions = scan_functions(&lexed.tokens);
                files.push(SourceFile {
                    rel,
                    stem,
                    lexed,
                    functions,
                });
            }
        }
        Ok(Workspace { files })
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Returns the index of the `}` matching the `{` at `open`.
pub(crate) fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.tok.is_punct('{') {
            depth += 1;
        } else if t.tok.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Returns the index of the `)`/`]` matching the opener at `open`.
pub(crate) fn match_delim(toks: &[Token], open: usize, close: char) -> usize {
    let open_ch = match &toks[open].tok {
        Tok::Punct(c) => *c,
        _ => return open,
    };
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.tok.is_punct(open_ch) {
            depth += 1;
        } else if t.tok.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Walks back from the matched closer at `close` to its opener.
pub(crate) fn match_back(toks: &[Token], close: usize, open_ch: char, close_ch: char) -> usize {
    let mut depth = 0usize;
    let mut i = close;
    loop {
        if toks[i].tok.is_punct(close_ch) {
            depth += 1;
        } else if toks[i].tok.is_punct(open_ch) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        if i == 0 {
            return 0;
        }
        i -= 1;
    }
}

/// The receiver of a `.method(...)` call whose `.` is at index `dot`:
/// the nearest field/variable identifier, plus whether an index expression
/// (`[...]`) sits between it and the method — `self.conns[i].lock()` is
/// `("conns", true)`.
pub(crate) fn receiver(toks: &[Token], dot: usize) -> Option<(String, bool)> {
    if dot == 0 {
        return None;
    }
    let mut k = dot - 1;
    let mut indexed = false;
    if toks[k].tok.is_punct(']') {
        indexed = true;
        k = match_back(toks, k, '[', ']');
        if k == 0 {
            return None;
        }
        k -= 1;
    }
    if toks[k].tok.is_punct(')') {
        // Receiver is itself a call, e.g. `global().lock()`; name it after
        // the called function.
        k = match_back(toks, k, '(', ')');
        if k == 0 {
            return None;
        }
        k -= 1;
    }
    toks[k].tok.ident().map(|s| (s.to_string(), indexed))
}

/// Scans the token stream for `fn` items, tracking enclosing `impl` blocks
/// and skipping `mod tests { ... }`.
fn scan_functions(toks: &[Token]) -> Vec<Function> {
    let mut fns = Vec::new();
    let mut impls: Vec<(String, usize)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while impls.last().is_some_and(|&(_, end)| i >= end) {
            impls.pop();
        }
        match toks[i].tok.ident() {
            Some("mod") if toks.get(i + 1).is_some_and(|t| t.tok.is_ident("tests")) => {
                let mut j = i + 2;
                while j < toks.len() && !toks[j].tok.is_punct('{') && !toks[j].tok.is_punct(';') {
                    j += 1;
                }
                i = if j < toks.len() && toks[j].tok.is_punct('{') {
                    match_brace(toks, j) + 1
                } else {
                    j + 1
                };
                continue;
            }
            Some("impl") => {
                if let Some((name, open)) = scan_impl_header(toks, i) {
                    impls.push((name, match_brace(toks, open)));
                    i = open + 1;
                    continue;
                }
            }
            Some("fn") => {
                if let Some(func) = scan_fn(toks, i, impls.last().map(|(n, _)| n.clone())) {
                    let next = func.body.0 + 1;
                    fns.push(func);
                    i = next;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
    fns
}

/// Parses an `impl` header starting at `at`; returns the implemented type
/// name and the index of the body `{`.
fn scan_impl_header(toks: &[Token], at: usize) -> Option<(String, usize)> {
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    let mut j = at + 1;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('{') if angle <= 0 => {
                return last_ident.map(|name| (name, j));
            }
            Tok::Punct(';') if angle <= 0 => return None,
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => {
                // `->` never appears in an impl header; plain decrement.
                angle -= 1;
            }
            Tok::Ident(s) if angle <= 0 => {
                // `impl Trait for Type` — the type after `for` wins, so
                // reset on `for` and keep the last depth-0 identifier.
                if s == "for" {
                    last_ident = None;
                } else {
                    last_ident = Some(s.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses a `fn` item starting at the `fn` keyword.
fn scan_fn(toks: &[Token], at: usize, impl_type: Option<String>) -> Option<Function> {
    let name = toks.get(at + 1)?.tok.ident()?.to_string();
    let mut angle = 0i32;
    let mut j = at + 2;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('{') if angle <= 0 => {
                let close = match_brace(toks, j);
                return Some(Function {
                    name,
                    sig: (at, j),
                    body: (j, close),
                    line: toks[at].line,
                    impl_type,
                });
            }
            Tok::Punct(';') if angle <= 0 => return None,
            Tok::Punct('<') => angle += 1,
            // `->` introduces the return type; its `>` is not a closer.
            Tok::Punct('>') if !toks[j - 1].tok.is_punct('-') => angle -= 1,
            _ => {}
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> (Vec<Token>, Vec<Function>) {
        let lexed = lexer::lex(src);
        let fns = scan_functions(&lexed.tokens);
        (lexed.tokens, fns)
    }

    #[test]
    fn functions_and_impls_are_found() {
        let src = "
            impl<T: Clone> Foo<T> {
                fn a(&self) -> Option<u32> { Some(1) }
            }
            impl Backend for Bar {
                fn b(&self) {}
            }
            fn free() {}
        ";
        let (_, fns) = scan(src);
        let names: Vec<(&str, Option<&str>)> = fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![("a", Some("Foo")), ("b", Some("Bar")), ("free", None)]
        );
    }

    #[test]
    fn test_modules_are_skipped() {
        let src = "fn real() {} mod tests { fn fake() {} } fn also_real() {}";
        let (_, fns) = scan(src);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real", "also_real"]);
    }

    #[test]
    fn trait_method_declarations_without_bodies_are_ignored() {
        let src = "trait T { fn decl(&self) -> Vec<u8>; fn with_default(&self) {} }";
        let (_, fns) = scan(src);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["with_default"]);
    }

    #[test]
    fn receiver_chains_resolve() {
        let (toks, _) = scan("fn f(&self) { self.conns[t.index()].lock(); self.state.lock(); }");
        let dots: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|&(i, t)| {
                t.tok.is_punct('.') && toks.get(i + 1).is_some_and(|n| n.tok.is_ident("lock"))
            })
            .map(|(i, _)| i)
            .collect();
        assert_eq!(receiver(&toks, dots[0]), Some(("conns".into(), true)));
        assert_eq!(receiver(&toks, dots[1]), Some(("state".into(), false)));
    }
}
