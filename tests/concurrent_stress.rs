//! Concurrency smoke tests: device handles and a failure injector hammering
//! the same cluster from multiple threads.
//!
//! The paper's model is sequential ("we do not attempt to model systems
//! which guard against concurrent access"), so these tests do not assert
//! linearizability under concurrent *writes*; they assert the engineering
//! properties a shared runtime must have anyway: no deadlocks, no panics,
//! no torn blocks, and every read returns a value some writer actually
//! wrote.

use blockrep::core::{Cluster, ClusterOptions, LiveCluster, ReliableDevice};
use blockrep::net::DeliveryMode;
use blockrep::storage::BlockDevice;
use blockrep::types::{BlockData, BlockIndex, DeviceConfig, Scheme, SiteId};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

const BLOCK_SIZE: usize = 64;

fn device_cfg(scheme: Scheme) -> DeviceConfig {
    DeviceConfig::builder(scheme)
        .sites(3)
        .num_blocks(8)
        .block_size(BLOCK_SIZE)
        .build()
        .unwrap()
}

fn fill_of(i: u32) -> BlockData {
    BlockData::from(vec![(i % 251) as u8; BLOCK_SIZE])
}

fn check_block(data: &BlockData, max_written: u32) {
    let bytes = data.as_slice();
    // Not torn: every byte identical.
    let first = bytes[0];
    assert!(bytes.iter().all(|&b| b == first), "torn block read");
    // A value some writer wrote (or the initial zeros).
    assert!(
        first == 0 || (1..=max_written).any(|i| (i % 251) as u8 == first),
        "byte {first} was never written (max {max_written})"
    );
}

#[test]
fn deterministic_cluster_handles_concurrent_clients_and_failures() {
    let cluster = Arc::new(Cluster::new(
        device_cfg(Scheme::AvailableCopy),
        ClusterOptions::default(),
    ));
    let k = BlockIndex::new(0);
    let stop = AtomicBool::new(false);
    let max_written = AtomicU32::new(0);
    std::thread::scope(|scope| {
        // Readers from every site.
        for site in 0..3u32 {
            let cluster = Arc::clone(&cluster);
            let stop = &stop;
            let max_written = &max_written;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let snapshot = max_written.load(Ordering::Acquire);
                    if let Ok(data) = cluster.read(SiteId::new(site), k) {
                        // Concurrent writers may commit past the snapshot;
                        // re-read the bound after, for a safe upper bound.
                        let upper = max_written.load(Ordering::Acquire).max(snapshot);
                        check_block(&data, upper);
                    }
                }
            });
        }
        // Failure injector cycling s2.
        {
            let cluster = Arc::clone(&cluster);
            let stop = &stop;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    cluster.fail_site(SiteId::new(2));
                    std::thread::yield_now();
                    cluster.repair_site(SiteId::new(2));
                    std::thread::yield_now();
                }
            });
        }
        // Writer.
        for i in 1..=2_000u32 {
            // Publish the bound before committing so readers never see a
            // value above their bound.
            max_written.store(i, Ordering::Release);
            let origin = cluster.any_serving_site().expect("s0/s1 always up");
            cluster.write(origin, k, fill_of(i)).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    // Quiesce and verify the final value is the last write.
    if cluster.site_state(SiteId::new(2)) == blockrep::types::SiteState::Failed {
        cluster.repair_site(SiteId::new(2));
    }
    assert_eq!(cluster.read(SiteId::new(2), k).unwrap(), fill_of(2_000));
    blockrep::core::audit::assert_invariants(&*cluster);
}

#[test]
fn live_cluster_handles_concurrent_clients_and_failures() {
    let cluster = Arc::new(LiveCluster::spawn(
        device_cfg(Scheme::NaiveAvailableCopy),
        DeliveryMode::Multicast,
    ));
    let k = BlockIndex::new(1);
    let stop = AtomicBool::new(false);
    let max_written = AtomicU32::new(0);
    std::thread::scope(|scope| {
        for site in [0u32, 1] {
            let cluster = Arc::clone(&cluster);
            let stop = &stop;
            let max_written = &max_written;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let snapshot = max_written.load(Ordering::Acquire);
                    if let Ok(data) = cluster.read(SiteId::new(site), k) {
                        let upper = max_written.load(Ordering::Acquire).max(snapshot);
                        check_block(&data, upper);
                    }
                }
            });
        }
        {
            let cluster = Arc::clone(&cluster);
            let stop = &stop;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    cluster.fail_site(SiteId::new(2));
                    std::thread::yield_now();
                    cluster.repair_site(SiteId::new(2));
                    std::thread::yield_now();
                }
            });
        }
        for i in 1..=1_000u32 {
            max_written.store(i, Ordering::Release);
            cluster.write(SiteId::new(0), k, fill_of(i)).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(cluster.read(SiteId::new(0), k).unwrap(), fill_of(1_000));
}

#[test]
fn failover_commits_concurrent_writers_while_preferred_coordinator_crashes_mid_fanout() {
    let cluster = Arc::new(LiveCluster::spawn(
        device_cfg(Scheme::Voting),
        DeliveryMode::Multicast,
    ));
    // A nonzero link delay keeps fan-outs in flight long enough that the
    // crash injector regularly catches one mid-scatter; leases are on so
    // the failover storm also exercises invalidation and epoch bumps.
    cluster.set_link_latency(std::time::Duration::from_micros(50));
    cluster.set_leases(true);
    let preferred = SiteId::new(0);
    const ROUNDS: u32 = 200;
    const SALT: u32 = 100_000; // distinct fill stream for the second writer
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Crash injector cycling the preferred coordinator.
        {
            let cluster = Arc::clone(&cluster);
            let stop = &stop;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    cluster.fail_site(preferred);
                    std::thread::sleep(std::time::Duration::from_micros(120));
                    cluster.repair_site(preferred);
                    std::thread::yield_now();
                }
            });
        }
        // Two writers on distinct blocks, both preferring the cycling
        // coordinator. Distinct blocks means the sharded lock table lets
        // them run concurrently — neither serializes behind the other.
        let mut writers = Vec::new();
        for (blk, salt) in [(2u64, 0u32), (3, SALT)] {
            let cluster = Arc::clone(&cluster);
            writers.push(scope.spawn(move || {
                let dev = ReliableDevice::new(cluster, preferred);
                let k = BlockIndex::new(blk);
                for i in 1..=ROUNDS {
                    // Failover covers a coordinator that cannot serve; a
                    // quorum lost *mid-fan-out* surfaces as a transient
                    // error instead, and the client retries the round.
                    let mut attempts = 0u32;
                    while dev.write_block(k, fill_of(salt + i)).is_err() {
                        attempts += 1;
                        assert!(
                            attempts < 10_000,
                            "round {i} of block {blk} never committed"
                        );
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    // Quiesce, then the one-copy check: every site reads back exactly the
    // last committed round of each block.
    if cluster.site_state(preferred) == blockrep::types::SiteState::Failed {
        cluster.repair_site(preferred);
    }
    for site in 0..3u32 {
        let origin = SiteId::new(site);
        assert_eq!(
            cluster.read(origin, BlockIndex::new(2)).unwrap(),
            fill_of(ROUNDS),
            "block 2 not exact at site {site}"
        );
        assert_eq!(
            cluster.read(origin, BlockIndex::new(3)).unwrap(),
            fill_of(SALT + ROUNDS),
            "block 3 not exact at site {site}"
        );
    }
}

#[test]
fn filesystem_reads_race_failure_injection() {
    let cluster = Arc::new(Cluster::new(
        DeviceConfig::builder(Scheme::AvailableCopy)
            .sites(3)
            .num_blocks(256)
            .block_size(512)
            .build()
            .unwrap(),
        ClusterOptions::default(),
    ));
    let fs = Arc::new(
        blockrep::fs::FileSystem::format(ReliableDevice::new(Arc::clone(&cluster), SiteId::new(0)))
            .unwrap(),
    );
    fs.write_file("/stable", &vec![0x42; 4096]).unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let fs = Arc::clone(&fs);
            let stop = &stop;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let data = fs.read_file("/stable").unwrap();
                    assert_eq!(data, vec![0x42; 4096]);
                }
            });
        }
        {
            let cluster = Arc::clone(&cluster);
            let stop = &stop;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    cluster.fail_site(SiteId::new(1));
                    std::thread::yield_now();
                    cluster.repair_site(SiteId::new(1));
                }
            });
        }
        // Let the race run for a bounded number of mutation rounds.
        for i in 0..200 {
            fs.write_file(&format!("/churn{}", i % 4), &vec![i as u8; 1024])
                .unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert!(fs.check().unwrap().is_clean());
    let _ = fs.device().num_blocks();
}
