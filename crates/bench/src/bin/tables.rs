//! Regenerates the paper's equation-level results as tables E1–E6: the
//! closed forms of §4 against the independent CTMC solver, Theorem 4.1
//! margins, participation numbers, and the MTTF/MTTR extension.
//!
//! ```text
//! cargo run --release -p blockrep-bench --bin tables
//! ```

fn main() {
    blockrep_bench::report::tables();
}
