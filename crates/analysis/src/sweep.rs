//! Parameter sweeps and table/CSV rendering for the figure regenerators.

/// One labeled curve: `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The curve's points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a series by evaluating `f` over `xs`.
    pub fn from_fn(label: impl Into<String>, xs: &[f64], mut f: impl FnMut(f64) -> f64) -> Self {
        Series {
            label: label.into(),
            points: xs.iter().map(|&x| (x, f(x))).collect(),
        }
    }

    /// The y values only.
    pub fn ys(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, y)| y).collect()
    }
}

/// An evenly spaced grid of `steps + 1` points spanning `[lo, hi]`.
///
/// # Examples
///
/// ```
/// use blockrep_analysis::sweep::grid;
/// assert_eq!(grid(0.0, 1.0, 4), vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
///
/// # Panics
///
/// Panics if `steps == 0` or `hi < lo`.
pub fn grid(lo: f64, hi: f64, steps: usize) -> Vec<f64> {
    assert!(steps > 0, "a grid needs at least one step");
    assert!(hi >= lo, "grid bounds out of order");
    (0..=steps)
        .map(|i| lo + (hi - lo) * i as f64 / steps as f64)
        .collect()
}

/// Renders aligned series as a markdown table with the x column first.
///
/// # Panics
///
/// Panics if the series do not share identical x grids.
pub fn markdown_table(x_name: &str, series: &[Series], precision: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {x_name} |"));
    for s in series {
        out.push_str(&format!(" {} |", s.label));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in series {
        out.push_str("---|");
    }
    out.push('\n');
    let n = series.first().map_or(0, |s| s.points.len());
    for s in series {
        assert_eq!(s.points.len(), n, "series must share the same grid");
    }
    for i in 0..n {
        let x = series[0].points[i].0;
        out.push_str(&format!("| {x:.4} |"));
        for s in series {
            assert!(
                (s.points[i].0 - x).abs() < 1e-12,
                "series must share the same grid"
            );
            out.push_str(&format!(" {:.*} |", precision, s.points[i].1));
        }
        out.push('\n');
    }
    out
}

/// Renders aligned series as CSV with a header row.
///
/// # Panics
///
/// Panics if the series do not share identical x grids.
pub fn csv(x_name: &str, series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str(x_name);
    for s in series {
        out.push(',');
        out.push_str(&s.label);
    }
    out.push('\n');
    let n = series.first().map_or(0, |s| s.points.len());
    for i in 0..n {
        let x = series[0].points[i].0;
        out.push_str(&format!("{x}"));
        for s in series {
            assert_eq!(s.points.len(), n, "series must share the same grid");
            assert!(
                (s.points[i].0 - x).abs() < 1e-12,
                "series must share the same grid"
            );
            out.push_str(&format!(",{}", s.points[i].1));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_endpoints_are_exact() {
        let g = grid(0.0, 0.2, 20);
        assert_eq!(g.len(), 21);
        assert_eq!(g[0], 0.0);
        assert_eq!(*g.last().unwrap(), 0.2);
    }

    #[test]
    fn series_from_fn_evaluates_in_order() {
        let s = Series::from_fn("sq", &[1.0, 2.0, 3.0], |x| x * x);
        assert_eq!(s.ys(), vec![1.0, 4.0, 9.0]);
    }

    #[test]
    fn markdown_table_shape() {
        let xs = [0.0, 1.0];
        let a = Series::from_fn("a", &xs, |x| x);
        let b = Series::from_fn("b", &xs, |x| 2.0 * x);
        let t = markdown_table("x", &[a, b], 2);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, 2 rows
        assert!(lines[0].contains("| a |"));
        assert!(lines[3].contains("2.00"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let xs = [0.5];
        let a = Series::from_fn("a", &xs, |x| x + 1.0);
        let c = csv("rho", &[a]);
        assert_eq!(c, "rho,a\n0.5,1.5\n");
    }

    #[test]
    #[should_panic(expected = "same grid")]
    fn mismatched_grids_panic() {
        let a = Series::from_fn("a", &[0.0, 1.0], |x| x);
        let b = Series::from_fn("b", &[0.0], |x| x);
        let _ = markdown_table("x", &[a, b], 2);
    }
}
