//! The TCP cluster: server processes behind real sockets.
//!
//! The paper's deployment is "a set of server processes on several sites" of
//! a network. [`TcpCluster`] is that, minus the machine room: every site is
//! an OS thread owning its replica behind a loopback `TcpListener`, and
//! every protocol exchange is a length-prefixed [`wire`](crate::wire) frame
//! over a real socket — serialization, framing and all. The protocol logic
//! is still the one shared implementation (this type implements
//! [`Backend`](crate::backend::Backend)), so the three runtimes —
//! deterministic, channel-threaded, TCP — are interchangeable and must
//! agree, which the integration tests check.
//!
//! Fail-stop is enforced at the coordination layer (a failed site is not
//! contacted), keeping failure injection deterministic; the site's server
//! keeps its socket and its disk, exactly like a halted machine keeps both.
//! Partitions are not modeled on this transport — the available copy
//! schemes assume none, and the deterministic runtimes cover the
//! partition experiments.

use crate::backend::Backend;
use crate::replica::Replica;
use crate::wire::{self, WireRequest, WireResponse};
use crate::{protocol, RepairBlocks};
use blockrep_net::{DeliveryMode, TrafficCounter};
use blockrep_types::{
    BlockData, BlockIndex, DeviceConfig, DeviceResult, SiteId, SiteState, VersionNumber,
    VersionVector,
};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeSet;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;

fn serve(mut replica: Replica, listener: TcpListener) {
    // Single-coordinator design: serve exactly one connection, then exit.
    let Ok((mut conn, _)) = listener.accept() else {
        return;
    };
    // Request/response over one socket: Nagle + delayed ACK would add
    // ~40ms to every round trip.
    let _ = conn.set_nodelay(true);
    loop {
        let Ok(frame) = wire::read_frame(&mut conn) else {
            return; // coordinator hung up
        };
        let Ok(request) = WireRequest::decode(&frame) else {
            return; // corrupt peer: halt, fail-stop style
        };
        let response = match request {
            WireRequest::Shutdown => return,
            WireRequest::Probe => WireResponse::Ack,
            WireRequest::Vote(k) => WireResponse::Version(replica.version(k)),
            WireRequest::Fetch(k) => {
                let (v, data) = replica.versioned(k);
                WireResponse::Block(v, data)
            }
            WireRequest::ApplyWrite(k, v, data) => {
                replica.install(k, data, v);
                WireResponse::Ack
            }
            WireRequest::ReadLocal(k) => WireResponse::Data(replica.data(k)),
            WireRequest::VersionVector => WireResponse::Vector(replica.version_vector()),
            WireRequest::RepairPayload(vv) => {
                let (vv, blocks) = replica.repair_payload(&vv);
                WireResponse::Payload(vv, blocks)
            }
            WireRequest::ApplyRepair(blocks) => {
                replica.apply_repair(blocks);
                WireResponse::Ack
            }
            WireRequest::GetW => WireResponse::W(replica.was_available().clone()),
            WireRequest::SetW(w) => {
                replica.set_was_available(w);
                WireResponse::Ack
            }
            WireRequest::AddW(s) => {
                replica.add_was_available(s);
                WireResponse::Ack
            }
            WireRequest::ApplyWriteFaulty(k, v, data, fault) => {
                replica.install_faulty(k, data, v, fault);
                WireResponse::Ack
            }
            WireRequest::Scrub => WireResponse::Count(replica.scrub().len() as u64),
        };
        if wire::write_frame(&mut conn, &response.encode()).is_err() {
            return;
        }
    }
}

/// A cluster of replica servers behind loopback TCP sockets.
///
/// # Examples
///
/// ```
/// use blockrep_core::TcpCluster;
/// use blockrep_net::DeliveryMode;
/// use blockrep_types::{BlockData, BlockIndex, DeviceConfig, Scheme, SiteId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = DeviceConfig::builder(Scheme::NaiveAvailableCopy)
///     .sites(3).num_blocks(4).block_size(16).build()?;
/// let cluster = TcpCluster::spawn(cfg, DeliveryMode::Multicast)?;
/// let k = BlockIndex::new(0);
/// cluster.write(SiteId::new(0), k, BlockData::from(vec![7; 16]))?;
/// cluster.fail_site(SiteId::new(0));
/// assert_eq!(cluster.read(SiteId::new(1), k)?.as_slice(), &[7; 16]);
/// # Ok(())
/// # }
/// ```
pub struct TcpCluster {
    cfg: DeviceConfig,
    states: RwLock<Vec<SiteState>>,
    counter: TrafficCounter,
    mode: DeliveryMode,
    addrs: Vec<SocketAddr>,
    conns: Vec<Mutex<TcpStream>>,
    handles: Vec<JoinHandle<()>>,
}

impl TcpCluster {
    /// Binds one loopback listener per site, spawns the server threads, and
    /// connects the coordinator to each.
    ///
    /// # Errors
    ///
    /// I/O errors from binding or connecting the loopback sockets.
    pub fn spawn(cfg: DeviceConfig, mode: DeliveryMode) -> io::Result<TcpCluster> {
        let n = cfg.num_sites();
        let mut addrs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for s in cfg.site_ids() {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            addrs.push(listener.local_addr()?);
            let replica = Replica::new(s, &cfg);
            handles.push(std::thread::spawn(move || serve(replica, listener)));
        }
        let mut conns = Vec::with_capacity(n);
        for addr in &addrs {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            conns.push(Mutex::new(stream));
        }
        Ok(TcpCluster {
            states: RwLock::new(vec![SiteState::Available; n]),
            counter: TrafficCounter::new(),
            mode,
            addrs,
            conns,
            handles,
            cfg,
        })
    }

    /// The socket address of site `s`'s server.
    pub fn addr(&self, s: SiteId) -> SocketAddr {
        self.addrs[s.index()]
    }

    /// Reads block `k`, coordinated by site `origin`.
    ///
    /// # Errors
    ///
    /// As for [`Cluster::read`](crate::Cluster::read).
    pub fn read(&self, origin: SiteId, k: BlockIndex) -> DeviceResult<BlockData> {
        protocol::read(self, origin, k)
    }

    /// Writes block `k`, coordinated by site `origin`.
    ///
    /// # Errors
    ///
    /// As for [`Cluster::write`](crate::Cluster::write).
    pub fn write(&self, origin: SiteId, k: BlockIndex, data: BlockData) -> DeviceResult<()> {
        protocol::write(self, origin, k, data)
    }

    /// Fail-stops site `s` (it stops being contacted; its server and disk
    /// survive, like a halted machine).
    pub fn fail_site(&self, s: SiteId) {
        assert!(self.cfg.contains_site(s), "unknown site {s}");
        protocol::fail(self, s);
    }

    /// Restarts site `s` and runs the scheme's recovery.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not currently failed.
    pub fn repair_site(&self, s: SiteId) {
        assert!(self.cfg.contains_site(s), "unknown site {s}");
        assert_eq!(
            self.site_state(s),
            SiteState::Failed,
            "repairing a site that is not failed"
        );
        protocol::repair(self, s);
    }

    /// The state of site `s`.
    pub fn site_state(&self, s: SiteId) -> SiteState {
        self.states.read()[s.index()]
    }

    /// Whether the device is available under the scheme's criterion.
    pub fn is_available(&self) -> bool {
        protocol::is_available(self)
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// The §5 transmission counter.
    pub fn counter(&self) -> &TrafficCounter {
        &self.counter
    }

    fn rpc(&self, to: SiteId, request: WireRequest) -> Option<WireResponse> {
        let _timer = crate::obs_hooks::timer(crate::obs_hooks::tcp_rpc_latency);
        let mut conn = self.conns[to.index()].lock();
        wire::write_frame(&mut *conn, &request.encode()).ok()?;
        let frame = wire::read_frame(&mut *conn).ok()?;
        WireResponse::decode(&frame).ok()
    }

    /// Whether the coordinator will contact `to` on behalf of `from`.
    fn reachable(&self, from: SiteId, to: SiteId) -> bool {
        let states = self.states.read();
        from == to || (states[from.index()].is_operational() && states[to.index()].is_operational())
    }
}

impl Backend for TcpCluster {
    fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    fn delivery_mode(&self) -> DeliveryMode {
        self.mode
    }

    fn counter(&self) -> &TrafficCounter {
        &self.counter
    }

    fn local_state(&self, s: SiteId) -> SiteState {
        self.states.read()[s.index()]
    }

    fn set_local_state(&self, s: SiteId, state: SiteState) {
        self.states.write()[s.index()] = state;
    }

    fn probe_state(&self, from: SiteId, to: SiteId) -> Option<SiteState> {
        if from != to && !self.reachable(from, to) {
            return None;
        }
        let state = self.states.read()[to.index()];
        state.is_operational().then_some(state)
    }

    fn vote(&self, from: SiteId, to: SiteId, k: BlockIndex) -> Option<VersionNumber> {
        if from != to && !self.reachable(from, to) {
            return None;
        }
        match self.rpc(to, WireRequest::Vote(k))? {
            WireResponse::Version(v) => Some(v),
            _ => None,
        }
    }

    fn fetch_block(
        &self,
        from: SiteId,
        to: SiteId,
        k: BlockIndex,
    ) -> Option<(VersionNumber, BlockData)> {
        if from != to && !self.reachable(from, to) {
            return None;
        }
        match self.rpc(to, WireRequest::Fetch(k))? {
            WireResponse::Block(v, data) => Some((v, data)),
            _ => None,
        }
    }

    fn apply_write(
        &self,
        from: SiteId,
        to: SiteId,
        k: BlockIndex,
        data: &BlockData,
        v: VersionNumber,
    ) -> bool {
        if from != to && !self.reachable(from, to) {
            return false;
        }
        matches!(
            self.rpc(to, WireRequest::ApplyWrite(k, v, data.clone())),
            Some(WireResponse::Ack)
        )
    }

    fn read_local(&self, s: SiteId, k: BlockIndex) -> BlockData {
        match self.rpc(s, WireRequest::ReadLocal(k)) {
            Some(WireResponse::Data(data)) => data,
            other => unreachable!("a site can always read its own disk (got {other:?})"),
        }
    }

    fn version_vector(&self, from: SiteId, to: SiteId) -> Option<VersionVector> {
        if from != to && !self.reachable(from, to) {
            return None;
        }
        match self.rpc(to, WireRequest::VersionVector)? {
            WireResponse::Vector(vv) => Some(vv),
            _ => None,
        }
    }

    fn repair_payload(
        &self,
        from: SiteId,
        to: SiteId,
        vv: &VersionVector,
    ) -> Option<(VersionVector, RepairBlocks)> {
        if from != to && !self.reachable(from, to) {
            return None;
        }
        match self.rpc(to, WireRequest::RepairPayload(vv.clone()))? {
            WireResponse::Payload(vv, blocks) => Some((vv, blocks)),
            _ => None,
        }
    }

    fn apply_repair_local(&self, s: SiteId, blocks: RepairBlocks) -> usize {
        let n = blocks.len();
        match self.rpc(s, WireRequest::ApplyRepair(blocks)) {
            Some(WireResponse::Ack) => n,
            _ => 0,
        }
    }

    fn was_available(&self, from: SiteId, to: SiteId) -> Option<BTreeSet<SiteId>> {
        if from != to && !self.reachable(from, to) {
            return None;
        }
        match self.rpc(to, WireRequest::GetW)? {
            WireResponse::W(w) => Some(w),
            _ => None,
        }
    }

    fn set_was_available(&self, from: SiteId, to: SiteId, w: &BTreeSet<SiteId>) -> bool {
        if from != to && !self.reachable(from, to) {
            return false;
        }
        matches!(
            self.rpc(to, WireRequest::SetW(w.clone())),
            Some(WireResponse::Ack)
        )
    }

    fn add_was_available(&self, from: SiteId, to: SiteId, member: SiteId) -> bool {
        if from != to && !self.reachable(from, to) {
            return false;
        }
        matches!(
            self.rpc(to, WireRequest::AddW(member)),
            Some(WireResponse::Ack)
        )
    }

    fn apply_write_faulty(
        &self,
        from: SiteId,
        to: SiteId,
        k: BlockIndex,
        data: &BlockData,
        v: VersionNumber,
        fault: blockrep_storage::StorageFault,
    ) -> bool {
        if from != to && !self.reachable(from, to) {
            return false;
        }
        matches!(
            self.rpc(to, WireRequest::ApplyWriteFaulty(k, v, data.clone(), fault)),
            Some(WireResponse::Ack)
        )
    }

    fn scrub_local(&self, s: SiteId) -> usize {
        match self.rpc(s, WireRequest::Scrub) {
            Some(WireResponse::Count(n)) => n as usize,
            _ => 0,
        }
    }
}

impl Drop for TcpCluster {
    fn drop(&mut self) {
        for conn in &self.conns {
            let mut conn = conn.lock();
            let _ = wire::write_frame(&mut *conn, &WireRequest::Shutdown.encode());
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for TcpCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpCluster")
            .field("sites", &self.cfg.num_sites())
            .field("scheme", &self.cfg.scheme())
            .field("addrs", &self.addrs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockrep_types::Scheme;

    fn sid(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn tcp(scheme: Scheme, n: usize) -> TcpCluster {
        let cfg = DeviceConfig::builder(scheme)
            .sites(n)
            .num_blocks(4)
            .block_size(32)
            .build()
            .unwrap();
        TcpCluster::spawn(cfg, DeliveryMode::Multicast).unwrap()
    }

    #[test]
    fn tcp_write_read_roundtrip_all_schemes() {
        for scheme in Scheme::ALL {
            let c = tcp(scheme, 3);
            let k = BlockIndex::new(1);
            c.write(sid(0), k, BlockData::from(vec![9; 32])).unwrap();
            for i in 0..3 {
                assert_eq!(c.read(sid(i), k).unwrap().as_slice(), &[9; 32], "{scheme}");
            }
        }
    }

    #[test]
    fn tcp_failure_and_recovery() {
        let c = tcp(Scheme::AvailableCopy, 3);
        let k = BlockIndex::new(0);
        c.write(sid(0), k, BlockData::from(vec![1; 32])).unwrap();
        c.fail_site(sid(2));
        c.write(sid(0), k, BlockData::from(vec![2; 32])).unwrap();
        c.repair_site(sid(2));
        assert_eq!(c.site_state(sid(2)), SiteState::Available);
        assert_eq!(c.read(sid(2), k).unwrap().as_slice(), &[2; 32]);
    }

    #[test]
    fn tcp_total_failure_naive_waits_for_all() {
        let c = tcp(Scheme::NaiveAvailableCopy, 3);
        c.write(sid(0), BlockIndex::new(0), BlockData::from(vec![7; 32]))
            .unwrap();
        for i in 0..3 {
            c.fail_site(sid(i));
        }
        c.repair_site(sid(2));
        assert!(!c.is_available());
        c.repair_site(sid(0));
        c.repair_site(sid(1));
        assert!(c.is_available());
        assert_eq!(
            c.read(sid(0), BlockIndex::new(0)).unwrap().as_slice(),
            &[7; 32]
        );
    }

    #[test]
    fn tcp_voting_quorum() {
        let c = tcp(Scheme::Voting, 3);
        c.fail_site(sid(1));
        c.fail_site(sid(2));
        assert!(c.read(sid(0), BlockIndex::new(0)).is_err());
        c.repair_site(sid(1));
        assert!(c.read(sid(0), BlockIndex::new(0)).is_ok());
    }

    #[test]
    fn shutdown_is_clean() {
        let c = tcp(Scheme::Voting, 4);
        c.write(sid(0), BlockIndex::new(0), BlockData::from(vec![1; 32]))
            .unwrap();
        drop(c); // joins all server threads without hanging
    }

    #[test]
    fn addresses_are_distinct_loopback_ports() {
        let c = tcp(Scheme::Voting, 3);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..3 {
            let addr = c.addr(sid(i));
            assert!(addr.ip().is_loopback());
            assert!(seen.insert(addr), "duplicate {addr}");
        }
    }
}
