//! The `lint.allow` baseline file.
//!
//! Format — one entry per line, `#` comments and blank lines ignored:
//!
//! ```text
//! <pass> <file>[:<line>|:*] <reason — mandatory free text>
//! ```
//!
//! `<file>` matches any diagnostic path ending with it, so entries stay
//! valid when the workspace is checked out under a different root. An
//! entry without a reason is a hard error: a suppression nobody can
//! justify is a bug report, not a baseline.

use std::fmt;

/// One parsed baseline entry.
#[derive(Debug)]
pub(crate) struct AllowEntry {
    pub(crate) pass: String,
    pub(crate) file: String,
    /// `None` means any line (`:*` or no line suffix).
    pub(crate) line: Option<u32>,
    pub(crate) source_line: usize,
    pub(crate) used: bool,
}

/// A malformed baseline file.
#[derive(Debug)]
pub(crate) struct AllowError {
    pub(crate) source_line: usize,
    pub(crate) message: String,
}

impl fmt::Display for AllowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.allow:{}: {}", self.source_line, self.message)
    }
}

/// Parses the baseline file contents.
pub(crate) fn parse(text: &str) -> Result<Vec<AllowEntry>, AllowError> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let source_line = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let pass = parts.next().unwrap_or_default();
        let target = parts.next().unwrap_or_default();
        let reason = parts.next().unwrap_or_default().trim();
        if target.is_empty() {
            return Err(AllowError {
                source_line,
                message: "expected `<pass> <file>[:line] <reason>`".into(),
            });
        }
        if reason.is_empty() {
            return Err(AllowError {
                source_line,
                message: format!(
                    "entry `{pass} {target}` has no reason; every suppression must \
                     say why it is sound"
                ),
            });
        }
        let (file, line_spec) = match target.rsplit_once(':') {
            Some((f, spec)) if !spec.is_empty() => (f, Some(spec)),
            _ => (target, None),
        };
        let line = match line_spec {
            None | Some("*") => None,
            Some(spec) => match spec.parse::<u32>() {
                Ok(n) => Some(n),
                Err(_) => {
                    return Err(AllowError {
                        source_line,
                        message: format!("bad line spec `{spec}` (number or `*`)"),
                    });
                }
            },
        };
        entries.push(AllowEntry {
            pass: pass.to_string(),
            file: file.to_string(),
            line,
            source_line,
            used: false,
        });
    }
    Ok(entries)
}

impl AllowEntry {
    /// Whether this entry suppresses a finding from `pass` at `file:line`.
    pub(crate) fn matches(&self, pass: &str, file: &str, line: u32) -> bool {
        self.pass == pass && file.ends_with(&self.file) && self.line.is_none_or(|l| l == line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_parse_and_match() {
        let text = "# baseline\n\natomics crates/obs/src/trace.rs:* seqlock reads are fenced\nlock-order tcp.rs:42 checked by hand\n";
        let entries = parse(text).unwrap();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].matches("atomics", "crates/obs/src/trace.rs", 7));
        assert!(!entries[0].matches("lock-order", "crates/obs/src/trace.rs", 7));
        assert!(entries[1].matches("lock-order", "crates/core/src/tcp.rs", 42));
        assert!(!entries[1].matches("lock-order", "crates/core/src/tcp.rs", 43));
    }

    #[test]
    fn reasonless_entries_are_rejected() {
        let err = parse("atomics trace.rs:12\n").unwrap_err();
        assert!(err.message.contains("no reason"), "{err}");
        assert_eq!(err.source_line, 1);
    }
}
