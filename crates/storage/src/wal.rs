//! Per-site write-ahead journal with group commit.
//!
//! The write-back cache (DESIGN.md §4e) buys coalescing by holding dirty
//! blocks in client memory, and the paper's §3.2 write-all durability
//! guarantee is lost for exactly as long as they stay there. The journal
//! restores it without giving the coalescing back: every install appends a
//! checksummed, length-prefixed `(block, version, payload)` record to a
//! sequential log, and **group commit** folds a batch of appends into one
//! vectored device write followed by a single [`flush`](BlockDevice::flush)
//! (`sync_data` on a [`FileStore`](crate::FileStore)). A burst of N installs
//! therefore costs one fsync instead of N — the regime studied for
//! synchronous writes on stable memory devices — while the log, not the
//! data device, is the durable truth.
//!
//! # On-device layout
//!
//! The journal lives on any [`BlockDevice`]. Block 0 is a superblock
//! (magic, format version, epoch, advisory committed length, checksum),
//! rewritten only by [`Wal::truncate`] — never by a commit. Records are
//! packed densely from block 1 onward:
//!
//! ```text
//! [len: u32] [crc: u64] [block: u64] [version: u64] [payload: len-16 bytes]
//! ```
//!
//! all little-endian, where `crc` is FNV-1a over the journal **epoch**
//! followed by `block`, `version` and the payload. Folding the epoch into
//! the checksum is what makes truncation cheap: bumping the epoch in the
//! superblock invalidates every record byte still sitting in the data
//! region, so truncate never has to erase anything.
//!
//! # Recovery
//!
//! [`Wal::open`] ignores the advisory committed length and scans the whole
//! data region for the longest valid prefix of records, stopping at the
//! first short read or checksum mismatch — the torn tail a crash can leave
//! behind. [`Journaled::open`] replays that prefix onto the data device in
//! append order before serving a single read, then checkpoints. A crash at
//! *any* byte offset of the journal therefore loses at most the records
//! whose group commit had not yet returned — exactly the writes that were
//! never acknowledged.

use crate::BlockDevice;
use blockrep_obs::metrics::{global, Counter};
use blockrep_types::{BlockData, BlockIndex, DeviceError, DeviceResult, VersionNumber};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Superblock magic: "BRWL" (blockrep write-ahead log).
const MAGIC: [u8; 4] = *b"BRWL";
/// On-device format version.
const FORMAT: u32 = 1;
/// Bytes of the superblock that carry data (magic + format + epoch +
/// committed length + checksum).
const SUPERBLOCK_LEN: usize = 4 + 4 + 8 + 8 + 8;
/// Bytes of a record before the payload (`len` + `crc` framing followed by
/// the `block` and `version` fields counted inside `len`).
const RECORD_HEADER: usize = 4 + 8 + 8 + 8;
/// Fixed portion counted by a record's `len` field (`block` + `version`).
const RECORD_FIXED: u32 = 16;

/// FNV-1a, the same dependency-free checksum the
/// [`VersionedStore`](crate::VersionedStore) uses per block; the threat
/// model is a crash, not an adversary.
fn fnv1a(chunks: &[&[u8]]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for chunk in chunks {
        for b in *chunk {
            h ^= u64::from(*b);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// One journal entry: the `(block, version-vector line, payload)` triple of
/// a single install.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The block the install targets.
    pub block: BlockIndex,
    /// The version-vector line shipped with the install.
    pub version: VersionNumber,
    /// The block payload.
    pub payload: BlockData,
}

impl WalRecord {
    /// Bytes this record occupies in the log.
    pub fn encoded_len(&self) -> usize {
        RECORD_HEADER + self.payload.len()
    }
}

/// Encodes one record for journal `epoch`.
pub fn encode_record(epoch: u64, rec: &WalRecord) -> Vec<u8> {
    let len = RECORD_FIXED + rec.payload.len() as u32;
    let crc = fnv1a(&[
        &epoch.to_le_bytes(),
        &rec.block.as_u64().to_le_bytes(),
        &rec.version.as_u64().to_le_bytes(),
        rec.payload.as_slice(),
    ]);
    let mut out = Vec::with_capacity(rec.encoded_len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&rec.block.as_u64().to_le_bytes());
    out.extend_from_slice(&rec.version.as_u64().to_le_bytes());
    out.extend_from_slice(rec.payload.as_slice());
    out
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(b)
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(b)
}

/// Decodes the record starting at `bytes[0]` for `epoch`, returning it with
/// the number of bytes it occupied — or `None` on a short read, a framing
/// violation, or a checksum mismatch (all three mean "torn tail" to a
/// recovery scan).
pub fn decode_record(epoch: u64, bytes: &[u8]) -> Option<(WalRecord, usize)> {
    if bytes.len() < RECORD_HEADER {
        return None;
    }
    let len = read_u32(bytes, 0);
    if len < RECORD_FIXED {
        return None;
    }
    let payload_len = (len - RECORD_FIXED) as usize;
    let total = RECORD_HEADER + payload_len;
    if bytes.len() < total {
        return None;
    }
    let crc = read_u64(bytes, 4);
    let block = read_u64(bytes, 12);
    let version = read_u64(bytes, 20);
    let payload = &bytes[RECORD_HEADER..total];
    let expect = fnv1a(&[
        &epoch.to_le_bytes(),
        &block.to_le_bytes(),
        &version.to_le_bytes(),
        payload,
    ]);
    if crc != expect {
        return None;
    }
    Some((
        WalRecord {
            block: BlockIndex::new(block),
            version: VersionNumber::new(version),
            payload: BlockData::from(payload.to_vec()),
        },
        total,
    ))
}

/// Scans `bytes` for the longest valid prefix of `epoch` records, stopping
/// at the first torn record. Returns the records and the prefix length in
/// bytes; everything past the prefix is the discarded tail.
pub fn scan(epoch: u64, bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0;
    while let Some((rec, used)) = decode_record(epoch, &bytes[pos..]) {
        records.push(rec);
        pos += used;
    }
    (records, pos)
}

/// Cumulative counters of a [`Wal`] (and of the [`Journaled`] wrapper over
/// it). Counters survive truncation; `epoch`, `committed_len` and
/// `pending_records` describe the current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStats {
    /// Records appended.
    pub appends: u64,
    /// Group commits — each one device write batch plus exactly one
    /// [`flush`](BlockDevice::flush) of the journal device.
    pub commits: u64,
    /// Bytes made durable by commits.
    pub synced_bytes: u64,
    /// Records recovered by [`Wal::open`]'s scan.
    pub replayed: u64,
    /// Torn or stale tail bytes discarded by [`Wal::open`]'s scan.
    pub discarded_bytes: u64,
    /// Epoch bumps ([`Wal::truncate`] calls).
    pub truncations: u64,
    /// Current journal epoch.
    pub epoch: u64,
    /// Bytes of the record stream that are durable.
    pub committed_len: u64,
    /// Records appended but not yet committed.
    pub pending_records: u64,
}

/// Gated global mirrors of [`WalStats`], resolved once like the cache's
/// (see `cache.rs`): a disabled-observability bump pays one relaxed load.
struct ObsWal {
    appends: Arc<Counter>,
    commits: Arc<Counter>,
    synced_bytes: Arc<Counter>,
    replayed: Arc<Counter>,
    discarded_bytes: Arc<Counter>,
    truncations: Arc<Counter>,
}

impl ObsWal {
    fn get() -> &'static ObsWal {
        static SET: OnceLock<ObsWal> = OnceLock::new();
        SET.get_or_init(|| ObsWal {
            appends: global().counter("storage.wal.appends"),
            commits: global().counter("storage.wal.commits"),
            synced_bytes: global().counter("storage.wal.synced_bytes"),
            replayed: global().counter("storage.wal.replayed"),
            discarded_bytes: global().counter("storage.wal.discarded_bytes"),
            truncations: global().counter("storage.wal.truncations"),
        })
    }
}

#[derive(Debug)]
struct WalState {
    /// The full record byte stream of the current epoch (committed prefix
    /// plus pending tail). Keeping it in memory avoids read-modify-write of
    /// the partial tail block on every commit.
    buf: Vec<u8>,
    /// Bytes of `buf` that are durable on the journal device.
    committed_len: usize,
    /// Records appended since the last commit.
    pending: u64,
    epoch: u64,
    stats: WalStats,
}

/// A write-ahead record log over any [`BlockDevice`], with group commit.
///
/// Appends buffer in memory and become durable in batches: every
/// `batch_window` appends — or an explicit [`commit`](Self::commit) —
/// triggers one vectored write of the dirty tail plus exactly one
/// [`flush`](BlockDevice::flush) of the journal device. See the module
/// docs for the on-device layout and the recovery contract.
pub struct Wal<J: BlockDevice> {
    dev: J,
    /// Bytes the data region (blocks 1..) can hold.
    capacity: usize,
    batch_window: usize,
    state: Mutex<WalState>,
    obs: &'static ObsWal,
}

impl<J: BlockDevice> Wal<J> {
    /// Formats `dev` as a fresh journal at epoch 1 and syncs the
    /// superblock.
    ///
    /// # Errors
    ///
    /// Propagates device errors from the superblock write.
    ///
    /// # Panics
    ///
    /// Panics if `batch_window` is zero, the device has fewer than two
    /// blocks, or its block size cannot hold the superblock.
    pub fn create(dev: J, batch_window: usize) -> DeviceResult<Self> {
        let wal = Wal::bare(dev, batch_window, 1);
        wal.write_superblock(1, 0)?;
        wal.dev.flush()?;
        Ok(wal)
    }

    /// Opens an existing journal and recovers its committed records: the
    /// data region is scanned for the longest valid prefix of the
    /// superblock's epoch, the torn tail past it is discarded, and the
    /// recovered records are returned in append order for the caller to
    /// replay. New appends continue behind the recovered prefix.
    ///
    /// A discarded tail is zeroed on the device (and synced) before the
    /// journal accepts appends: a torn group commit can leave byte-valid
    /// same-epoch records *past* the tear, and if those bytes survived, a
    /// later crash could let a scan run across the new tail into them,
    /// resurrecting writes this recovery already rolled back.
    ///
    /// A torn *superblock* (checksum mismatch) can only be left by a crash
    /// inside [`truncate`](Self::truncate) or [`create`](Self::create) —
    /// the two writers of block 0, both of which run after the data device
    /// was synced — so the journal is reformatted as empty, zeroing the
    /// data region to keep stale records of unknowable epochs from ever
    /// replaying.
    ///
    /// # Errors
    ///
    /// Propagates device errors from the scan or the reformat.
    ///
    /// # Panics
    ///
    /// As for [`create`](Self::create).
    pub fn open(dev: J, batch_window: usize) -> DeviceResult<(Self, Vec<WalRecord>)> {
        let mut wal = Wal::bare(dev, batch_window, 1);
        let sb = wal.dev.read_block(BlockIndex::new(0))?;
        let sb = sb.as_slice();
        let valid_superblock = sb[..4] == MAGIC
            && read_u32(sb, 4) == FORMAT
            && read_u64(sb, SUPERBLOCK_LEN - 8) == fnv1a(&[&sb[..SUPERBLOCK_LEN - 8]]);
        if !valid_superblock {
            let zero = BlockData::zeroed(wal.dev.block_size());
            let wipe: Vec<(BlockIndex, BlockData)> = (1..wal.dev.num_blocks())
                .map(|b| (BlockIndex::new(b), zero.clone()))
                .collect();
            wal.dev.write_blocks(&wipe)?;
            wal.write_superblock(1, 0)?;
            wal.dev.flush()?;
            return Ok((wal, Vec::new()));
        }
        let epoch = read_u64(sb, 8);
        let ks: Vec<BlockIndex> = (1..wal.dev.num_blocks()).map(BlockIndex::new).collect();
        let mut bytes = Vec::with_capacity(wal.capacity);
        for data in wal.dev.read_blocks(&ks)? {
            bytes.extend_from_slice(data.as_slice());
        }
        let (records, valid) = scan(epoch, &bytes);
        // The discarded tail ends at the last non-zero byte: past that is
        // space the log never reached, not debris.
        let tail_end = bytes
            .iter()
            .rposition(|&b| b != 0)
            .map_or(valid, |i| (i + 1).max(valid));
        let discarded = (tail_end - valid) as u64;
        bytes.truncate(valid);
        if tail_end > valid {
            // Wipe the discarded tail so same-epoch residue past the tear
            // can never rejoin the log behind a future append stream. The
            // block straddling the prefix boundary is rewritten with its
            // committed bytes plus zeroes; blocks past it are zeroed whole.
            let bs = wal.dev.block_size();
            let mut writes = Vec::new();
            let mut off = valid / bs * bs;
            while off < tail_end {
                let mut block = vec![0u8; bs];
                if off < valid {
                    block[..valid - off].copy_from_slice(&bytes[off..valid]);
                }
                writes.push((
                    BlockIndex::new(1 + (off / bs) as u64),
                    BlockData::from(block),
                ));
                off += bs;
            }
            wal.dev.write_blocks(&writes)?;
            wal.dev.flush()?;
        }
        {
            let state = wal.state.get_mut();
            state.epoch = epoch;
            state.committed_len = valid;
            state.buf = bytes;
            state.stats.replayed = records.len() as u64;
            state.stats.discarded_bytes = discarded;
        }
        if blockrep_obs::enabled() {
            wal.obs.replayed.add(records.len() as u64);
            wal.obs.discarded_bytes.add(discarded);
        }
        Ok((wal, records))
    }

    fn bare(dev: J, batch_window: usize, epoch: u64) -> Self {
        assert!(batch_window > 0, "a batch window needs at least one slot");
        assert!(
            dev.num_blocks() >= 2,
            "a journal needs a superblock and at least one data block"
        );
        assert!(
            dev.block_size() >= SUPERBLOCK_LEN,
            "journal block size must hold the superblock"
        );
        let capacity = (dev.num_blocks() as usize - 1) * dev.block_size();
        Wal {
            dev,
            capacity,
            batch_window,
            state: Mutex::new(WalState {
                buf: Vec::new(),
                committed_len: 0,
                pending: 0,
                epoch,
                stats: WalStats {
                    epoch,
                    ..WalStats::default()
                },
            }),
            obs: ObsWal::get(),
        }
    }

    fn write_superblock(&self, epoch: u64, committed_len: u64) -> DeviceResult<()> {
        let mut sb = vec![0u8; self.dev.block_size()];
        sb[..4].copy_from_slice(&MAGIC);
        sb[4..8].copy_from_slice(&FORMAT.to_le_bytes());
        sb[8..16].copy_from_slice(&epoch.to_le_bytes());
        sb[16..24].copy_from_slice(&committed_len.to_le_bytes());
        let crc = fnv1a(&[&sb[..SUPERBLOCK_LEN - 8]]);
        sb[24..SUPERBLOCK_LEN].copy_from_slice(&crc.to_le_bytes());
        self.dev
            .write_block(BlockIndex::new(0), BlockData::from(sb))
    }

    /// Bytes of record stream the data region can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes of record stream currently in the log (committed + pending).
    pub fn len(&self) -> usize {
        self.state.lock().buf.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether appending `extra` more record bytes would overflow the data
    /// region (the caller should checkpoint and truncate first).
    pub fn would_overflow(&self, extra: usize) -> bool {
        self.state.lock().buf.len() + extra > self.capacity
    }

    /// Current journal epoch.
    pub fn epoch(&self) -> u64 {
        self.state.lock().epoch
    }

    /// The group-commit window: appends auto-commit every this many
    /// records.
    pub fn batch_window(&self) -> usize {
        self.batch_window
    }

    /// Current counters.
    pub fn stats(&self) -> WalStats {
        let state = self.state.lock();
        let mut stats = state.stats;
        stats.epoch = state.epoch;
        stats.committed_len = state.committed_len as u64;
        stats.pending_records = state.pending;
        stats
    }

    /// Borrows the journal device.
    pub fn device(&self) -> &J {
        &self.dev
    }

    /// Unwraps the journal, returning the device without committing —
    /// pending appends are dropped, as a crash would drop them.
    pub fn into_device(self) -> J {
        self.dev
    }

    /// Appends one record to the log. The record is buffered; it becomes
    /// durable at the next group commit, which this call triggers itself
    /// once `batch_window` records are pending.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the record does not fit in the data
    /// region (checkpoint and [`truncate`](Self::truncate) first), and
    /// propagates device errors from an auto-commit.
    pub fn append(&self, rec: &WalRecord) -> DeviceResult<()> {
        let mut state = self.state.lock();
        if state.buf.len() + rec.encoded_len() > self.capacity {
            return Err(DeviceError::Io(std::io::Error::other(
                "journal data region is full; checkpoint and truncate first",
            )));
        }
        let encoded = encode_record(state.epoch, rec);
        state.buf.extend_from_slice(&encoded);
        state.pending += 1;
        state.stats.appends += 1;
        if blockrep_obs::enabled() {
            self.obs.appends.inc();
        }
        if state.pending >= self.batch_window as u64 {
            self.commit_locked(&mut state)?;
        }
        Ok(())
    }

    /// Group commit: makes every pending append durable with one vectored
    /// write of the dirty tail and exactly one
    /// [`flush`](BlockDevice::flush) of the journal device. A no-op when
    /// nothing is pending.
    ///
    /// # Errors
    ///
    /// Propagates device errors; on error the appends stay pending.
    pub fn commit(&self) -> DeviceResult<()> {
        self.commit_locked(&mut self.state.lock())
    }

    fn commit_locked(&self, state: &mut WalState) -> DeviceResult<()> {
        if state.buf.len() == state.committed_len {
            state.pending = 0;
            return Ok(());
        }
        // Phase span for the causal trace: attaches under whatever device
        // op triggered the commit (None when no op span is open).
        let _append_span = if blockrep_obs::enabled() && blockrep_obs::trace::enabled() {
            static PHASE: OnceLock<u32> = OnceLock::new();
            let phase = *PHASE.get_or_init(|| blockrep_obs::trace::phase_id("phase.wal_append"));
            blockrep_obs::trace::start_phase(phase, 0)
        } else {
            None
        };
        let bs = self.dev.block_size();
        // Rewrite from the block holding the first un-committed byte: the
        // committed prefix before it is already durable and untouched.
        let first_dirty = state.committed_len / bs * bs;
        let mut writes = Vec::new();
        let mut off = first_dirty;
        while off < state.buf.len() {
            let end = (off + bs).min(state.buf.len());
            let mut block = vec![0u8; bs];
            block[..end - off].copy_from_slice(&state.buf[off..end]);
            writes.push((
                BlockIndex::new(1 + (off / bs) as u64),
                BlockData::from(block),
            ));
            off += bs;
        }
        self.dev.write_blocks(&writes)?;
        self.dev.flush()?;
        let synced = (state.buf.len() - state.committed_len) as u64;
        state.committed_len = state.buf.len();
        state.pending = 0;
        state.stats.commits += 1;
        state.stats.synced_bytes += synced;
        if blockrep_obs::enabled() {
            self.obs.commits.inc();
            self.obs.synced_bytes.add(synced);
        }
        Ok(())
    }

    /// Empties the log by bumping the epoch: the superblock is rewritten
    /// and synced, which invalidates every record byte still in the data
    /// region (their checksums bind the old epoch). Callers must sync the
    /// data device *before* truncating — after this call the journal no
    /// longer protects the records it held.
    ///
    /// # Errors
    ///
    /// Propagates device errors from the superblock write or sync.
    pub fn truncate(&self) -> DeviceResult<()> {
        let mut state = self.state.lock();
        let epoch = state.epoch + 1;
        self.write_superblock(epoch, 0)?;
        self.dev.flush()?;
        state.epoch = epoch;
        state.buf.clear();
        state.committed_len = 0;
        state.pending = 0;
        state.stats.truncations += 1;
        if blockrep_obs::enabled() {
            self.obs.truncations.inc();
        }
        Ok(())
    }
}

impl<J: BlockDevice + std::fmt::Debug> std::fmt::Debug for Wal<J> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dev", &self.dev)
            .field("batch_window", &self.batch_window)
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

/// A durable write-through wrapper: every write is journaled to a [`Wal`]
/// *before* it reaches the data device, and [`flush`](BlockDevice::flush)
/// commits the journal — **not** the data device — so a batch of writes
/// costs one `sync_data` however many blocks it touched.
///
/// The journal is the durable truth: after a crash,
/// [`open`](Journaled::open) scans it, discards the torn tail, replays the
/// committed records onto the data device in append order, and only then
/// serves reads. [`checkpoint`](Journaled::checkpoint) bounds the replay
/// work by syncing the data device and truncating the journal; the write
/// path checkpoints itself when the journal would overflow.
///
/// Stack a write-back [`CacheStore`](crate::CacheStore) *on top* of this
/// wrapper and the cache's coalesced flush becomes durable: the flush's
/// vectored write lands here, is journaled, and costs one group commit.
///
/// # Examples
///
/// ```
/// use blockrep_storage::{BlockDevice, Journaled, MemStore};
/// use blockrep_types::{BlockData, BlockIndex};
///
/// # fn main() -> Result<(), blockrep_types::DeviceError> {
/// let dev = Journaled::create(MemStore::new(8, 512), MemStore::new(16, 512), 16)?;
/// dev.write_block(BlockIndex::new(3), BlockData::from(vec![7u8; 512]))?;
/// dev.flush()?; // one group commit: the write is now durable
/// assert_eq!(dev.stats().commits, 1);
/// # Ok(())
/// # }
/// ```
pub struct Journaled<D: BlockDevice, J: BlockDevice> {
    /// `Some` until [`abandon`](Self::abandon) takes the devices out (the
    /// `Drop` impl commits only while they are still here).
    inner: Option<D>,
    wal: Option<Wal<J>>,
    /// Monotone version stamped into journal records, so replay order is
    /// visible in the log itself.
    seq: AtomicU64,
}

impl<D: BlockDevice, J: BlockDevice> Journaled<D, J> {
    /// Wraps `inner` with a freshly formatted journal on `journal`,
    /// group-committing every `batch_window` writes.
    ///
    /// # Errors
    ///
    /// Propagates device errors from formatting the journal.
    ///
    /// # Panics
    ///
    /// Panics if the journal geometry cannot hold the superblock plus one
    /// full-block record, or `batch_window` is zero.
    pub fn create(inner: D, journal: J, batch_window: usize) -> DeviceResult<Self> {
        let wal = Wal::create(journal, batch_window)?;
        Self::with_wal(inner, wal, 1)
    }

    /// Opens `inner` behind an existing journal, running crash recovery
    /// first: the journal is scanned, the torn tail discarded, the
    /// committed records replayed onto `inner` in append order, and the
    /// journal checkpointed — only then is the device ready to serve.
    ///
    /// # Errors
    ///
    /// Propagates device errors, and rejects journal records whose payload
    /// size does not match `inner`'s block size.
    ///
    /// # Panics
    ///
    /// As for [`create`](Self::create).
    pub fn open(inner: D, journal: J, batch_window: usize) -> DeviceResult<Self> {
        let (wal, records) = Wal::open(journal, batch_window)?;
        let mut seq = 1;
        for rec in &records {
            if rec.payload.len() != inner.block_size() {
                return Err(DeviceError::InvalidConfig(format!(
                    "journal record payload of {} bytes does not match the data \
                     device block size {}",
                    rec.payload.len(),
                    inner.block_size()
                )));
            }
            inner.check_block(rec.block)?;
            seq = seq.max(rec.version.as_u64() + 1);
        }
        let writes: Vec<(BlockIndex, BlockData)> = records
            .into_iter()
            .map(|rec| (rec.block, rec.payload))
            .collect();
        // Replay in append order; later records overwrite earlier ones, so
        // replay over a partially-applied data device converges to the
        // same state as over an unapplied one.
        inner.write_blocks(&writes)?;
        let journaled = Self::with_wal(inner, wal, seq)?;
        journaled.checkpoint()?;
        Ok(journaled)
    }

    fn with_wal(inner: D, wal: Wal<J>, seq: u64) -> DeviceResult<Self> {
        assert!(
            wal.capacity() >= RECORD_HEADER + inner.block_size(),
            "journal data region must hold at least one full-block record"
        );
        Ok(Journaled {
            inner: Some(inner),
            wal: Some(wal),
            seq: AtomicU64::new(seq),
        })
    }

    fn dev(&self) -> &D {
        self.inner
            .as_ref()
            .expect("data device is present until abandon")
    }

    fn wal(&self) -> &Wal<J> {
        self.wal.as_ref().expect("journal is present until abandon")
    }

    /// Borrows the data device.
    pub fn inner(&self) -> &D {
        self.dev()
    }

    /// Borrows the journal.
    pub fn wal_ref(&self) -> &Wal<J> {
        self.wal()
    }

    /// Journal counters.
    pub fn stats(&self) -> WalStats {
        self.wal().stats()
    }

    /// Syncs the data device and truncates the journal, in that order —
    /// the replay bound resets to empty. Runs under a `phase.checkpoint`
    /// trace span.
    ///
    /// # Errors
    ///
    /// Propagates device errors; the journal is only truncated after the
    /// data device acknowledged its sync.
    pub fn checkpoint(&self) -> DeviceResult<()> {
        let _span = if blockrep_obs::enabled() && blockrep_obs::trace::enabled() {
            static PHASE: OnceLock<u32> = OnceLock::new();
            let phase = *PHASE.get_or_init(|| blockrep_obs::trace::phase_id("phase.checkpoint"));
            blockrep_obs::trace::start_phase(phase, 0)
        } else {
            None
        };
        self.wal().commit()?;
        self.dev().flush()?;
        self.wal().truncate()
    }

    /// Unwraps both devices *without* committing or checkpointing — the
    /// crash-simulation escape hatch for recovery tests: pending appends
    /// and unsynced state are dropped exactly as a power cut would drop
    /// them.
    pub fn abandon(mut self) -> (D, J) {
        let inner = self
            .inner
            .take()
            .expect("abandon runs before the destructor");
        let wal = self.wal.take().expect("abandon runs before the destructor");
        (inner, wal.into_device())
    }

    /// Stamps the next journal record for `(k, data)`.
    fn next_record(&self, k: BlockIndex, data: &BlockData) -> WalRecord {
        WalRecord {
            block: k,
            version: VersionNumber::new(self.seq.fetch_add(1, Ordering::Relaxed)),
            payload: data.clone(),
        }
    }

    /// Appends one record for `(k, data)`, checkpointing first when the
    /// journal would overflow. Safe for the single-block path only: every
    /// record already in the journal belongs to a write that has reached
    /// the data device, so the checkpoint's data-device sync covers it.
    fn journal_write(&self, k: BlockIndex, data: &BlockData) -> DeviceResult<()> {
        let rec = self.next_record(k, data);
        if self.wal().would_overflow(rec.encoded_len()) {
            self.checkpoint()?;
        }
        self.wal().append(&rec)
    }
}

impl<D: BlockDevice, J: BlockDevice> BlockDevice for Journaled<D, J> {
    fn num_blocks(&self) -> u64 {
        self.dev().num_blocks()
    }

    fn block_size(&self) -> usize {
        self.dev().block_size()
    }

    fn read_block(&self, k: BlockIndex) -> DeviceResult<BlockData> {
        self.dev().read_block(k)
    }

    fn read_blocks(&self, ks: &[BlockIndex]) -> DeviceResult<Vec<BlockData>> {
        self.dev().read_blocks(ks)
    }

    fn write_block(&self, k: BlockIndex, data: BlockData) -> DeviceResult<()> {
        self.dev().check_block(k)?;
        self.dev().check_payload(&data)?;
        // Journal first: the log is the durable truth, the data device a
        // cached projection of it.
        self.journal_write(k, &data)?;
        self.dev().write_block(k, data)
    }

    fn write_blocks(&self, writes: &[(BlockIndex, BlockData)]) -> DeviceResult<()> {
        for (k, data) in writes {
            self.dev().check_block(*k)?;
            self.dev().check_payload(data)?;
        }
        // Journal-then-apply in chunks that each fit the journal whole, so
        // a forced checkpoint only ever lands on a chunk boundary — after
        // the previous chunk's blocks reached the data device. A mid-batch
        // checkpoint would sync a data device that does not yet hold the
        // batch's earlier blocks and then truncate away their records,
        // losing them to a crash even after flush() acknowledged the batch.
        let capacity = self.wal().capacity();
        let mut start = 0;
        while start < writes.len() {
            let mut end = start;
            let mut chunk_len = 0;
            while end < writes.len() {
                let rec_len = RECORD_HEADER + writes[end].1.len();
                if end > start && chunk_len + rec_len > capacity {
                    break;
                }
                chunk_len += rec_len;
                end += 1;
            }
            if self.wal().would_overflow(chunk_len) {
                self.checkpoint()?;
            }
            for (k, data) in &writes[start..end] {
                self.wal().append(&self.next_record(*k, data))?;
            }
            self.dev().write_blocks(&writes[start..end])?;
            start = end;
        }
        Ok(())
    }

    /// Commits the journal — one group commit, one `sync_data` — and
    /// nothing else: the data device is only synced by
    /// [`checkpoint`](Journaled::checkpoint).
    fn flush(&self) -> DeviceResult<()> {
        self.wal().commit()
    }
}

impl<D: BlockDevice, J: BlockDevice> Drop for Journaled<D, J> {
    fn drop(&mut self) {
        // Best-effort commit-on-drop; `abandon` already took the devices
        // when they are gone.
        if let Some(wal) = &self.wal {
            let _ = wal.commit();
        }
    }
}

impl<D, J> std::fmt::Debug for Journaled<D, J>
where
    D: BlockDevice + std::fmt::Debug,
    J: BlockDevice + std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journaled")
            .field("inner", &self.inner)
            .field("wal", &self.wal)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;
    use proptest::prelude::*;

    fn rec(block: u64, version: u64, payload: Vec<u8>) -> WalRecord {
        WalRecord {
            block: BlockIndex::new(block),
            version: VersionNumber::new(version),
            payload: BlockData::from(payload),
        }
    }

    /// Counts flushes of the wrapped device — the stand-in for counting
    /// real `sync_data` calls.
    struct SyncCounter {
        inner: MemStore,
        flushes: AtomicU64,
        write_batches: AtomicU64,
    }

    impl SyncCounter {
        fn new(num_blocks: u64, block_size: usize) -> Self {
            SyncCounter {
                inner: MemStore::new(num_blocks, block_size),
                flushes: AtomicU64::new(0),
                write_batches: AtomicU64::new(0),
            }
        }
    }

    impl BlockDevice for SyncCounter {
        fn num_blocks(&self) -> u64 {
            self.inner.num_blocks()
        }
        fn block_size(&self) -> usize {
            self.inner.block_size()
        }
        fn read_block(&self, k: BlockIndex) -> DeviceResult<BlockData> {
            self.inner.read_block(k)
        }
        fn write_block(&self, k: BlockIndex, data: BlockData) -> DeviceResult<()> {
            self.inner.write_block(k, data)
        }
        fn write_blocks(&self, writes: &[(BlockIndex, BlockData)]) -> DeviceResult<()> {
            self.write_batches.fetch_add(1, Ordering::Relaxed);
            self.inner.write_blocks(writes)
        }
        fn flush(&self) -> DeviceResult<()> {
            self.flushes.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    #[test]
    fn record_roundtrips() {
        let r = rec(5, 9, vec![1, 2, 3, 4]);
        let encoded = encode_record(7, &r);
        assert_eq!(encoded.len(), r.encoded_len());
        let (decoded, used) = decode_record(7, &encoded).unwrap();
        assert_eq!(decoded, r);
        assert_eq!(used, encoded.len());
    }

    #[test]
    fn decode_rejects_wrong_epoch() {
        let encoded = encode_record(7, &rec(5, 9, vec![1, 2, 3]));
        assert!(decode_record(8, &encoded).is_none());
    }

    #[test]
    fn decode_rejects_flipped_bytes() {
        let r = rec(5, 9, vec![1, 2, 3, 4]);
        for i in 4..r.encoded_len() {
            let mut bad = encode_record(7, &r);
            bad[i] ^= 0x40;
            assert!(
                decode_record(7, &bad).is_none(),
                "flip at byte {i} must not decode"
            );
        }
    }

    #[test]
    fn scan_recovers_longest_prefix_at_every_cut() {
        let records = vec![
            rec(0, 1, vec![0xAA; 10]),
            rec(1, 2, vec![0xBB; 3]),
            rec(2, 3, vec![]),
            rec(0, 4, vec![0xCC; 17]),
        ];
        let mut stream = Vec::new();
        let mut ends = Vec::new();
        for r in &records {
            stream.extend_from_slice(&encode_record(3, r));
            ends.push(stream.len());
        }
        for cut in 0..=stream.len() {
            let (got, valid) = scan(3, &stream[..cut]);
            let expect = ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(got.len(), expect, "cut at {cut}");
            assert_eq!(valid, if expect == 0 { 0 } else { ends[expect - 1] });
            assert_eq!(&got[..], &records[..expect]);
        }
    }

    #[test]
    fn scan_stops_at_stale_epoch_bytes() {
        let mut stream = encode_record(4, &rec(0, 1, vec![9; 8]));
        let keep = stream.len();
        stream.extend_from_slice(&encode_record(3, &rec(1, 2, vec![8; 8])));
        let (got, valid) = scan(4, &stream);
        assert_eq!(got.len(), 1);
        assert_eq!(valid, keep);
    }

    #[test]
    fn wal_survives_reopen() {
        let dev = std::sync::Arc::new(MemStore::new(8, 64));
        let wal = Wal::create(std::sync::Arc::clone(&dev), 4).unwrap();
        wal.append(&rec(0, 1, vec![1; 20])).unwrap();
        wal.append(&rec(1, 2, vec![2; 20])).unwrap();
        wal.commit().unwrap();
        drop(wal);
        let (wal, records) = Wal::open(std::sync::Arc::clone(&dev), 4).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], rec(0, 1, vec![1; 20]));
        assert_eq!(wal.stats().replayed, 2);
        // Appends continue behind the recovered prefix.
        wal.append(&rec(2, 3, vec![3; 20])).unwrap();
        wal.commit().unwrap();
        drop(wal);
        let (_, records) = Wal::open(dev, 4).unwrap();
        assert_eq!(records.len(), 3);
    }

    #[test]
    fn reopen_wipes_the_discarded_tail_so_residue_never_rejoins() {
        let dev = std::sync::Arc::new(MemStore::new(8, 64));
        // Window 1: every append commits. Payload 36 makes each record
        // exactly one 64-byte journal block, so offsets stay aligned.
        let wal = Wal::create(std::sync::Arc::clone(&dev), 1).unwrap();
        wal.append(&rec(0, 1, vec![0xAA; 36])).unwrap();
        wal.append(&rec(1, 2, vec![0xBB; 36])).unwrap();
        wal.append(&rec(2, 3, vec![0xCC; 36])).unwrap();
        drop(wal);
        // A torn group commit: the middle record is damaged but the one
        // after it is still byte-valid on the device.
        let mut b = dev
            .read_block(BlockIndex::new(2))
            .unwrap()
            .as_slice()
            .to_vec();
        b[40] ^= 0xFF;
        dev.write_block(BlockIndex::new(2), BlockData::from(b))
            .unwrap();
        // Recovery keeps only the first record and discards the tail...
        let (wal, records) = Wal::open(std::sync::Arc::clone(&dev), 1).unwrap();
        assert_eq!(records.len(), 1);
        assert!(wal.stats().discarded_bytes >= 64);
        // ...then continues in the same epoch with a record the exact size
        // of the torn one, so the discarded third record sits
        // record-aligned just past the new tail.
        wal.append(&rec(5, 9, vec![0xDD; 36])).unwrap();
        drop(wal);
        // After a second crash the scan must stop at the new tail: the
        // rolled-back record must not resurrect.
        let (_, records) = Wal::open(dev, 1).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], rec(0, 1, vec![0xAA; 36]));
        assert_eq!(records[1], rec(5, 9, vec![0xDD; 36]));
    }

    #[test]
    fn group_commit_syncs_once_per_window() {
        let wal = Wal::create(SyncCounter::new(16, 64), 4).unwrap();
        let created = wal.device().flushes.load(Ordering::Relaxed);
        for i in 0..8 {
            wal.append(&rec(i, i + 1, vec![i as u8; 16])).unwrap();
        }
        // Two windows of four appends: two commits, one flush each.
        assert_eq!(wal.device().flushes.load(Ordering::Relaxed) - created, 2);
        assert_eq!(wal.device().write_batches.load(Ordering::Relaxed), 2);
        let stats = wal.stats();
        assert_eq!((stats.appends, stats.commits), (8, 2));
        assert_eq!(stats.pending_records, 0);
    }

    #[test]
    fn explicit_commit_flushes_pending_tail() {
        let wal = Wal::create(SyncCounter::new(16, 64), 100).unwrap();
        wal.append(&rec(0, 1, vec![5; 16])).unwrap();
        assert_eq!(wal.stats().pending_records, 1);
        let before = wal.device().flushes.load(Ordering::Relaxed);
        wal.commit().unwrap();
        assert_eq!(wal.device().flushes.load(Ordering::Relaxed), before + 1);
        assert_eq!(wal.stats().committed_len as usize, wal.len());
        // Nothing pending: committing again is free.
        wal.commit().unwrap();
        assert_eq!(wal.device().flushes.load(Ordering::Relaxed), before + 1);
    }

    #[test]
    fn uncommitted_appends_are_lost_on_reopen() {
        let dev = std::sync::Arc::new(MemStore::new(8, 64));
        let wal = Wal::create(std::sync::Arc::clone(&dev), 100).unwrap();
        wal.append(&rec(0, 1, vec![1; 16])).unwrap();
        wal.commit().unwrap();
        wal.append(&rec(1, 2, vec![2; 16])).unwrap();
        // No commit: the second record never reached the device.
        drop(wal.into_device());
        let (_, records) = Wal::open(dev, 100).unwrap();
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn truncate_bumps_epoch_and_invalidates_old_records() {
        let dev = std::sync::Arc::new(MemStore::new(8, 64));
        let wal = Wal::create(std::sync::Arc::clone(&dev), 1).unwrap();
        wal.append(&rec(0, 1, vec![1; 40])).unwrap();
        assert_eq!(wal.epoch(), 1);
        wal.truncate().unwrap();
        assert_eq!(wal.epoch(), 2);
        assert!(wal.is_empty());
        drop(wal);
        // The epoch-1 bytes are still on the device but no longer decode.
        let (wal, records) = Wal::open(std::sync::Arc::clone(&dev), 1).unwrap();
        assert!(records.is_empty());
        assert!(wal.stats().discarded_bytes > 0, "stale bytes were counted");
    }

    #[test]
    fn append_rejects_overflow() {
        let wal = Wal::create(MemStore::new(2, 64), 100).unwrap();
        assert_eq!(wal.capacity(), 64);
        wal.append(&rec(0, 1, vec![0; 30])).unwrap();
        // 28 + 30 = 58 of 64 bytes used: 6 bytes of headroom left.
        assert!(!wal.would_overflow(6));
        assert!(wal.would_overflow(7));
        let err = wal.append(&rec(1, 2, vec![0; 30])).unwrap_err();
        assert!(matches!(err, DeviceError::Io(_)));
        // The failed append left nothing behind.
        assert_eq!(wal.stats().appends, 1);
    }

    #[test]
    fn corrupt_superblock_reformats_empty() {
        let dev = std::sync::Arc::new(MemStore::new(8, 64));
        let wal = Wal::create(std::sync::Arc::clone(&dev), 1).unwrap();
        wal.append(&rec(0, 1, vec![7; 16])).unwrap();
        drop(wal);
        // Tear the superblock, as a crash mid-truncate would.
        let mut sb = dev
            .read_block(BlockIndex::new(0))
            .unwrap()
            .as_slice()
            .to_vec();
        sb[10] ^= 0xFF;
        dev.write_block(BlockIndex::new(0), BlockData::from(sb))
            .unwrap();
        let (wal, records) = Wal::open(std::sync::Arc::clone(&dev), 1).unwrap();
        assert!(records.is_empty());
        assert_eq!(wal.epoch(), 1);
        drop(wal);
        // The data region was wiped: stale records of unknowable epochs
        // must never come back.
        for b in 1..8 {
            assert!(dev.read_block(BlockIndex::new(b)).unwrap().is_zeroed());
        }
    }

    #[test]
    fn journaled_flush_skips_the_data_device() {
        let journaled =
            Journaled::create(SyncCounter::new(8, 32), SyncCounter::new(16, 64), 16).unwrap();
        for i in 0..8u64 {
            journaled
                .write_block(BlockIndex::new(i), BlockData::from(vec![i as u8; 32]))
                .unwrap();
        }
        journaled.flush().unwrap();
        assert_eq!(
            journaled.inner().flushes.load(Ordering::Relaxed),
            0,
            "flush commits the journal, not the data device"
        );
        assert_eq!(journaled.stats().commits, 1);
        journaled.checkpoint().unwrap();
        assert_eq!(journaled.inner().flushes.load(Ordering::Relaxed), 1);
        assert!(journaled.wal_ref().is_empty());
    }

    #[test]
    fn journaled_replays_committed_writes_after_crash() {
        let journal = std::sync::Arc::new(MemStore::new(32, 64));
        let journaled =
            Journaled::create(MemStore::new(8, 32), std::sync::Arc::clone(&journal), 100).unwrap();
        journaled
            .write_block(BlockIndex::new(2), BlockData::from(vec![0xAB; 32]))
            .unwrap();
        journaled
            .write_block(BlockIndex::new(2), BlockData::from(vec![0xCD; 32]))
            .unwrap();
        journaled
            .write_block(BlockIndex::new(5), BlockData::from(vec![0xEF; 32]))
            .unwrap();
        journaled.flush().unwrap(); // acknowledged
        journaled
            .write_block(BlockIndex::new(6), BlockData::from(vec![0x11; 32]))
            .unwrap();
        // Crash: the data device loses everything, the journal keeps what
        // was committed.
        let _ = journaled.abandon();
        let recovered = Journaled::open(MemStore::new(8, 32), journal, 100).unwrap();
        assert_eq!(
            recovered.read_block(BlockIndex::new(2)).unwrap().as_slice(),
            &[0xCD; 32],
            "replay applies records in append order"
        );
        assert_eq!(
            recovered.read_block(BlockIndex::new(5)).unwrap().as_slice(),
            &[0xEF; 32]
        );
        assert!(
            recovered
                .read_block(BlockIndex::new(6))
                .unwrap()
                .is_zeroed(),
            "the unacknowledged write may be lost"
        );
        assert_eq!(recovered.stats().replayed, 3);
        // Recovery checkpointed: a second crash right now loses nothing.
        assert!(recovered.wal_ref().is_empty());
        assert!(recovered.stats().epoch > 1);
    }

    #[test]
    fn journaled_write_path_checkpoints_on_overflow() {
        // Journal data region: 2 blocks of 64 = 128 bytes; one record is
        // 28 + 32 = 60 bytes, so the third write must checkpoint.
        let journaled =
            Journaled::create(SyncCounter::new(8, 32), MemStore::new(3, 64), 100).unwrap();
        for i in 0..4u64 {
            journaled
                .write_block(BlockIndex::new(0), BlockData::from(vec![i as u8; 32]))
                .unwrap();
        }
        let stats = journaled.stats();
        assert!(stats.truncations >= 1, "overflow forced a checkpoint");
        assert_eq!(stats.appends, 4);
        assert!(
            journaled.inner().flushes.load(Ordering::Relaxed) >= 1,
            "checkpoint synced the data device first"
        );
    }

    #[test]
    fn journaled_vectored_write_journals_every_block() {
        let journaled =
            Journaled::create(MemStore::new(8, 32), MemStore::new(32, 64), 100).unwrap();
        let writes: Vec<(BlockIndex, BlockData)> = (0..4)
            .map(|i| (BlockIndex::new(i), BlockData::from(vec![i as u8; 32])))
            .collect();
        journaled.write_blocks(&writes).unwrap();
        assert_eq!(journaled.stats().appends, 4);
        assert_eq!(
            journaled.read_block(BlockIndex::new(3)).unwrap().as_slice(),
            &[3; 32]
        );
    }

    #[test]
    fn vectored_batch_larger_than_the_journal_checkpoints_on_chunk_boundaries() {
        // Journal data region: 2 blocks of 64 = 128 bytes; one record is
        // 28 + 32 = 60 bytes, so a 4-block batch splits into two chunks
        // with a forced checkpoint between them — never mid-chunk, where
        // journaled records would not yet be on the data device.
        let journaled =
            Journaled::create(SyncCounter::new(8, 32), MemStore::new(3, 64), 100).unwrap();
        let writes: Vec<(BlockIndex, BlockData)> = (0..4)
            .map(|i| (BlockIndex::new(i), BlockData::from(vec![i as u8 + 1; 32])))
            .collect();
        journaled.write_blocks(&writes).unwrap();
        let stats = journaled.stats();
        assert_eq!(stats.appends, 4, "every block of the batch was journaled");
        assert!(stats.truncations >= 1, "overflow forced a checkpoint");
        assert!(
            journaled.inner().flushes.load(Ordering::Relaxed) >= 1,
            "the checkpoint synced the data device"
        );
        for (k, d) in &writes {
            assert_eq!(journaled.read_block(*k).unwrap(), *d);
        }
    }

    #[test]
    fn journaled_open_rejects_mismatched_geometry() {
        let journal = std::sync::Arc::new(MemStore::new(32, 64));
        let journaled =
            Journaled::create(MemStore::new(8, 32), std::sync::Arc::clone(&journal), 1).unwrap();
        journaled
            .write_block(BlockIndex::new(0), BlockData::from(vec![1; 32]))
            .unwrap();
        let _ = journaled.abandon();
        // A data device with a different block size cannot replay this log.
        let err = Journaled::open(MemStore::new(8, 16), journal, 1).unwrap_err();
        assert!(matches!(err, DeviceError::InvalidConfig(_)));
    }

    proptest! {
        #[test]
        fn prop_record_roundtrips_any_payload(
            payload in prop::collection::vec(any::<u8>(), 0..200),
            block in 0u64..1_000_000,
            version in 0u64..1_000_000,
            epoch in 1u64..64,
        ) {
            let r = rec(block, version, payload);
            let encoded = encode_record(epoch, &r);
            let (decoded, used) = decode_record(epoch, &encoded).unwrap();
            prop_assert_eq!(used, encoded.len());
            prop_assert_eq!(decoded, r);
        }

        #[test]
        fn prop_torn_tail_recovers_longest_prefix(
            sizes in prop::collection::vec(0usize..120, 1..6),
            epoch in 1u64..64,
        ) {
            let records: Vec<WalRecord> = sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| rec(i as u64, i as u64 + 1, vec![i as u8 + 1; n]))
                .collect();
            let mut stream = Vec::new();
            let mut ends = Vec::new();
            for r in &records {
                stream.extend_from_slice(&encode_record(epoch, r));
                ends.push(stream.len());
            }
            // Truncate at every byte boundary: the scan must recover
            // exactly the records that fit, never a torn one.
            for cut in 0..=stream.len() {
                let (got, valid) = scan(epoch, &stream[..cut]);
                let expect = ends.iter().filter(|&&e| e <= cut).count();
                prop_assert_eq!(got.len(), expect, "cut at {}", cut);
                prop_assert_eq!(valid, if expect == 0 { 0 } else { ends[expect - 1] });
                prop_assert_eq!(&got[..], &records[..expect]);
            }
        }
    }
}
