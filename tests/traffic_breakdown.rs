//! Message-kind-level verification of the §5 accounting: each operation of
//! each scheme, in each network environment, charged exactly the
//! transmissions the paper's derivation enumerates — not just the right
//! totals, but the right kinds.

use blockrep::core::{Cluster, ClusterOptions};
use blockrep::net::{DeliveryMode, MsgKind, OpClass, TrafficSnapshot};
use blockrep::types::{BlockData, BlockIndex, DeviceConfig, Scheme, SiteId};

const N: usize = 5;

fn cluster(scheme: Scheme, mode: DeliveryMode) -> Cluster {
    let cfg = DeviceConfig::builder(scheme)
        .sites(N)
        .num_blocks(4)
        .block_size(16)
        .build()
        .unwrap();
    Cluster::new(cfg, ClusterOptions { mode })
}

fn s(i: u32) -> SiteId {
    SiteId::new(i)
}

fn k(i: u64) -> BlockIndex {
    BlockIndex::new(i)
}

fn fill(b: u8) -> BlockData {
    BlockData::from(vec![b; 16])
}

fn diff(c: &Cluster, op: impl FnOnce()) -> TrafficSnapshot {
    let before = c.traffic();
    op();
    c.traffic() - before
}

// ------------------------------------------------------------- voting

#[test]
fn voting_multicast_write_kinds() {
    // 1 vote broadcast + (n−1) vote replies + 1 update broadcast.
    let c = cluster(Scheme::Voting, DeliveryMode::Multicast);
    let d = diff(&c, || c.write(s(0), k(0), fill(1)).unwrap());
    assert_eq!(d.get(OpClass::Write, MsgKind::VoteRequest), 1);
    assert_eq!(d.get(OpClass::Write, MsgKind::VoteReply), (N - 1) as u64);
    assert_eq!(d.get(OpClass::Write, MsgKind::WriteUpdate), 1);
    assert_eq!(d.total(), 1 + (N - 1) as u64 + 1);
}

#[test]
fn voting_unicast_write_kinds() {
    // (n−1) vote requests + (n−1) replies + (n−1) updates = n + 2U − 3
    // with everyone up (U = n).
    let c = cluster(Scheme::Voting, DeliveryMode::Unicast);
    let d = diff(&c, || c.write(s(0), k(0), fill(1)).unwrap());
    assert_eq!(d.get(OpClass::Write, MsgKind::VoteRequest), (N - 1) as u64);
    assert_eq!(d.get(OpClass::Write, MsgKind::VoteReply), (N - 1) as u64);
    assert_eq!(d.get(OpClass::Write, MsgKind::WriteUpdate), (N - 1) as u64);
}

#[test]
fn voting_read_with_current_local_copy_skips_block_transfer() {
    let c = cluster(Scheme::Voting, DeliveryMode::Multicast);
    c.write(s(0), k(0), fill(1)).unwrap();
    let d = diff(&c, || {
        c.read(s(0), k(0)).unwrap();
    });
    assert_eq!(d.get(OpClass::Read, MsgKind::VoteRequest), 1);
    assert_eq!(d.get(OpClass::Read, MsgKind::VoteReply), (N - 1) as u64);
    assert_eq!(
        d.get(OpClass::Read, MsgKind::BlockTransfer),
        0,
        "local copy was current"
    );
}

#[test]
fn voting_read_with_stale_local_copy_pays_one_block_transfer() {
    // The paper's "at most U_V + 1": a repaired site reads a block that
    // changed while it was down.
    let c = cluster(Scheme::Voting, DeliveryMode::Multicast);
    c.fail_site(s(4));
    c.write(s(0), k(0), fill(2)).unwrap();
    c.repair_site(s(4));
    let d = diff(&c, || {
        assert_eq!(c.read(s(4), k(0)).unwrap(), fill(2));
    });
    assert_eq!(d.get(OpClass::Read, MsgKind::BlockTransfer), 1);
    // And the lazy repair installed it: a second read is transfer-free.
    let d2 = diff(&c, || {
        c.read(s(4), k(0)).unwrap();
    });
    assert_eq!(d2.get(OpClass::Read, MsgKind::BlockTransfer), 0);
}

#[test]
fn voting_never_touches_available_copy_message_kinds() {
    let c = cluster(Scheme::Voting, DeliveryMode::Multicast);
    c.write(s(0), k(0), fill(1)).unwrap();
    c.fail_site(s(1));
    c.repair_site(s(1));
    c.read(s(1), k(0)).unwrap();
    let snap = c.traffic();
    for kind in [
        MsgKind::WriteAck,
        MsgKind::RecoveryQuery,
        MsgKind::RecoveryReply,
        MsgKind::VersionVector,
        MsgKind::WasAvailable,
    ] {
        for op in OpClass::ALL {
            assert_eq!(snap.get(op, kind), 0, "{op}/{kind}");
        }
    }
}

// ------------------------------------------------------- available copy

#[test]
fn available_copy_multicast_write_kinds() {
    // 1 update broadcast + (n−1) acks; no votes ever.
    let c = cluster(Scheme::AvailableCopy, DeliveryMode::Multicast);
    let d = diff(&c, || c.write(s(0), k(0), fill(1)).unwrap());
    assert_eq!(d.get(OpClass::Write, MsgKind::WriteUpdate), 1);
    assert_eq!(d.get(OpClass::Write, MsgKind::WriteAck), (N - 1) as u64);
    assert_eq!(d.get(OpClass::Write, MsgKind::VoteRequest), 0);
}

#[test]
fn available_copy_reads_charge_nothing_of_any_kind() {
    for mode in DeliveryMode::ALL {
        let c = cluster(Scheme::AvailableCopy, mode);
        c.write(s(0), k(0), fill(1)).unwrap();
        let d = diff(&c, || {
            c.read(s(3), k(0)).unwrap();
        });
        assert_eq!(d.total(), 0, "{mode}");
    }
}

#[test]
fn available_copy_recovery_kinds() {
    // Query broadcast + replies from operational others + the two
    // version-vector transmissions of Figure 5.
    let c = cluster(Scheme::AvailableCopy, DeliveryMode::Multicast);
    c.write(s(0), k(0), fill(1)).unwrap();
    c.fail_site(s(2));
    c.write(s(0), k(1), fill(2)).unwrap();
    let d = diff(&c, || c.repair_site(s(2)));
    assert_eq!(d.get(OpClass::Recovery, MsgKind::RecoveryQuery), 1);
    assert_eq!(
        d.get(OpClass::Recovery, MsgKind::RecoveryReply),
        (N - 1) as u64
    );
    assert_eq!(d.get(OpClass::Recovery, MsgKind::VersionVector), 2);
    // Total: the paper's U + 2 with everyone else up.
    assert_eq!(d.total_for(OpClass::Recovery), (N - 1) as u64 + 1 + 2);
}

#[test]
fn available_copy_failure_detection_is_control_class() {
    let c = cluster(Scheme::AvailableCopy, DeliveryMode::Multicast);
    let d = diff(&c, || c.fail_site(s(0)));
    assert_eq!(d.total_modeled(), 0, "detection is outside the §5 model");
    assert_eq!(d.get(OpClass::Control, MsgKind::FailureNotice), 1);
}

// ------------------------------------------------------------- naive

#[test]
fn naive_multicast_write_is_exactly_one_unacked_update() {
    let c = cluster(Scheme::NaiveAvailableCopy, DeliveryMode::Multicast);
    let d = diff(&c, || c.write(s(0), k(0), fill(1)).unwrap());
    assert_eq!(d.get(OpClass::Write, MsgKind::WriteUpdate), 1);
    assert_eq!(d.total(), 1);
}

#[test]
fn naive_unicast_write_is_n_minus_one_updates() {
    let c = cluster(Scheme::NaiveAvailableCopy, DeliveryMode::Unicast);
    let d = diff(&c, || c.write(s(0), k(0), fill(1)).unwrap());
    assert_eq!(d.get(OpClass::Write, MsgKind::WriteUpdate), (N - 1) as u64);
    assert_eq!(d.total(), (N - 1) as u64);
}

#[test]
fn naive_keeps_no_control_traffic() {
    let c = cluster(Scheme::NaiveAvailableCopy, DeliveryMode::Multicast);
    c.fail_site(s(0));
    c.write(s(1), k(0), fill(1)).unwrap();
    assert_eq!(c.traffic().total_for(OpClass::Control), 0);
}

// ------------------------------------------------- byte-size extension

#[test]
fn byte_accounting_is_less_pronounced_than_message_accounting() {
    // §5: focusing on message *sizes* gives "similar … though slightly
    // less pronounced" differences. Voting's surplus over naive is mostly
    // small vote messages, while both pay for the same big block payloads —
    // so the voting:naive ratio shrinks when measured in bytes.
    let workload = |scheme| {
        let c = cluster(scheme, DeliveryMode::Multicast);
        for i in 0..8u8 {
            c.write(s(0), k((i % 4) as u64), fill(i)).unwrap();
            c.read(s(1), k((i % 4) as u64)).unwrap();
            c.read(s(2), k((i % 4) as u64)).unwrap();
        }
        let snap = c.traffic();
        (snap.total_modeled(), snap.estimated_bytes(32, 16, 4))
    };
    let (v_msgs, v_bytes) = workload(Scheme::Voting);
    let (na_msgs, na_bytes) = workload(Scheme::NaiveAvailableCopy);
    let msg_ratio = v_msgs as f64 / na_msgs as f64;
    let byte_ratio = v_bytes as f64 / na_bytes as f64;
    assert!(msg_ratio > 1.0 && byte_ratio > 1.0);
    assert!(
        byte_ratio < msg_ratio,
        "bytes ratio {byte_ratio:.2} should be less pronounced than message ratio {msg_ratio:.2}"
    );
}
