//! Network traffic cost models (§5).
//!
//! Costs are counted in **high-level transmissions** — vote queries, votes,
//! block transfers, version-vector exchanges — exactly as the deterministic
//! cluster's [`TrafficCounter`](https://docs.rs/blockrep-net) counts them,
//! so the measured and modeled numbers are directly comparable.

use crate::math::check_args;
use crate::participation;
use blockrep_types::Scheme;

/// Network environment, mirroring `blockrep_net::DeliveryMode` without the
/// dependency (analysis is pure math).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetModel {
    /// One transmission reaches any number of sites (§5.1).
    Multicast,
    /// One transmission per destination (§5.2).
    Unicast,
}

/// Expected high-level transmissions per operation for one scheme in one
/// network environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCosts {
    /// Per successful block read.
    pub read: f64,
    /// Per successful block write.
    pub write: f64,
    /// Per site recovery.
    pub recovery: f64,
}

impl OpCosts {
    /// Cost of the paper's composite workload: one write plus
    /// `reads_per_write` reads, with recovery traffic discounted (as the
    /// paper argues from "the relative scarcity of site failures").
    pub fn per_write_group(&self, reads_per_write: f64) -> f64 {
        self.write + reads_per_write * self.read
    }

    /// The same composite including recovery traffic amortized at
    /// `recoveries_per_write` site repairs per write.
    pub fn per_write_group_with_recovery(
        &self,
        reads_per_write: f64,
        recoveries_per_write: f64,
    ) -> f64 {
        self.per_write_group(reads_per_write) + recoveries_per_write * self.recovery
    }
}

/// Expected per-operation transmissions for `scheme` on an `n`-site device
/// with failure-to-repair ratio `rho`, under network model `net`.
///
/// The formulas are §5's, written in terms of the participation numbers
/// `U^n` from [`participation`]:
///
/// | scheme | multicast read / write / recovery | unicast read / write / recovery |
/// |--------|-----------------------------------|---------------------------------|
/// | voting | `U_V` / `1 + U_V` / `0`           | `n+U_V−2` / `n+2U_V−3` / `0`    |
/// | available copy | `0` / `U_A` / `U_A + 2`   | `0` / `n+U_A−2` / `n+U_A`       |
/// | naive  | `0` / `1` / `U_N + 2`             | `0` / `n−1` / `n+U_N`           |
///
/// Voting reads use the paper's lower bound (local copy already current);
/// the staleness surcharge of one block transfer is available separately
/// via [`voting_read_stale_extra`].
///
/// # Examples
///
/// ```
/// use blockrep_analysis::traffic::{costs, NetModel};
/// use blockrep_types::Scheme;
///
/// let naive = costs(Scheme::NaiveAvailableCopy, NetModel::Multicast, 5, 0.05);
/// assert_eq!(naive.write, 1.0); // a single broadcast, no replies
/// assert_eq!(naive.read, 0.0);  // reads are local
/// ```
///
/// # Panics
///
/// Panics if `n == 0` or `rho` is not finite and strictly positive
/// (participation numbers need `rho > 0`).
pub fn costs(scheme: Scheme, net: NetModel, n: usize, rho: f64) -> OpCosts {
    check_args(n, rho);
    let nf = n as f64;
    match (scheme, net) {
        (Scheme::Voting, NetModel::Multicast) => {
            let u = participation::voting(n, rho);
            OpCosts {
                read: u,
                write: 1.0 + u,
                recovery: 0.0,
            }
        }
        (Scheme::Voting, NetModel::Unicast) => {
            let u = participation::voting(n, rho);
            OpCosts {
                read: nf + u - 2.0,
                write: nf + 2.0 * u - 3.0,
                recovery: 0.0,
            }
        }
        (Scheme::AvailableCopy, NetModel::Multicast) => {
            let u = participation::available_copy(n, rho);
            OpCosts {
                read: 0.0,
                write: u,
                recovery: u + 2.0,
            }
        }
        (Scheme::AvailableCopy, NetModel::Unicast) => {
            let u = participation::available_copy(n, rho);
            OpCosts {
                read: 0.0,
                write: nf + u - 2.0,
                recovery: nf + u,
            }
        }
        (Scheme::NaiveAvailableCopy, NetModel::Multicast) => {
            let u = participation::naive(n, rho);
            OpCosts {
                read: 0.0,
                write: 1.0,
                recovery: u + 2.0,
            }
        }
        (Scheme::NaiveAvailableCopy, NetModel::Unicast) => {
            let u = participation::naive(n, rho);
            OpCosts {
                read: 0.0,
                write: nf - 1.0,
                recovery: nf + u,
            }
        }
    }
}

/// The extra block transfer a voting read pays when the local copy turns
/// out to be stale ("at most `U_V^n + 1`").
pub fn voting_read_stale_extra() -> f64 {
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    const RHO: f64 = 0.05;

    #[test]
    fn multicast_write_ordering_naive_lt_ac_lt_voting() {
        for n in 2..=10 {
            let v = costs(Scheme::Voting, NetModel::Multicast, n, RHO).write;
            let a = costs(Scheme::AvailableCopy, NetModel::Multicast, n, RHO).write;
            let na = costs(Scheme::NaiveAvailableCopy, NetModel::Multicast, n, RHO).write;
            assert!(na < a && a < v, "n={n}: naive {na}, ac {a}, voting {v}");
        }
    }

    #[test]
    fn unicast_write_ordering_naive_lt_ac_lt_voting() {
        for n in 2..=10 {
            let v = costs(Scheme::Voting, NetModel::Unicast, n, RHO).write;
            let a = costs(Scheme::AvailableCopy, NetModel::Unicast, n, RHO).write;
            let na = costs(Scheme::NaiveAvailableCopy, NetModel::Unicast, n, RHO).write;
            assert!(na < a && a < v, "n={n}: naive {na}, ac {a}, voting {v}");
        }
    }

    #[test]
    fn reads_are_free_for_available_copy_schemes() {
        for scheme in [Scheme::AvailableCopy, Scheme::NaiveAvailableCopy] {
            for net in [NetModel::Multicast, NetModel::Unicast] {
                assert_eq!(costs(scheme, net, 5, RHO).read, 0.0);
            }
        }
    }

    #[test]
    fn voting_recovery_is_free() {
        // Block-level replication lets voting "dispense with recovery upon
        // repair" — the lazy per-access repair is charged to reads instead.
        for net in [NetModel::Multicast, NetModel::Unicast] {
            assert_eq!(costs(Scheme::Voting, net, 5, RHO).recovery, 0.0);
        }
    }

    #[test]
    fn voting_reads_almost_as_expensive_as_writes() {
        // "In voting, reads are almost as expensive as writes."
        let c = costs(Scheme::Voting, NetModel::Multicast, 6, RHO);
        assert!((c.write - c.read - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multicast_write_costs_match_first_order_expansions() {
        // §5.1: voting 1 + n(1−ρ) + O(ρ²); available copy n(1−ρ) + O(ρ²);
        // naive exactly 1.
        let n = 8;
        let nf = n as f64;
        let v = costs(Scheme::Voting, NetModel::Multicast, n, RHO).write;
        let a = costs(Scheme::AvailableCopy, NetModel::Multicast, n, RHO).write;
        let na = costs(Scheme::NaiveAvailableCopy, NetModel::Multicast, n, RHO).write;
        assert!((v - (1.0 + nf * (1.0 - RHO))).abs() < nf * nf * RHO * RHO);
        assert!((a - nf * (1.0 - RHO)).abs() < nf * nf * RHO * RHO);
        assert_eq!(na, 1.0);
    }

    #[test]
    fn unicast_costs_exceed_multicast_costs() {
        for scheme in Scheme::ALL {
            for n in 3..=8 {
                let m = costs(scheme, NetModel::Multicast, n, RHO);
                let u = costs(scheme, NetModel::Unicast, n, RHO);
                assert!(u.write >= m.write);
                assert!(u.read >= m.read);
                assert!(u.recovery >= m.recovery);
            }
        }
    }

    #[test]
    fn workload_cost_grows_with_read_ratio_only_for_voting() {
        let n = 6;
        for net in [NetModel::Multicast, NetModel::Unicast] {
            let v = costs(Scheme::Voting, net, n, RHO);
            assert!(v.per_write_group(4.0) > v.per_write_group(1.0));
            let a = costs(Scheme::AvailableCopy, net, n, RHO);
            assert_eq!(a.per_write_group(4.0), a.per_write_group(1.0));
        }
    }

    #[test]
    fn recovery_amortization_adds_in() {
        let c = costs(Scheme::NaiveAvailableCopy, NetModel::Multicast, 4, RHO);
        let without = c.per_write_group(2.5);
        let with = c.per_write_group_with_recovery(2.5, 0.01);
        assert!((with - without - 0.01 * c.recovery).abs() < 1e-12);
    }

    #[test]
    fn site_failures_must_outnumber_accesses_for_voting_to_win() {
        // §5.1: "site failures would have to be more frequent than disk
        // accesses in order for the voting schemes to begin to compare
        // favorably". With recovery amortized at less than one repair per
        // access group, available copy still wins.
        let n = 5;
        let v = costs(Scheme::Voting, NetModel::Multicast, n, RHO);
        let a = costs(Scheme::AvailableCopy, NetModel::Multicast, n, RHO);
        let x = 2.5; // typical read:write ratio [Ousterhout et al.]
        for recoveries_per_write in [0.0, 0.1, 0.5, 1.0] {
            assert!(
                a.per_write_group_with_recovery(x, recoveries_per_write)
                    < v.per_write_group_with_recovery(x, recoveries_per_write),
                "recoveries/write {recoveries_per_write}"
            );
        }
    }
}
