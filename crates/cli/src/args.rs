//! Minimal `--key value` argument parsing.

use blockrep_net::DeliveryMode;
use blockrep_types::Scheme;
use core::fmt;
use std::collections::BTreeMap;

/// A parsed command line: positional arguments and `--key value` flags.
///
/// # Examples
///
/// ```
/// use blockrep_cli::args::Parsed;
///
/// let p = Parsed::parse(["simulate", "availability", "--rho", "0.1", "--sites", "5"]
///     .iter().map(|s| s.to_string())).unwrap();
/// assert_eq!(p.positional(0), Some("simulate"));
/// assert_eq!(p.flag_f64("rho", 0.05).unwrap(), 0.1);
/// assert_eq!(p.flag_usize("sites", 3).unwrap(), 5);
/// assert_eq!(p.flag_usize("blocks", 64).unwrap(), 64); // default
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Parsed {
    positionals: Vec<String>,
    flags: BTreeMap<String, String>,
}

/// Flags that take no value (their presence means "on"). Everything else
/// written as `--key` consumes the next argument as its value.
const BOOLEAN_FLAGS: &[&str] = &["stats", "trace", "journal", "journaled", "deny", "leases"];

/// A command-line usage error, printed to stderr with exit code 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for UsageError {}

impl From<std::io::Error> for UsageError {
    fn from(e: std::io::Error) -> UsageError {
        UsageError(format!("i/o error: {e}"))
    }
}

impl Parsed {
    /// Parses an iterator of arguments (excluding the program name).
    ///
    /// # Errors
    ///
    /// [`UsageError`] if a `--flag` has no value or a flag repeats.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Parsed, UsageError> {
        let mut out = Parsed::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = if BOOLEAN_FLAGS.contains(&key) {
                    "true".to_string()
                } else {
                    iter.next()
                        .ok_or_else(|| UsageError(format!("flag --{key} needs a value")))?
                };
                if out.flags.insert(key.to_string(), value).is_some() {
                    return Err(UsageError(format!("flag --{key} given twice")));
                }
            } else {
                out.positionals.push(arg);
            }
        }
        Ok(out)
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Number of positional arguments.
    pub fn num_positionals(&self) -> usize {
        self.positionals.len()
    }

    /// A raw flag value.
    pub fn flag(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Flag keys the caller never consumed — used to reject typos.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.flags.keys().map(String::as_str)
    }

    /// Whether a boolean flag (see the crate's boolean-flag list, e.g.
    /// `--stats`, `--trace`) was given.
    pub fn flag_bool(&self, key: &str) -> bool {
        self.flag(key).is_some()
    }

    /// A `f64` flag with a default.
    ///
    /// # Errors
    ///
    /// [`UsageError`] when present but unparsable.
    pub fn flag_f64(&self, key: &str, default: f64) -> Result<f64, UsageError> {
        match self.flag(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| UsageError(format!("--{key}: expected a number, got {raw:?}"))),
        }
    }

    /// A `usize` flag with a default.
    ///
    /// # Errors
    ///
    /// [`UsageError`] when present but unparsable.
    pub fn flag_usize(&self, key: &str, default: usize) -> Result<usize, UsageError> {
        match self.flag(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| UsageError(format!("--{key}: expected an integer, got {raw:?}"))),
        }
    }

    /// A `u64` flag with a default.
    ///
    /// # Errors
    ///
    /// [`UsageError`] when present but unparsable.
    pub fn flag_u64(&self, key: &str, default: u64) -> Result<u64, UsageError> {
        match self.flag(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| UsageError(format!("--{key}: expected an integer, got {raw:?}"))),
        }
    }

    /// A scheme flag (`voting` / `available-copy` (`ac`) /
    /// `naive-available-copy` (`naive`, `nac`)).
    ///
    /// # Errors
    ///
    /// [`UsageError`] on an unknown scheme name.
    pub fn flag_scheme(&self, key: &str, default: Scheme) -> Result<Scheme, UsageError> {
        match self.flag(key) {
            None => Ok(default),
            Some(raw) => parse_scheme(raw),
        }
    }

    /// A delivery-mode flag (`multicast` / `unicast`).
    ///
    /// # Errors
    ///
    /// [`UsageError`] on an unknown mode.
    pub fn flag_mode(&self, key: &str, default: DeliveryMode) -> Result<DeliveryMode, UsageError> {
        match self.flag(key) {
            None => Ok(default),
            Some("multicast") => Ok(DeliveryMode::Multicast),
            Some("unicast") => Ok(DeliveryMode::Unicast),
            Some(raw) => Err(UsageError(format!(
                "--{key}: expected multicast or unicast, got {raw:?}"
            ))),
        }
    }
}

/// Parses a scheme name, with short aliases.
///
/// # Errors
///
/// [`UsageError`] on an unknown name.
pub fn parse_scheme(raw: &str) -> Result<Scheme, UsageError> {
    match raw {
        "voting" | "v" | "mcv" => Ok(Scheme::Voting),
        "available-copy" | "ac" => Ok(Scheme::AvailableCopy),
        "naive-available-copy" | "naive" | "nac" => Ok(Scheme::NaiveAvailableCopy),
        _ => Err(UsageError(format!(
            "unknown scheme {raw:?} (expected voting, available-copy, or naive-available-copy)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<Parsed, UsageError> {
        Parsed::parse(parts.iter().map(|s| s.to_string()))
    }

    #[test]
    fn positionals_and_flags_interleave() {
        let p = parse(&["fig", "--rho", "0.1", "9"]).unwrap();
        assert_eq!(p.positional(0), Some("fig"));
        assert_eq!(p.positional(1), Some("9"));
        assert_eq!(p.flag("rho"), Some("0.1"));
        assert_eq!(p.num_positionals(), 2);
    }

    #[test]
    fn missing_value_is_a_usage_error() {
        let err = parse(&["x", "--rho"]).unwrap_err();
        assert!(err.to_string().contains("--rho"));
    }

    #[test]
    fn duplicate_flag_rejected() {
        assert!(parse(&["--a", "1", "--a", "2"]).is_err());
    }

    #[test]
    fn typed_flags_parse_and_default() {
        let p = parse(&["--rho", "0.25", "--sites", "7"]).unwrap();
        assert_eq!(p.flag_f64("rho", 0.05).unwrap(), 0.25);
        assert_eq!(p.flag_usize("sites", 3).unwrap(), 7);
        assert_eq!(p.flag_u64("ops", 100).unwrap(), 100);
        assert!(p.flag_f64("sites", 0.0).is_ok()); // 7 parses as f64 too
        assert!(parse(&["--rho", "abc"])
            .unwrap()
            .flag_f64("rho", 0.0)
            .is_err());
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let p = parse(&["simulate", "--stats", "traffic", "--trace", "--ops", "10"]).unwrap();
        assert!(p.flag_bool("stats"));
        assert!(p.flag_bool("trace"));
        assert!(!p.flag_bool("json"));
        // The word after a boolean flag is a positional, not its value.
        assert_eq!(p.positional(1), Some("traffic"));
        assert_eq!(p.flag("ops"), Some("10"));
    }

    #[test]
    fn scheme_aliases() {
        assert_eq!(parse_scheme("voting").unwrap(), Scheme::Voting);
        assert_eq!(parse_scheme("mcv").unwrap(), Scheme::Voting);
        assert_eq!(parse_scheme("ac").unwrap(), Scheme::AvailableCopy);
        assert_eq!(parse_scheme("nac").unwrap(), Scheme::NaiveAvailableCopy);
        assert_eq!(parse_scheme("naive").unwrap(), Scheme::NaiveAvailableCopy);
        assert!(parse_scheme("paxos").is_err());
    }

    #[test]
    fn mode_flag() {
        let p = parse(&["--net", "unicast"]).unwrap();
        assert_eq!(
            p.flag_mode("net", DeliveryMode::Multicast).unwrap(),
            DeliveryMode::Unicast
        );
        let p = parse(&[]).unwrap();
        assert_eq!(
            p.flag_mode("net", DeliveryMode::Multicast).unwrap(),
            DeliveryMode::Multicast
        );
    }
}
