//! Versioned per-site storage.

use blockrep_types::{BlockData, BlockIndex, VersionNumber, VersionVector};

/// A site's disk as the consistency protocols see it: every block carries a
/// version number alongside its data.
///
/// This is deliberately *not* a [`BlockDevice`](crate::BlockDevice): version
/// numbers are protocol metadata that the file system must never observe.
/// The store is single-owner (each server process owns its disk) and
/// therefore needs no interior locking.
///
/// # Examples
///
/// ```
/// use blockrep_storage::VersionedStore;
/// use blockrep_types::{BlockData, BlockIndex, VersionNumber};
///
/// let mut disk = VersionedStore::new(8, 512);
/// let k = BlockIndex::new(0);
/// disk.install(k, BlockData::zeroed(512), VersionNumber::new(3));
/// assert_eq!(disk.version(k), VersionNumber::new(3));
/// ```
#[derive(Debug, Clone)]
pub struct VersionedStore {
    blocks: Vec<BlockData>,
    versions: VersionVector,
    block_size: usize,
}

impl VersionedStore {
    /// Creates a zero-filled store at version zero, the state of a freshly
    /// formatted replica.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks` or `block_size` is zero.
    pub fn new(num_blocks: u64, block_size: usize) -> Self {
        assert!(num_blocks > 0, "a device needs at least one block");
        assert!(block_size > 0, "block size must be nonzero");
        VersionedStore {
            blocks: vec![BlockData::zeroed(block_size); num_blocks as usize],
            versions: VersionVector::new(num_blocks),
            block_size,
        }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Size of each block in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The version number of block `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn version(&self, k: BlockIndex) -> VersionNumber {
        self.versions.get(k)
    }

    /// The data of block `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn data(&self, k: BlockIndex) -> BlockData {
        self.blocks[k.index()].clone()
    }

    /// Both the version and the data of block `k`, as shipped during lazy
    /// voting recovery.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn versioned(&self, k: BlockIndex) -> (VersionNumber, BlockData) {
        (self.versions.get(k), self.blocks[k.index()].clone())
    }

    /// Installs `data` at version `v`, but only if `v` is newer than the
    /// local copy. Returns whether the block was replaced.
    ///
    /// Installation is idempotent and monotone: replaying an old write (or
    /// the same write twice) never regresses a block — the invariant that
    /// keeps recovery safe.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range or the payload size differs from the
    /// block size.
    pub fn install(&mut self, k: BlockIndex, data: BlockData, v: VersionNumber) -> bool {
        assert_eq!(data.len(), self.block_size, "payload must match block size");
        if v > self.versions.get(k) {
            self.blocks[k.index()] = data;
            self.versions.set(k, v);
            true
        } else {
            false
        }
    }

    /// A copy of the full version vector, as exchanged during recovery.
    pub fn version_vector(&self) -> VersionVector {
        self.versions.clone()
    }

    /// Blocks (with versions and data) that are newer here than in `remote`
    /// — the repair payload a current site sends to a recovering one.
    ///
    /// # Panics
    ///
    /// Panics if `remote` covers a different number of blocks.
    pub fn diff_against(
        &self,
        remote: &VersionVector,
    ) -> Vec<(BlockIndex, VersionNumber, BlockData)> {
        remote
            .stale_against(&self.versions)
            .into_iter()
            .map(|k| {
                let (v, d) = self.versioned(k);
                (k, v, d)
            })
            .collect()
    }

    /// Applies a repair payload produced by [`diff_against`](Self::diff_against)
    /// on a more current site. Returns the number of blocks replaced.
    pub fn apply_repair(&mut self, blocks: Vec<(BlockIndex, VersionNumber, BlockData)>) -> usize {
        blocks
            .into_iter()
            .filter(|(k, v, d)| self.install(*k, d.clone(), *v))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_store_is_version_zero() {
        let s = VersionedStore::new(4, 16);
        for k in BlockIndex::all(4) {
            assert_eq!(s.version(k), VersionNumber::ZERO);
            assert!(s.data(k).is_zeroed());
        }
    }

    #[test]
    fn install_is_monotone() {
        let mut s = VersionedStore::new(2, 4);
        let k = BlockIndex::new(0);
        assert!(s.install(k, BlockData::from(vec![1; 4]), VersionNumber::new(2)));
        // Older and equal versions are rejected.
        assert!(!s.install(k, BlockData::from(vec![9; 4]), VersionNumber::new(1)));
        assert!(!s.install(k, BlockData::from(vec![9; 4]), VersionNumber::new(2)));
        assert_eq!(s.data(k).as_slice(), &[1; 4]);
        assert!(s.install(k, BlockData::from(vec![3; 4]), VersionNumber::new(3)));
        assert_eq!(s.version(k), VersionNumber::new(3));
    }

    #[test]
    fn diff_and_repair_synchronize_stores() {
        let mut current = VersionedStore::new(4, 4);
        let mut stale = VersionedStore::new(4, 4);
        current.install(
            BlockIndex::new(1),
            BlockData::from(vec![1; 4]),
            VersionNumber::new(5),
        );
        current.install(
            BlockIndex::new(3),
            BlockData::from(vec![3; 4]),
            VersionNumber::new(1),
        );
        // stale has a block current lacks — must NOT be clobbered by repair.
        stale.install(
            BlockIndex::new(2),
            BlockData::from(vec![2; 4]),
            VersionNumber::new(7),
        );

        let payload = current.diff_against(&stale.version_vector());
        assert_eq!(payload.len(), 2);
        let repaired = stale.apply_repair(payload);
        assert_eq!(repaired, 2);
        assert_eq!(stale.version(BlockIndex::new(1)), VersionNumber::new(5));
        assert_eq!(stale.data(BlockIndex::new(3)).as_slice(), &[3; 4]);
        assert_eq!(stale.version(BlockIndex::new(2)), VersionNumber::new(7));
    }

    #[test]
    fn diff_against_identical_is_empty() {
        let s = VersionedStore::new(4, 4);
        assert!(s.diff_against(&s.version_vector()).is_empty());
    }

    #[test]
    #[should_panic(expected = "payload must match block size")]
    fn install_rejects_wrong_size() {
        let mut s = VersionedStore::new(1, 4);
        s.install(
            BlockIndex::new(0),
            BlockData::zeroed(5),
            VersionNumber::new(1),
        );
    }
}
