//! Availability shoot-out (Figures 9/10 in miniature): measure the three
//! schemes' availability by discrete-event simulation of the real protocol
//! implementation and compare with the paper's Markov-model values.
//!
//! ```text
//! cargo run --release --example availability_sim
//! ```

use blockrep::core::simulate::availability::{estimate, AvailabilityConfig};
use blockrep::types::Scheme;

fn main() {
    println!("availability of 3 available/naive copies vs 6 voting copies");
    println!("(mu = 1, horizon = 50_000 mean repair times)\n");
    println!("| rho | scheme | n | analytic | simulated | error |");
    println!("|---|---|---|---|---|---|");
    for rho in [0.05, 0.10, 0.20] {
        for (scheme, n) in [
            (Scheme::AvailableCopy, 3),
            (Scheme::NaiveAvailableCopy, 3),
            (Scheme::Voting, 6),
        ] {
            let mut cfg = AvailabilityConfig::new(scheme, n, rho);
            cfg.horizon = 50_000.0;
            let est = estimate(&cfg);
            println!(
                "| {:.2} | {} | {} | {:.6} | {:.6} | {:.6} |",
                rho,
                scheme,
                n,
                est.analytic,
                est.availability,
                est.error()
            );
        }
    }
    println!("\nThe ordering the paper proves: A_A(3) >= A_NA(3) > A_V(6) at every rho,");
    println!("with AC and naive indistinguishable below rho = 0.10.");
}
