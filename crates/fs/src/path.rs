//! Absolute-path parsing and validation.

use crate::layout::MAX_NAME;
use crate::{FsError, FsResult};

/// Splits an absolute path into validated components.
///
/// Rules: paths start with `/`; components are nonempty, at most
/// [`MAX_NAME`] bytes, and contain neither `/` nor NUL; `.` and `..` are
/// rejected (the file system keeps no parent pointers). The root path `/`
/// yields no components. A single trailing slash is tolerated
/// (`/a/b/` == `/a/b`).
///
/// # Errors
///
/// [`FsError::InvalidPath`] or [`FsError::InvalidName`].
pub fn split(path: &str) -> FsResult<Vec<&str>> {
    let Some(rest) = path.strip_prefix('/') else {
        return Err(FsError::InvalidPath(path.to_string()));
    };
    let rest = rest.strip_suffix('/').unwrap_or(rest);
    if rest.is_empty() {
        return Ok(Vec::new());
    }
    let mut parts = Vec::new();
    for part in rest.split('/') {
        validate_name(part)?;
        parts.push(part);
    }
    Ok(parts)
}

/// Validates a single file name.
///
/// # Errors
///
/// [`FsError::InvalidName`] for empty, oversized, `.`/`..`, or names
/// containing `/` or NUL.
pub fn validate_name(name: &str) -> FsResult<()> {
    if name.is_empty()
        || name.len() > MAX_NAME
        || name == "."
        || name == ".."
        || name.contains('/')
        || name.contains('\0')
    {
        return Err(FsError::InvalidName(name.to_string()));
    }
    Ok(())
}

/// Splits a path into (parent components, final name).
///
/// # Errors
///
/// [`FsError::InvalidPath`] when the path is `/` (which has no name) or
/// otherwise malformed.
pub fn split_parent(path: &str) -> FsResult<(Vec<&str>, &str)> {
    let mut parts = split(path)?;
    let name = parts
        .pop()
        .ok_or_else(|| FsError::InvalidPath(path.to_string()))?;
    Ok((parts, name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_has_no_components() {
        assert!(split("/").unwrap().is_empty());
    }

    #[test]
    fn normal_paths_split() {
        assert_eq!(split("/a/b/c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(split("/a/b/").unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn relative_paths_rejected() {
        assert!(split("a/b").is_err());
        assert!(split("").is_err());
    }

    #[test]
    fn dot_components_rejected() {
        assert!(split("/a/./b").is_err());
        assert!(split("/a/../b").is_err());
        assert!(split("/a//b").is_err());
    }

    #[test]
    fn long_names_rejected() {
        let long = "x".repeat(MAX_NAME + 1);
        assert!(split(&format!("/{long}")).is_err());
        let ok = "x".repeat(MAX_NAME);
        assert!(split(&format!("/{ok}")).is_ok());
    }

    #[test]
    fn split_parent_peels_the_name() {
        let (parents, name) = split_parent("/a/b/c").unwrap();
        assert_eq!(parents, vec!["a", "b"]);
        assert_eq!(name, "c");
        assert!(split_parent("/").is_err());
    }
}
