//! Offline stand-in for the `bytes` crate.
//!
//! The real crate is unavailable because this workspace must build with no
//! registry access, so this stub implements exactly the surface blockrep
//! uses: a reference-counted, cheaply clonable [`Bytes`] buffer plus the
//! little-endian [`Buf`]/[`BufMut`] cursor traits for `&[u8]` and `Vec<u8>`.
//! Clones of a `Bytes` share one allocation, which callers rely on when a
//! single block write fans out to many replicas.

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable byte buffer backed by an `Arc<[u8]>`.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(Vec::new()),
        }
    }

    /// Copies the given slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data.to_vec()),
        }
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the contents as a slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    /// Copies the contents out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(value: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(value),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(value: &'static [u8]) -> Self {
        Bytes::copy_from_slice(value)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(value: Box<[u8]>) -> Self {
        Bytes {
            data: Arc::from(value),
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.len() > 32 {
            write!(f, "…")?;
        }
        write!(f, "\"")
    }
}

/// Read cursor over a contiguous byte source (little-endian accessors).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Fills `dst` from the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt);
    }
}

/// Write cursor for building byte buffers (little-endian accessors).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends `count` copies of `val`.
    fn put_bytes(&mut self, val: u8, count: usize) {
        self.put_slice(&vec![val; count]);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for &mut [u8] {
    /// Overwrites the front of the slice and advances past it.
    ///
    /// # Panics
    ///
    /// Panics if the slice is shorter than `src`.
    fn put_slice(&mut self, src: &[u8]) {
        assert!(
            self.len() >= src.len(),
            "buffer overflow: need {} bytes, have {}",
            src.len(),
            self.len()
        );
        let (head, tail) = std::mem::take(self).split_at_mut(src.len());
        head.copy_from_slice(src);
        *self = tail;
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn buf_roundtrip() {
        let mut out = Vec::new();
        out.put_u8(7);
        out.put_u16_le(0x0102);
        out.put_u32_le(0x0304_0506);
        out.put_u64_le(0x1122_3344_5566_7788);
        out.put_slice(b"xy");
        let mut cursor: &[u8] = &out;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16_le(), 0x0102);
        assert_eq!(cursor.get_u32_le(), 0x0304_0506);
        assert_eq!(cursor.get_u64_le(), 0x1122_3344_5566_7788);
        let mut tail = [0u8; 2];
        cursor.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }
}
