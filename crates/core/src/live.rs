//! The live cluster: one server thread per site.
//!
//! This is the deployment shape of the paper — "a set of server processes
//! on several sites" — scaled to one machine: each site's replica is owned
//! by its own OS thread, and every protocol exchange travels as a real
//! message over the [`Network`] router. Fail-stop is modeled by taking the
//! site's link down: a failed site answers nothing, synchronously, so tests
//! stay deterministic.
//!
//! The protocol logic is byte-for-byte the same code the deterministic
//! [`Cluster`](crate::Cluster) runs — both implement
//! [`Backend`](crate::backend::Backend) — and it charges the same traffic
//! counter the same way, which the integration tests exploit: a workload
//! replayed on both runtimes must produce identical message counts.

use crate::backend::{
    self, Backend, Gather, ScatterReplies, ScatterReply, ScatterRequest, ScatterSpec, WriteBatch,
};
use crate::locks::{BlockLockTable, LeaseTable};
use crate::protocol;
use crate::replica::Replica;
use blockrep_net::{DeliveryMode, FanoutMode, Network, TrafficCounter};
use blockrep_storage::StorageFault;
use blockrep_types::{
    BlockData, BlockIndex, DeviceConfig, DeviceResult, SiteId, SiteState, VersionNumber,
    VersionVector,
};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::RwLock;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::backend::RepairBlocks;

/// Work for the straggler-drain thread: replies an early-quorum scatter did
/// not wait for still have to be received — and charged — off the hot path.
enum DrainJob {
    /// Receive each pending reply and charge it to the traffic counter.
    Drain(Vec<Box<dyn FnOnce() + Send>>),
    /// Barrier: acknowledge once every prior job has fully drained.
    Sync(Sender<()>),
}

/// The messages a site's server process understands.
enum Request {
    Vote(BlockIndex, Sender<VersionNumber>),
    Fetch(BlockIndex, Sender<(VersionNumber, BlockData)>),
    /// A lease read served by a holder site: same payload as `Fetch`, but a
    /// distinct message so fault injection can target lease validation
    /// without touching quorum reads.
    FetchLease(BlockIndex, Sender<(VersionNumber, BlockData)>),
    ApplyWrite(BlockIndex, BlockData, VersionNumber),
    ApplyWriteFaulty(BlockIndex, BlockData, VersionNumber, StorageFault),
    Scrub(Sender<usize>),
    ReadLocal(BlockIndex, Sender<BlockData>),
    VersionVector(Sender<VersionVector>),
    RepairPayload(VersionVector, Sender<(VersionVector, RepairBlocks)>),
    ApplyRepair(RepairBlocks),
    GetW(Sender<BTreeSet<SiteId>>),
    SetW(BTreeSet<SiteId>),
    AddW(SiteId),
    VoteMany(Vec<BlockIndex>, Sender<Vec<VersionNumber>>),
    ApplyWriteMany(WriteBatch),
    ReadLocalMany(Vec<BlockIndex>, Sender<Vec<BlockData>>),
    /// The in-process analogue of the wire trace envelope: carries the
    /// sender's span context so the serving thread's apply span stitches
    /// into the coordinator's causal tree. Only built while tracing is on.
    Traced {
        trace_id: u64,
        parent: u64,
        /// The target site (the server thread's own id, for span labels).
        site: u32,
        inner: Box<Request>,
    },
    Shutdown,
}

/// A cluster of threaded server processes, one per site, exchanging
/// messages over channels.
///
/// The public surface mirrors [`Cluster`](crate::Cluster); the two are
/// interchangeable wherever a [`Backend`](crate::backend::Backend) is
/// accepted (e.g. under a [`ReliableDevice`](crate::ReliableDevice)).
///
/// # Examples
///
/// ```
/// use blockrep_core::LiveCluster;
/// use blockrep_net::DeliveryMode;
/// use blockrep_types::{BlockData, BlockIndex, DeviceConfig, Scheme, SiteId};
///
/// # fn main() -> Result<(), blockrep_types::DeviceError> {
/// let cfg = DeviceConfig::builder(Scheme::NaiveAvailableCopy)
///     .sites(3).num_blocks(2).block_size(4).build()?;
/// let cluster = LiveCluster::spawn(cfg, DeliveryMode::Multicast);
/// let k = BlockIndex::new(0);
/// cluster.write(SiteId::new(0), k, BlockData::from(vec![1, 2, 3, 4]))?;
/// cluster.fail_site(SiteId::new(0));
/// assert_eq!(cluster.read(SiteId::new(1), k)?.as_slice(), &[1, 2, 3, 4]);
/// # Ok(())
/// # }
/// ```
pub struct LiveCluster {
    cfg: DeviceConfig,
    net: Network<Request>,
    /// Authoritative site states, maintained by the coordination layer
    /// (a failed site's own thread cannot be asked).
    states: RwLock<Vec<SiteState>>,
    /// Shared with the straggler drainer, which charges late replies.
    counter: Arc<TrafficCounter>,
    mode: DeliveryMode,
    /// Whether scatters dispatch to all targets before gathering
    /// ([`FanoutMode::Parallel`], the default) or fall back to the
    /// sequential per-target loop.
    parallel: AtomicBool,
    /// Whether MCV vote collection stops gathering at quorum weight.
    early_quorum: AtomicBool,
    /// Emulated one-way link delay in nanoseconds, served by each site
    /// before handling a network request. Shared with the server threads.
    latency_ns: Arc<AtomicU64>,
    /// Per-block lock shards serializing same-block coordinations.
    locks: BlockLockTable,
    /// Read-lease registry for the offload fast path.
    leases: LeaseTable,
    /// Hands straggler replies to the drainer; `None` only during drop.
    drain_tx: Option<Sender<DrainJob>>,
    drainer: Option<JoinHandle<()>>,
    /// Direct lines to every server thread, bypassing link state — used only
    /// for shutdown.
    direct: Vec<Sender<Request>>,
    handles: Vec<JoinHandle<()>>,
}

impl LiveCluster {
    /// Spawns one server thread per site over a freshly formatted device.
    pub fn spawn(cfg: DeviceConfig, mode: DeliveryMode) -> Self {
        let n = cfg.num_sites();
        let net: Network<Request> = Network::new(n, mode);
        let latency_ns = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::with_capacity(n);
        let mut direct = Vec::with_capacity(n);
        for s in cfg.site_ids() {
            let rx = net.register(s);
            // Keep a direct sender for shutdown: the network refuses to
            // deliver to "failed" sites, but the thread still must exit.
            let (tx, direct_rx) = crossbeam::channel::unbounded();
            direct.push(tx);
            let replica = Replica::new(s, &cfg);
            let latency = Arc::clone(&latency_ns);
            handles.push(std::thread::spawn(move || {
                // Serve from both queues: network traffic and control.
                let mut replica = replica;
                loop {
                    crossbeam::channel::select! {
                        recv(rx) -> msg => match msg {
                            Ok(Request::Shutdown) | Err(_) => return,
                            Ok(req) => {
                                if is_rpc(&req) {
                                    emulate_link(&latency);
                                }
                                handle(&mut replica, req);
                            }
                        },
                        recv(direct_rx) -> msg => match msg {
                            Ok(Request::Shutdown) | Err(_) => return,
                            Ok(req) => handle(&mut replica, req),
                        },
                    }
                }
            }));
        }
        let counter = Arc::new(TrafficCounter::new());
        let (drain_tx, drain_rx) = crossbeam::channel::unbounded::<DrainJob>();
        let drainer = std::thread::spawn(move || {
            while let Ok(job) = drain_rx.recv() {
                match job {
                    DrainJob::Drain(receives) => {
                        for receive in receives {
                            receive();
                        }
                    }
                    DrainJob::Sync(ack) => {
                        let _ = ack.send(());
                    }
                }
            }
        });
        LiveCluster {
            states: RwLock::new(vec![SiteState::Available; n]),
            counter,
            net,
            mode,
            parallel: AtomicBool::new(true),
            early_quorum: AtomicBool::new(false),
            latency_ns,
            locks: BlockLockTable::new(),
            leases: LeaseTable::new(),
            drain_tx: Some(drain_tx),
            drainer: Some(drainer),
            direct,
            handles,
            cfg,
        }
    }

    /// Reads block `k`, coordinated by site `origin`.
    ///
    /// # Errors
    ///
    /// As for [`Cluster::read`](crate::Cluster::read).
    pub fn read(&self, origin: SiteId, k: BlockIndex) -> DeviceResult<BlockData> {
        protocol::read(self, origin, k)
    }

    /// Writes block `k`, coordinated by site `origin`.
    ///
    /// # Errors
    ///
    /// As for [`Cluster::write`](crate::Cluster::write).
    pub fn write(&self, origin: SiteId, k: BlockIndex, data: BlockData) -> DeviceResult<()> {
        protocol::write(self, origin, k, &data)
    }

    /// Reads a batch of distinct blocks in one vectored protocol round,
    /// coordinated by site `origin`.
    ///
    /// # Errors
    ///
    /// As for [`Cluster::read_many`](crate::Cluster::read_many).
    pub fn read_many(&self, origin: SiteId, ks: &[BlockIndex]) -> DeviceResult<Vec<BlockData>> {
        protocol::read_many(self, origin, ks)
    }

    /// Writes a batch of distinct blocks in one vectored protocol round,
    /// coordinated by site `origin`.
    ///
    /// # Errors
    ///
    /// As for [`Cluster::write_many`](crate::Cluster::write_many).
    pub fn write_many(
        &self,
        origin: SiteId,
        writes: &[(BlockIndex, BlockData)],
    ) -> DeviceResult<()> {
        protocol::write_many(self, origin, writes)
    }

    /// Fail-stops site `s`: its link goes down and it stops answering.
    pub fn fail_site(&self, s: SiteId) {
        assert!(self.cfg.contains_site(s), "unknown site {s}");
        protocol::fail(self, s);
        self.net.set_site_up(s, false);
    }

    /// Restarts site `s` and runs the scheme's recovery.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not currently failed.
    pub fn repair_site(&self, s: SiteId) {
        assert!(self.cfg.contains_site(s), "unknown site {s}");
        assert_eq!(
            self.site_state(s),
            SiteState::Failed,
            "repairing a site that is not failed"
        );
        self.net.set_site_up(s, true);
        protocol::repair(self, s);
    }

    /// Splits the network into partitions (messages across groups are
    /// refused synchronously). The available copy schemes assume this never
    /// happens; the hook exists to demonstrate why.
    pub fn partition(&self, groups: &[Vec<SiteId>]) {
        // A partitioned holder can no longer be reached to serve a lease;
        // epoch-bump so every outstanding grant dies with the topology.
        self.leases.bump_epoch();
        let mut topo = blockrep_net::Topology::fully_connected(self.cfg.num_sites());
        topo.partition(groups);
        self.net.set_topology(topo);
    }

    /// Heals all partitions and re-runs the recovery sweep.
    pub fn heal(&self) {
        self.leases.bump_epoch();
        self.net
            .set_topology(blockrep_net::Topology::fully_connected(
                self.cfg.num_sites(),
            ));
        protocol::sweep(self);
    }

    /// The state of site `s`.
    pub fn site_state(&self, s: SiteId) -> SiteState {
        self.states.read()[s.index()]
    }

    /// Whether the device is available under the scheme's criterion.
    pub fn is_available(&self) -> bool {
        protocol::is_available(self)
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// The high-level transmission counter (the protocol layer's §5
    /// accounting; the router's own counter is not used).
    pub fn counter(&self) -> &TrafficCounter {
        &self.counter
    }

    /// Selects the fan-out mode for scatter exchanges. The default is
    /// [`FanoutMode::Parallel`]; [`FanoutMode::Sequential`] restores the
    /// historical blocking per-target loop. Either way the §5 message
    /// counts are identical (`tests/runtime_parity.rs`) — only latency
    /// changes.
    pub fn set_fanout(&self, mode: FanoutMode) {
        self.parallel
            .store(mode == FanoutMode::Parallel, Ordering::Relaxed);
    }

    /// The current fan-out mode.
    pub fn fanout(&self) -> FanoutMode {
        if self.parallel.load(Ordering::Relaxed) {
            FanoutMode::Parallel
        } else {
            FanoutMode::Sequential
        }
    }

    /// Opts MCV vote collection in (or out) of early-quorum termination:
    /// the coordinator unblocks as soon as the gathered weight reaches the
    /// quorum, while straggler replies are received — and charged — by a
    /// background drainer. Call [`quiesce`](Self::quiesce) before comparing
    /// traffic snapshots.
    pub fn set_early_quorum(&self, on: bool) {
        self.early_quorum.store(on, Ordering::Relaxed);
    }

    /// Turns lease-based read offload on or off (see [`crate::locks`]).
    pub fn set_leases(&self, on: bool) {
        self.leases.set_enabled(on);
    }

    /// Emulates a network link delay: every site sleeps `delay` before
    /// serving a blocking request/reply exchange (one-way casts, local
    /// actions and shutdown are exempt — their transit occupies no server
    /// on a real network). Zero — the default — disables the emulation.
    ///
    /// This is the benchmark's knob for giving the loopback channels a
    /// realistic message cost: under a nonzero delay a sequential fan-out
    /// pays one delay per target while a parallel fan-out overlaps them,
    /// which is exactly the geometry on a real network. Message *counts*
    /// are unaffected.
    pub fn set_link_latency(&self, delay: Duration) {
        self.latency_ns.store(
            delay.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }

    /// Blocks until every straggler reply handed to the background drainer
    /// has been received and charged, so a traffic snapshot taken afterwards
    /// is complete.
    pub fn quiesce(&self) {
        if let Some(tx) = &self.drain_tx {
            let (ack_tx, ack_rx) = bounded(1);
            if tx.send(DrainJob::Sync(ack_tx)).is_ok() {
                let _ = ack_rx.recv();
            }
        }
    }

    /// Raises or lowers site `s`'s network link without running any
    /// protocol — the chaos runner's hook for making a mid-operation crash
    /// real (protocol-level failure handling is driven separately, in the
    /// same order `fail_site`/`repair_site` use).
    pub(crate) fn set_link(&self, s: SiteId, up: bool) {
        self.net.set_site_up(s, up);
    }

    /// Wraps `req` in the in-process trace envelope when tracing is on and
    /// a span context is live, so the server thread (which does not share
    /// this thread's context) can stitch its apply span into the tree.
    fn trace_wrap(&self, to: SiteId, req: Request) -> Request {
        if blockrep_obs::enabled() && crate::obs_hooks::tracing() {
            if let Some(ctx) = blockrep_obs::trace::current() {
                return Request::Traced {
                    trace_id: ctx.trace_id,
                    parent: ctx.span_id,
                    site: to.as_u32(),
                    inner: Box::new(req),
                };
            }
        }
        req
    }

    fn call<T>(
        &self,
        from: SiteId,
        to: SiteId,
        build: impl FnOnce(Sender<T>) -> Request,
    ) -> Option<T> {
        let (tx, rx) = bounded(1);
        let req = self.trace_wrap(to, build(tx));
        self.net.send_raw(from, to, req).ok()?;
        rx.recv().ok()
    }

    fn cast(&self, from: SiteId, to: SiteId, req: Request) -> bool {
        let req = self.trace_wrap(to, req);
        self.net.send_raw(from, to, req).is_ok()
    }

    /// Parallel scatter over request/reply exchanges: dispatches to every
    /// target before awaiting any reply, then gathers — and charges — in
    /// target order, so results and counts are byte-identical to the
    /// sequential loop while the blocking time drops from the *sum* of the
    /// round trips to the *slowest* one.
    fn scatter_calls<T: Send + 'static>(
        &self,
        spec: ScatterSpec,
        origin: SiteId,
        targets: &[SiteId],
        build: impl Fn(Sender<T>) -> Request,
        wrap: impl Fn(T) -> ScatterReply,
    ) -> ScatterReplies {
        // Satellite hoist: one `enabled()` load decides whether any obs
        // work happens in this batch; the disabled path records nothing.
        let obs_on = blockrep_obs::enabled();
        if obs_on {
            crate::obs_hooks::scatter_batch().record(targets.len() as u64);
        }
        let tracing = obs_on && crate::obs_hooks::tracing();
        // Captured for the straggler drainer, which runs on its own thread
        // and therefore cannot inherit this thread's span context.
        let op_ctx = if tracing {
            blockrep_obs::trace::current()
        } else {
            None
        };
        let pending: Vec<(SiteId, Option<Receiver<T>>)> = targets
            .iter()
            .map(|&t| {
                let send_span = if tracing {
                    blockrep_obs::trace::start_phase(
                        crate::obs_hooks::phase_scatter_send(),
                        t.as_u32(),
                    )
                } else {
                    None
                };
                let (tx, rx) = bounded(1);
                let mut req = build(tx);
                // The send span is the envelope parent, so the server's
                // remote_apply span lands under this site's send leg.
                if let Some(ctx) = send_span.as_ref().map(|s| s.context()) {
                    req = Request::Traced {
                        trace_id: ctx.trace_id,
                        parent: ctx.span_id,
                        site: t.as_u32(),
                        inner: Box::new(req),
                    };
                }
                let sent = self.net.send_raw(origin, t, req).is_ok();
                (t, sent.then_some(rx))
            })
            .collect();
        let threshold = match spec.gather {
            Gather::All => u64::MAX,
            Gather::EarlyQuorum { threshold } => threshold,
        };
        let mut gathered = 0u64;
        let mut cut_marked = false;
        let mut replies: ScatterReplies = Vec::with_capacity(targets.len());
        let mut stragglers: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        for (t, rx) in pending {
            if gathered >= threshold {
                // Quorum reached: the reply still arrives and is still
                // charged — by the drainer — but nobody blocks on it.
                if tracing && !cut_marked {
                    cut_marked = true;
                    blockrep_obs::trace::instant(
                        crate::obs_hooks::phase_early_quorum_cut(),
                        origin.as_u32(),
                    );
                }
                if let Some(rx) = rx {
                    let counter = Arc::clone(&self.counter);
                    let (op, charge, units) = (spec.op, spec.reply_charge, spec.reply_units);
                    let drain_phase = crate::obs_hooks::phase_straggler_drain();
                    let site = t.as_u32();
                    stragglers.push(Box::new(move || {
                        let _drain = op_ctx.map(|ctx| {
                            blockrep_obs::trace::start_phase_under(ctx, drain_phase, site)
                        });
                        if rx.recv().is_ok() {
                            if let Some(kind) = charge {
                                counter.add(op, kind, units);
                            }
                        }
                    }));
                }
                replies.push((t, None));
                continue;
            }
            let reply = rx.and_then(|rx| {
                let _gather = if tracing {
                    blockrep_obs::trace::start_phase(
                        crate::obs_hooks::phase_gather_wait(),
                        t.as_u32(),
                    )
                } else {
                    None
                };
                rx.recv().ok()
            });
            if reply.is_some() {
                if let Some(kind) = spec.reply_charge {
                    self.counter.add(spec.op, kind, spec.reply_units);
                }
                gathered += self.cfg.weight(t).as_u64();
            }
            replies.push((t, reply.map(&wrap)));
        }
        if !stragglers.is_empty() {
            if let Some(tx) = &self.drain_tx {
                let _ = tx.send(DrainJob::Drain(stragglers));
            }
        }
        replies
    }
}

/// Whether a request carries a reply channel — i.e. it is a round trip the
/// sender blocks on. Only these pay the emulated link delay: a one-way cast
/// is in flight on a real network without occupying the server, so sleeping
/// in the service thread for it would model a bottleneck that does not
/// exist.
fn is_rpc(req: &Request) -> bool {
    match req {
        Request::Traced { inner, .. } => is_rpc(inner),
        _ => matches!(
            req,
            Request::Vote(..)
                | Request::Fetch(..)
                | Request::FetchLease(..)
                | Request::Scrub(_)
                | Request::ReadLocal(..)
                | Request::VersionVector(_)
                | Request::RepairPayload(..)
                | Request::GetW(_)
                | Request::VoteMany(..)
                | Request::ReadLocalMany(..)
        ),
    }
}

/// Sleeps for the emulated link delay, if one is set (see
/// [`LiveCluster::set_link_latency`]).
fn emulate_link(latency_ns: &AtomicU64) {
    let ns = latency_ns.load(Ordering::Relaxed);
    if ns > 0 {
        std::thread::sleep(Duration::from_nanos(ns));
    }
}

fn handle(replica: &mut Replica, req: Request) {
    match req {
        Request::Vote(k, reply) => {
            let _ = reply.send(replica.version(k));
        }
        Request::Fetch(k, reply) => {
            let _ = reply.send(replica.versioned(k));
        }
        Request::FetchLease(k, reply) => {
            let _ = reply.send(replica.versioned(k));
        }
        Request::ApplyWrite(k, data, v) => {
            replica.install(k, data, v);
        }
        Request::ApplyWriteFaulty(k, data, v, fault) => {
            replica.install_faulty(k, data, v, fault);
        }
        Request::Scrub(reply) => {
            let _ = reply.send(replica.scrub().len());
        }
        Request::ReadLocal(k, reply) => {
            let _ = reply.send(replica.data(k));
        }
        Request::VersionVector(reply) => {
            let _ = reply.send(replica.version_vector());
        }
        Request::RepairPayload(vv, reply) => {
            let _ = reply.send(replica.repair_payload(&vv));
        }
        Request::ApplyRepair(blocks) => {
            replica.apply_repair(blocks);
        }
        Request::GetW(reply) => {
            let _ = reply.send(replica.was_available().clone());
        }
        Request::SetW(w) => replica.set_was_available(w),
        Request::AddW(s) => replica.add_was_available(s),
        Request::VoteMany(ks, reply) => {
            let _ = reply.send(ks.into_iter().map(|k| replica.version(k)).collect());
        }
        Request::ApplyWriteMany(writes) => {
            for (k, v, data) in writes {
                replica.install(k, data, v);
            }
        }
        Request::ReadLocalMany(ks, reply) => {
            let _ = reply.send(ks.into_iter().map(|k| replica.data(k)).collect());
        }
        Request::Traced {
            trace_id,
            parent,
            site,
            inner,
        } => {
            let _remote = blockrep_obs::trace::start_remote(
                trace_id,
                parent,
                crate::obs_hooks::phase_remote_apply(),
                site,
            );
            handle(replica, *inner);
        }
        Request::Shutdown => {}
    }
}

impl Backend for LiveCluster {
    fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    fn delivery_mode(&self) -> DeliveryMode {
        self.mode
    }

    fn counter(&self) -> &TrafficCounter {
        &self.counter
    }

    fn local_state(&self, s: SiteId) -> SiteState {
        self.states.read()[s.index()]
    }

    fn set_local_state(&self, s: SiteId, state: SiteState) {
        self.states.write()[s.index()] = state;
    }

    fn probe_state(&self, from: SiteId, to: SiteId) -> Option<SiteState> {
        if from != to && !self.net.can_deliver(from, to) {
            return None;
        }
        let state = self.states.read()[to.index()];
        state.is_operational().then_some(state)
    }

    fn vote(&self, from: SiteId, to: SiteId, k: BlockIndex) -> Option<VersionNumber> {
        self.call(from, to, |tx| Request::Vote(k, tx))
    }

    fn vote_many(&self, from: SiteId, to: SiteId, ks: &[BlockIndex]) -> Option<Vec<VersionNumber>> {
        self.call(from, to, |tx| Request::VoteMany(ks.to_vec(), tx))
    }

    fn fetch_block(
        &self,
        from: SiteId,
        to: SiteId,
        k: BlockIndex,
    ) -> Option<(VersionNumber, BlockData)> {
        self.call(from, to, |tx| Request::Fetch(k, tx))
    }

    fn fetch_lease(
        &self,
        from: SiteId,
        to: SiteId,
        k: BlockIndex,
    ) -> Option<(VersionNumber, BlockData)> {
        self.call(from, to, |tx| Request::FetchLease(k, tx))
    }

    fn apply_write(
        &self,
        from: SiteId,
        to: SiteId,
        k: BlockIndex,
        data: &BlockData,
        v: VersionNumber,
    ) -> bool {
        self.cast(from, to, Request::ApplyWrite(k, data.clone(), v))
    }

    fn apply_write_many(&self, from: SiteId, to: SiteId, writes: &WriteBatch) -> bool {
        self.cast(from, to, Request::ApplyWriteMany(writes.clone()))
    }

    fn read_local(&self, s: SiteId, k: BlockIndex) -> BlockData {
        self.call(s, s, |tx| Request::ReadLocal(k, tx))
            .expect("a site can always read its own disk")
    }

    fn read_local_many(&self, s: SiteId, ks: &[BlockIndex]) -> Vec<BlockData> {
        self.call(s, s, |tx| Request::ReadLocalMany(ks.to_vec(), tx))
            .expect("a site can always read its own disk")
    }

    fn version_vector(&self, from: SiteId, to: SiteId) -> Option<VersionVector> {
        self.call(from, to, Request::VersionVector)
    }

    fn repair_payload(
        &self,
        from: SiteId,
        to: SiteId,
        vv: &VersionVector,
    ) -> Option<(VersionVector, RepairBlocks)> {
        self.call(from, to, |tx| Request::RepairPayload(vv.clone(), tx))
    }

    fn apply_repair_local(&self, s: SiteId, blocks: RepairBlocks) -> usize {
        let n = blocks.len();
        if self.cast(s, s, Request::ApplyRepair(blocks)) {
            n
        } else {
            0
        }
    }

    fn was_available(&self, from: SiteId, to: SiteId) -> Option<BTreeSet<SiteId>> {
        self.call(from, to, Request::GetW)
    }

    fn set_was_available(&self, from: SiteId, to: SiteId, w: &BTreeSet<SiteId>) -> bool {
        self.cast(from, to, Request::SetW(w.clone()))
    }

    fn add_was_available(&self, from: SiteId, to: SiteId, member: SiteId) -> bool {
        self.cast(from, to, Request::AddW(member))
    }

    fn apply_write_faulty(
        &self,
        from: SiteId,
        to: SiteId,
        k: BlockIndex,
        data: &BlockData,
        v: VersionNumber,
        fault: StorageFault,
    ) -> bool {
        self.cast(
            from,
            to,
            Request::ApplyWriteFaulty(k, data.clone(), v, fault),
        )
    }

    fn scrub_local(&self, s: SiteId) -> usize {
        self.call(s, s, Request::Scrub)
            .expect("a site can always scrub its own disk")
    }

    fn early_quorum(&self) -> bool {
        self.early_quorum.load(Ordering::Relaxed)
    }

    fn block_locks(&self) -> &BlockLockTable {
        &self.locks
    }

    fn leases(&self) -> &LeaseTable {
        &self.leases
    }

    fn scatter(
        &self,
        spec: ScatterSpec,
        origin: SiteId,
        targets: &[SiteId],
        req: &ScatterRequest,
    ) -> ScatterReplies {
        if !self.parallel.load(Ordering::Relaxed) {
            return backend::scatter_sequential(self, spec, origin, targets, req);
        }
        match req {
            ScatterRequest::Vote(k) => {
                let k = *k;
                self.scatter_calls(
                    spec,
                    origin,
                    targets,
                    move |tx| Request::Vote(k, tx),
                    ScatterReply::Version,
                )
            }
            ScatterRequest::VoteMany(ks) => {
                let ks = ks.clone();
                self.scatter_calls(
                    spec,
                    origin,
                    targets,
                    move |tx| Request::VoteMany(ks.clone(), tx),
                    ScatterReply::Versions,
                )
            }
            ScatterRequest::VersionVector => self.scatter_calls(
                spec,
                origin,
                targets,
                Request::VersionVector,
                ScatterReply::Vector,
            ),
            // Installs are one-way casts and probes are local state reads on
            // this runtime: the sequential body already never blocks.
            ScatterRequest::Install { .. }
            | ScatterRequest::InstallMany(_)
            | ScatterRequest::InstallIfAvailable { .. }
            | ScatterRequest::InstallIfAvailableMany(_)
            | ScatterRequest::ProbeState => {
                backend::scatter_sequential(self, spec, origin, targets, req)
            }
        }
    }
}

impl Drop for LiveCluster {
    fn drop(&mut self) {
        // Finish draining stragglers while the servers still answer, then
        // shut the servers down.
        self.drain_tx.take();
        if let Some(drainer) = self.drainer.take() {
            let _ = drainer.join();
        }
        for tx in &self.direct {
            let _ = tx.send(Request::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for LiveCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveCluster")
            .field("sites", &self.cfg.num_sites())
            .field("scheme", &self.cfg.scheme())
            .field("mode", &self.mode)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockrep_types::Scheme;

    fn sid(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn live(scheme: Scheme, n: usize) -> LiveCluster {
        let cfg = DeviceConfig::builder(scheme)
            .sites(n)
            .num_blocks(4)
            .block_size(8)
            .build()
            .unwrap();
        LiveCluster::spawn(cfg, DeliveryMode::Multicast)
    }

    #[test]
    fn live_write_read_roundtrip_all_schemes() {
        for scheme in Scheme::ALL {
            let c = live(scheme, 3);
            let k = BlockIndex::new(1);
            c.write(sid(0), k, BlockData::from(vec![4; 8])).unwrap();
            for s in 0..3 {
                assert_eq!(c.read(sid(s), k).unwrap().as_slice(), &[4; 8], "{scheme}");
            }
        }
    }

    #[test]
    fn live_survives_failures_and_recovers() {
        let c = live(Scheme::AvailableCopy, 3);
        let k = BlockIndex::new(0);
        c.write(sid(0), k, BlockData::from(vec![1; 8])).unwrap();
        c.fail_site(sid(0));
        c.write(sid(1), k, BlockData::from(vec![2; 8])).unwrap();
        c.repair_site(sid(0));
        assert_eq!(c.site_state(sid(0)), SiteState::Available);
        // The repaired site caught up during recovery.
        assert_eq!(c.read(sid(0), k).unwrap().as_slice(), &[2; 8]);
    }

    #[test]
    fn live_voting_needs_quorum() {
        let c = live(Scheme::Voting, 3);
        c.fail_site(sid(1));
        c.fail_site(sid(2));
        assert!(c.read(sid(0), BlockIndex::new(0)).is_err());
        assert!(!c.is_available());
        c.repair_site(sid(1));
        assert!(c.read(sid(0), BlockIndex::new(0)).is_ok());
    }

    #[test]
    fn live_total_failure_naive_waits_for_all() {
        let c = live(Scheme::NaiveAvailableCopy, 3);
        c.write(sid(0), BlockIndex::new(0), BlockData::from(vec![9; 8]))
            .unwrap();
        for i in 0..3 {
            c.fail_site(sid(i));
        }
        c.repair_site(sid(2)); // last to fail, but naive can't know that
        assert_eq!(c.site_state(sid(2)), SiteState::Comatose);
        assert!(!c.is_available());
        c.repair_site(sid(0));
        assert!(!c.is_available());
        c.repair_site(sid(1)); // everyone back — service resumes
        assert!(c.is_available());
        assert_eq!(
            c.read(sid(1), BlockIndex::new(0)).unwrap().as_slice(),
            &[9; 8]
        );
    }

    #[test]
    fn shutdown_is_clean() {
        let c = live(Scheme::Voting, 4);
        c.write(sid(0), BlockIndex::new(0), BlockData::from(vec![1; 8]))
            .unwrap();
        drop(c); // must not hang or panic
    }

    #[test]
    fn parallel_and_sequential_fanout_agree_on_results_and_traffic() {
        for scheme in Scheme::ALL {
            let par = live(scheme, 4);
            let seq = live(scheme, 4);
            seq.set_fanout(FanoutMode::Sequential);
            assert_eq!(par.fanout(), FanoutMode::Parallel);
            assert_eq!(seq.fanout(), FanoutMode::Sequential);
            for c in [&par, &seq] {
                let k = BlockIndex::new(0);
                c.write(sid(0), k, BlockData::from(vec![5; 8])).unwrap();
                c.fail_site(sid(3));
                c.write(sid(1), k, BlockData::from(vec![6; 8])).unwrap();
                c.repair_site(sid(3));
                assert_eq!(c.read(sid(3), k).unwrap().as_slice(), &[6; 8], "{scheme}");
            }
            assert_eq!(
                par.counter().snapshot(),
                seq.counter().snapshot(),
                "{scheme}: fan-out mode must not change §5 counts"
            );
        }
    }

    #[test]
    fn early_quorum_charges_stragglers_through_the_drainer() {
        let baseline = live(Scheme::Voting, 5);
        let early = live(Scheme::Voting, 5);
        early.set_early_quorum(true);
        let k = BlockIndex::new(1);
        for c in [&baseline, &early] {
            c.write(sid(0), k, BlockData::from(vec![9; 8])).unwrap();
        }
        early.quiesce();
        // Multicast: straggler vote replies are still charged (by the
        // drainer), so the write's §5 cost matches gather-all exactly.
        assert_eq!(baseline.counter().snapshot(), early.counter().snapshot());
        // Quorum intersection keeps reads correct everywhere — including at
        // a straggler that missed the install and repairs lazily.
        for s in 0..5 {
            assert_eq!(early.read(sid(s), k).unwrap().as_slice(), &[9; 8]);
        }
    }
}
