//! Concurrent-client load benchmark: throughput scaling and tail latency.
//!
//! `blockrep bench --suite load` drives a closed-loop client fleet (1 up to
//! 256 threads, uniform or zipfian key choice) against the live and TCP
//! runtimes, with lease-based read offload on and off, and reports the
//! throughput-scaling curve plus p50/p99 latency under contention into
//! `BENCH_load.json` (schema [`SCHEMA`]).
//!
//! The interesting comparison is the leases dimension. Without leases every
//! read is a quorum round that occupies a majority of the site servers for
//! one emulated link delay each, so aggregate read throughput is capped
//! near `n / (quorum - 1)` times a single server's service rate no matter
//! how many clients offer load. With leases a warm read is a single fetch
//! routed deterministically across the holder set (or served locally when
//! the routing lands on the origin), so the same fleet drives every site
//! server in parallel and the curve keeps climbing until all `n` servers
//! saturate. The TCP runtime additionally exercises the multiplexed
//! connections: the suite turns multiplexing on so concurrent clients share
//! one windowed connection per site instead of serializing whole scatters
//! behind a per-site connection mutex.

use crate::protocol_bench::JsonValue;
use blockrep_core::{LiveCluster, TcpCluster};
use blockrep_net::DeliveryMode;
use blockrep_obs::metrics::Histogram;
use blockrep_types::{BlockData, BlockIndex, DeviceConfig, Scheme, SiteId};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Schema identifier written into (and required from) the JSON report.
pub const SCHEMA: &str = "blockrep.bench.load/v1";

/// Parameters of one load-benchmark run.
#[derive(Debug, Clone)]
pub struct LoadBenchConfig {
    /// Replication scheme under test.
    pub scheme: Scheme,
    /// Number of sites.
    pub sites: usize,
    /// Number of blocks on the replicated device.
    pub blocks: u64,
    /// Bytes per block.
    pub block_size: usize,
    /// Client-fleet sizes to sweep. Scaling ratios are computed against the
    /// 1-client case, so the grid should normally include `1`.
    pub clients: Vec<usize>,
    /// Target total operations per case; split evenly across the fleet.
    pub total_ops: u64,
    /// Floor on per-client operations at high fleet sizes, so every thread
    /// contributes samples to the latency histogram.
    pub min_ops_per_client: u64,
    /// When nonzero, every `write_every`-th operation of each client is a
    /// write (exercising lease invalidation and re-grant under load). Zero
    /// — the default — runs a pure read workload, which is what the read
    /// throughput-scaling acceptance number is defined over.
    pub write_every: u64,
    /// Network cost model (recorded for context).
    pub mode: DeliveryMode,
    /// Emulated one-way link delay in microseconds, served by each site
    /// before handling a remote request. This is the per-message cost that
    /// makes server occupancy — and therefore the scaling curve — real.
    pub link_latency_us: u64,
    /// Skew of the zipfian key mix (`0.99` is the YCSB convention).
    pub zipf_theta: f64,
    /// Run every site on a write-ahead log (`--journaled`), so the load
    /// numbers include the WAL append/group-commit cost on writes.
    pub journaled: bool,
}

impl LoadBenchConfig {
    /// The acceptance-criterion default: the paper's 5-site cluster, small
    /// blocks, a 1→256 client sweep at a LAN-order link delay.
    pub fn new(scheme: Scheme) -> LoadBenchConfig {
        LoadBenchConfig {
            scheme,
            sites: 5,
            blocks: 32,
            block_size: 64,
            clients: vec![1, 4, 16, 64, 256],
            total_ops: 4096,
            min_ops_per_client: 16,
            write_every: 0,
            mode: DeliveryMode::Multicast,
            link_latency_us: 300,
            zipf_theta: 0.99,
            journaled: false,
        }
    }

    fn device(&self) -> DeviceConfig {
        DeviceConfig::builder(self.scheme)
            .sites(self.sites)
            .num_blocks(self.blocks)
            .block_size(self.block_size)
            .journaled(self.journaled)
            .build()
            .expect("load benchmark device config")
    }

    /// Operations each client runs at fleet size `clients`.
    pub fn ops_per_client(&self, clients: usize) -> u64 {
        (self.total_ops / clients.max(1) as u64).max(self.min_ops_per_client)
    }
}

/// Which concurrent harness carries the fleet. The deterministic runtime is
/// deliberately absent: it has no server threads, so "concurrent clients"
/// would measure nothing but lock handoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadRuntime {
    /// Thread-per-site channels ([`LiveCluster`]).
    Live,
    /// Framed loopback TCP with multiplexed connections ([`TcpCluster`]).
    Tcp,
}

impl LoadRuntime {
    /// Both runtimes, channels first.
    pub const ALL: [LoadRuntime; 2] = [LoadRuntime::Live, LoadRuntime::Tcp];

    /// Stable label used in the JSON report.
    pub const fn label(self) -> &'static str {
        match self {
            LoadRuntime::Live => "live",
            LoadRuntime::Tcp => "tcp",
        }
    }
}

/// How clients pick the block each operation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyDist {
    /// Uniform over all blocks.
    Uniform,
    /// Zipf-distributed with [`LoadBenchConfig::zipf_theta`] skew; block 0
    /// is the hottest key.
    Zipfian,
}

impl KeyDist {
    /// Both key mixes.
    pub const ALL: [KeyDist; 2] = [KeyDist::Uniform, KeyDist::Zipfian];

    /// Stable label used in the JSON report.
    pub const fn label(self) -> &'static str {
        match self {
            KeyDist::Uniform => "uniform",
            KeyDist::Zipfian => "zipfian",
        }
    }
}

/// Inverse-CDF zipfian sampler over `0..n` (rank 0 hottest).
struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: u64, theta: f64) -> ZipfSampler {
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        ZipfSampler { cdf }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        (self.cdf.partition_point(|&c| c < u) as u64).min(self.cdf.len() as u64 - 1)
    }
}

/// Uniform driver interface over the two concurrent runtimes. `Sync` is a
/// supertrait because the whole point is many client threads sharing one
/// target.
trait LoadTarget: Sync {
    fn read(&self, origin: SiteId, k: BlockIndex) -> bool;
    fn write(&self, origin: SiteId, k: BlockIndex, data: BlockData) -> bool;
}

impl LoadTarget for LiveCluster {
    fn read(&self, origin: SiteId, k: BlockIndex) -> bool {
        LiveCluster::read(self, origin, k).is_ok()
    }
    fn write(&self, origin: SiteId, k: BlockIndex, data: BlockData) -> bool {
        LiveCluster::write(self, origin, k, data).is_ok()
    }
}

impl LoadTarget for TcpCluster {
    fn read(&self, origin: SiteId, k: BlockIndex) -> bool {
        TcpCluster::read(self, origin, k).is_ok()
    }
    fn write(&self, origin: SiteId, k: BlockIndex, data: BlockData) -> bool {
        TcpCluster::write(self, origin, k, data).is_ok()
    }
}

/// One (runtime, leases, key-mix, fleet-size) measurement.
#[derive(Debug, Clone)]
pub struct LoadCaseResult {
    /// Runtime label (`live` / `tcp`).
    pub runtime: &'static str,
    /// Whether lease-based read offload was enabled.
    pub leases: bool,
    /// Key-mix label (`uniform` / `zipfian`).
    pub dist: &'static str,
    /// Number of closed-loop client threads.
    pub clients: usize,
    /// Total operations across the fleet.
    pub ops: u64,
    /// Read operations across the fleet (equals `ops` when
    /// [`LoadBenchConfig::write_every`] is zero).
    pub reads: u64,
    /// Aggregate throughput over the timed section.
    pub ops_per_sec: f64,
    /// Aggregate read throughput — the scaling curves are drawn over this.
    pub reads_per_sec: f64,
    /// Median per-op latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-op latency under contention, microseconds.
    pub p99_us: f64,
    /// Latency samples behind the percentiles.
    pub samples: u64,
    /// Whether the percentiles come from fewer than
    /// [`LOW_CONFIDENCE_SAMPLES`](blockrep_obs::metrics::LOW_CONFIDENCE_SAMPLES)
    /// samples and should not be read as distribution tails.
    pub low_confidence: bool,
}

/// Read-throughput ratio of an N-client case over its 1-client baseline
/// within the same (runtime, leases, key-mix) group.
#[derive(Debug, Clone)]
pub struct ScalingRatio {
    /// Runtime label.
    pub runtime: &'static str,
    /// Whether leases were enabled.
    pub leases: bool,
    /// Key-mix label.
    pub dist: &'static str,
    /// Fleet size of the numerator case.
    pub clients: usize,
    /// `reads_per_sec(clients) / reads_per_sec(1)`.
    pub throughput_over_one_client: f64,
}

/// The full suite result: every case plus the derived scaling curve.
#[derive(Debug, Clone)]
pub struct LoadBenchReport {
    /// The configuration that produced this report.
    pub config: LoadBenchConfig,
    /// All measured cases.
    pub results: Vec<LoadCaseResult>,
    /// Per-group throughput-over-one-client ratios.
    pub scaling: Vec<ScalingRatio>,
}

/// Runs one closed-loop fleet against `target`: warm-up writes populate
/// every block (granting leases when they are enabled), then `clients`
/// threads are released from a barrier together and each runs its
/// per-client op quota, timing every operation into a shared histogram.
/// Returns `(elapsed_secs, total_ops, total_reads, histogram)`.
fn drive_load(
    cfg: &LoadBenchConfig,
    target: &dyn LoadTarget,
    clients: usize,
    dist: KeyDist,
) -> (f64, u64, u64, Histogram) {
    let fill = |i: u64| BlockData::from(vec![(i % 251) as u8; cfg.block_size]);
    for k in 0..cfg.blocks {
        assert!(
            target.write(SiteId::new(0), BlockIndex::new(k), fill(k)),
            "warm-up write failed"
        );
    }
    let zipf = ZipfSampler::new(cfg.blocks, cfg.zipf_theta);
    let ops = cfg.ops_per_client(clients);
    let latencies = Histogram::new();
    let barrier = Barrier::new(clients + 1);
    let mut total_reads = 0u64;
    let elapsed = std::thread::scope(|s| {
        let mut workers = Vec::with_capacity(clients);
        for c in 0..clients {
            let latencies = &latencies;
            let barrier = &barrier;
            let zipf = &zipf;
            let fill = &fill;
            workers.push(s.spawn(move || {
                // Distinct deterministic streams per client; mixing in the
                // fleet size keeps cases independent of one another.
                let mut rng = StdRng::seed_from_u64(
                    (c as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ clients as u64,
                );
                let origin = SiteId::new((c % cfg.sites) as u32);
                let mut reads = 0u64;
                barrier.wait();
                for i in 0..ops {
                    let k = BlockIndex::new(match dist {
                        KeyDist::Uniform => rng.random_range(0..cfg.blocks),
                        KeyDist::Zipfian => zipf.sample(&mut rng),
                    });
                    let is_write = cfg.write_every > 0 && (i + 1) % cfg.write_every == 0;
                    let timer = latencies.timer();
                    let ok = if is_write {
                        target.write(origin, k, fill(i))
                    } else {
                        reads += 1;
                        target.read(origin, k)
                    };
                    drop(timer);
                    assert!(ok, "load op {i} failed on client {c}");
                }
                reads
            }));
        }
        barrier.wait();
        let started = Instant::now();
        for w in workers {
            total_reads += w.join().expect("load client panicked");
        }
        started.elapsed().as_secs_f64()
    });
    (elapsed, ops * clients as u64, total_reads, latencies)
}

/// Measures one (runtime, leases, key-mix, fleet-size) case on a freshly
/// spawned cluster.
pub fn run_case(
    cfg: &LoadBenchConfig,
    runtime: LoadRuntime,
    leases: bool,
    dist: KeyDist,
    clients: usize,
) -> LoadCaseResult {
    let (elapsed, ops, reads, latencies) = match runtime {
        LoadRuntime::Live => {
            let c = LiveCluster::spawn(cfg.device(), cfg.mode);
            c.set_link_latency(Duration::from_micros(cfg.link_latency_us));
            c.set_leases(leases);
            drive_load(cfg, &c, clients, dist)
        }
        LoadRuntime::Tcp => {
            let c = TcpCluster::spawn(cfg.device(), cfg.mode).expect("tcp spawn");
            c.set_link_latency(Duration::from_micros(cfg.link_latency_us));
            c.set_leases(leases);
            // Concurrent clients share the per-site connections; the
            // windowed multiplexer is what lets their requests overlap.
            c.set_multiplexing(true).expect("multiplexing on");
            drive_load(cfg, &c, clients, dist)
        }
    };
    let summary = latencies.summary();
    let per_sec = |n: u64| {
        if elapsed > 0.0 {
            n as f64 / elapsed
        } else {
            0.0
        }
    };
    LoadCaseResult {
        runtime: runtime.label(),
        leases,
        dist: dist.label(),
        clients,
        ops,
        reads,
        ops_per_sec: per_sec(ops),
        reads_per_sec: per_sec(reads),
        p50_us: summary.p50 / 1_000.0,
        p99_us: summary.p99 / 1_000.0,
        samples: summary.count,
        low_confidence: summary.low_confidence(),
    }
}

/// Runs the whole matrix: two runtimes × leases off/on × two key mixes ×
/// the configured fleet sizes.
pub fn run_suite(cfg: &LoadBenchConfig) -> LoadBenchReport {
    let mut results = Vec::new();
    for runtime in LoadRuntime::ALL {
        for leases in [false, true] {
            for dist in KeyDist::ALL {
                for &clients in &cfg.clients {
                    results.push(run_case(cfg, runtime, leases, dist, clients));
                }
            }
        }
    }
    let scaling = compute_scaling(&results);
    LoadBenchReport {
        config: cfg.clone(),
        results,
        scaling,
    }
}

/// Derives throughput-over-one-client ratios from a result set.
pub fn compute_scaling(results: &[LoadCaseResult]) -> Vec<ScalingRatio> {
    let mut scaling = Vec::new();
    for r in results {
        if r.clients == 1 {
            continue;
        }
        let base = results.iter().find(|b| {
            b.clients == 1 && b.runtime == r.runtime && b.leases == r.leases && b.dist == r.dist
        });
        if let Some(base) = base {
            if base.reads_per_sec > 0.0 {
                scaling.push(ScalingRatio {
                    runtime: r.runtime,
                    leases: r.leases,
                    dist: r.dist,
                    clients: r.clients,
                    throughput_over_one_client: r.reads_per_sec / base.reads_per_sec,
                });
            }
        }
    }
    scaling
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_string()
    }
}

impl LoadBenchReport {
    /// The report as `blockrep.bench.load/v1` JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"scheme\": \"{}\",\n", self.config.scheme));
        out.push_str(&format!("  \"sites\": {},\n", self.config.sites));
        out.push_str(&format!("  \"blocks\": {},\n", self.config.blocks));
        out.push_str(&format!("  \"block_size\": {},\n", self.config.block_size));
        out.push_str(&format!("  \"net\": \"{}\",\n", self.config.mode));
        out.push_str(&format!(
            "  \"link_latency_us\": {},\n",
            self.config.link_latency_us
        ));
        out.push_str(&format!("  \"total_ops\": {},\n", self.config.total_ops));
        out.push_str(&format!(
            "  \"write_every\": {},\n",
            self.config.write_every
        ));
        out.push_str(&format!("  \"zipf_theta\": {},\n", self.config.zipf_theta));
        out.push_str(&format!("  \"journaled\": {},\n", self.config.journaled));
        let clients: Vec<String> = self.config.clients.iter().map(|c| c.to_string()).collect();
        out.push_str(&format!("  \"clients\": [{}],\n", clients.join(", ")));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"runtime\": \"{}\", \"leases\": {}, \"dist\": \"{}\", \
                 \"clients\": {}, \"ops\": {}, \"reads\": {}, \"ops_per_sec\": {}, \
                 \"reads_per_sec\": {}, \"p50_us\": {}, \"p99_us\": {}, \
                 \"samples\": {}, \"low_confidence\": {}}}{}\n",
                r.runtime,
                r.leases,
                r.dist,
                r.clients,
                r.ops,
                r.reads,
                json_f64(r.ops_per_sec),
                json_f64(r.reads_per_sec),
                json_f64(r.p50_us),
                json_f64(r.p99_us),
                r.samples,
                r.low_confidence,
                if i + 1 < self.results.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"scaling\": [\n");
        for (i, s) in self.scaling.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"runtime\": \"{}\", \"leases\": {}, \"dist\": \"{}\", \
                 \"clients\": {}, \"throughput_over_one_client\": {}}}{}\n",
                s.runtime,
                s.leases,
                s.dist,
                s.clients,
                json_f64(s.throughput_over_one_client),
                if i + 1 < self.scaling.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// A human-readable table of the same numbers.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str("| runtime | leases | dist | clients | ops/s | reads/s | p50 µs | p99 µs |\n");
        out.push_str("|---|---|---|---|---|---|---|---|\n");
        for r in &self.results {
            // `~` marks percentile estimates from too few samples.
            let tilde = if r.low_confidence { "~" } else { "" };
            out.push_str(&format!(
                "| {} | {} | {} | {} | {:.0} | {:.0} | {tilde}{:.1} | {tilde}{:.1} |\n",
                r.runtime,
                if r.leases { "on" } else { "off" },
                r.dist,
                r.clients,
                r.ops_per_sec,
                r.reads_per_sec,
                r.p50_us,
                r.p99_us
            ));
        }
        for s in &self.scaling {
            out.push_str(&format!(
                "{} leases={} {}: {} clients read {:.2}x one client\n",
                s.runtime,
                if s.leases { "on" } else { "off" },
                s.dist,
                s.clients,
                s.throughput_over_one_client
            ));
        }
        out
    }
}

/// Validates a `blockrep.bench.load/v1` report.
///
/// # Errors
///
/// The first structural problem found: syntax error, wrong schema tag,
/// missing/ill-typed field, or an empty result set.
pub fn validate(text: &str) -> Result<(), String> {
    let doc = crate::schema::parse_report(text, SCHEMA)?;
    let root = crate::schema::Node::root(&doc);
    root.require_strs(&["scheme", "net"])?;
    root.require_nums(&[
        "sites",
        "blocks",
        "block_size",
        "link_latency_us",
        "total_ops",
        "write_every",
        "zipf_theta",
    ])?;
    root.require_bool("journaled")?;
    let clients = doc
        .get("clients")
        .and_then(JsonValue::as_array)
        .ok_or("missing \"clients\" array")?;
    if clients.iter().any(|c| c.as_f64().is_none()) {
        return Err("\"clients\" has a non-numeric entry".into());
    }
    for r in root.require_nonempty_array("results")? {
        r.require_strs(&["runtime", "dist"])?;
        r.require_bool("leases")?;
        r.require_nonneg(&[
            "clients",
            "ops",
            "reads",
            "ops_per_sec",
            "reads_per_sec",
            "p50_us",
            "p99_us",
            "samples",
        ])?;
        r.require_bool("low_confidence")?;
    }
    for s in root.require_array("scaling")? {
        s.require_strs(&["runtime", "dist"])?;
        s.require_bool("leases")?;
        s.require_nums(&["clients", "throughput_over_one_client"])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(scheme: Scheme) -> LoadBenchConfig {
        LoadBenchConfig {
            scheme,
            sites: 3,
            blocks: 4,
            block_size: 16,
            clients: vec![1, 2],
            total_ops: 8,
            min_ops_per_client: 4,
            write_every: 4,
            mode: DeliveryMode::Multicast,
            link_latency_us: 0,
            zipf_theta: 0.99,
            journaled: false,
        }
    }

    #[test]
    fn journaled_flag_reaches_the_device_config_and_the_report() {
        let mut cfg = tiny(Scheme::Voting);
        cfg.journaled = true;
        assert!(cfg.device().journaled(), "--journaled must reach the sites");
        let report = run_case(&cfg, LoadRuntime::Live, false, KeyDist::Uniform, 1);
        let full = LoadBenchReport {
            config: cfg,
            results: vec![report],
            scaling: Vec::new(),
        };
        assert!(full.to_json().contains("\"journaled\": true"));
        validate(&full.to_json()).unwrap();
    }

    #[test]
    fn suite_emits_valid_json_and_scaling_rows() {
        let report = run_suite(&tiny(Scheme::Voting));
        // 2 runtimes × 2 lease settings × 2 key mixes × 2 fleet sizes.
        assert_eq!(report.results.len(), 16);
        // One non-baseline fleet size per (runtime, leases, dist) group.
        assert_eq!(report.scaling.len(), 8);
        for r in &report.results {
            assert!(r.ops > 0 && r.reads > 0 && r.reads < r.ops);
            assert_eq!(r.samples, r.ops);
        }
        validate(&report.to_json()).unwrap();
    }

    #[test]
    fn validate_rejects_structural_damage() {
        let good = run_suite(&tiny(Scheme::AvailableCopy)).to_json();
        validate(&good).unwrap();
        assert!(validate(&good.replace(SCHEMA, "other/v0")).is_err());
        assert!(validate(&good.replace("\"reads_per_sec\"", "\"oops\"")).is_err());
        assert!(validate(&good.replace("\"scaling\"", "\"scalding\"")).is_err());
        assert!(validate("{\"schema\": \"blockrep.bench.load/v1\"}").is_err());
        assert!(validate("not json").is_err());
    }

    #[test]
    fn zipf_sampler_prefers_low_ranks_and_stays_in_range() {
        let zipf = ZipfSampler::new(8, 0.99);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u64; 8];
        for _ in 0..4000 {
            let k = zipf.sample(&mut rng);
            assert!(k < 8);
            counts[k as usize] += 1;
        }
        assert!(counts[0] > counts[3] && counts[3] > counts[7]);
        assert!(counts[7] > 0, "tail ranks must still be reachable");
    }

    #[test]
    fn ops_per_client_splits_with_a_floor() {
        let cfg = LoadBenchConfig::new(Scheme::Voting);
        assert_eq!(cfg.ops_per_client(1), 4096);
        assert_eq!(cfg.ops_per_client(64), 64);
        assert_eq!(cfg.ops_per_client(256), 16);
        assert_eq!(cfg.ops_per_client(4096), 16); // floor
    }
}
