//! Wire format for the TCP transport.
//!
//! Length-prefixed frames carrying a compact, hand-rolled binary encoding
//! of the protocol's request/response vocabulary — what actually crosses
//! the network when the reliable device runs as real server processes
//! ([`TcpCluster`](crate::TcpCluster)). No serialization framework: the
//! messages are nine shapes of integers, byte blocks and site sets, and a
//! fuzzed round-trip property pins the format down.

use crate::backend::RepairBlocks;
use blockrep_storage::StorageFault;
use blockrep_types::{BlockData, BlockIndex, SiteId, VersionNumber, VersionVector};
use bytes::{Buf, BufMut};
use std::collections::BTreeSet;
use std::io::{self, Read, Write};

/// Upper bound on a frame, to fail fast on corrupt length prefixes.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// A request to a site's server process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireRequest {
    /// Liveness probe.
    Probe,
    /// Request the site's vote (version number) for a block.
    Vote(BlockIndex),
    /// Fetch a block with its version.
    Fetch(BlockIndex),
    /// Install a block at a version (if newer).
    ApplyWrite(BlockIndex, VersionNumber, BlockData),
    /// Read a block off the local disk.
    ReadLocal(BlockIndex),
    /// Request the full version vector.
    VersionVector,
    /// Figure 5's exchange: here is my vector; send yours plus my missing
    /// blocks.
    RepairPayload(VersionVector),
    /// Install a repair payload.
    ApplyRepair(RepairBlocks),
    /// Request the was-available set.
    GetW,
    /// Replace the was-available set.
    SetW(BTreeSet<SiteId>),
    /// Add one member to the was-available set.
    AddW(SiteId),
    /// Stop serving and exit.
    Shutdown,
    /// Fault injection: install a block but leave it in the broken on-disk
    /// state the fault describes (crash mid-install).
    ApplyWriteFaulty(BlockIndex, VersionNumber, BlockData, StorageFault),
    /// Fault injection: run the restart-time integrity scrub.
    Scrub,
    /// Request the site's votes for a whole run of blocks in one frame.
    VoteMany(Vec<BlockIndex>),
    /// Install a batch of blocks at their versions (each if newer) in one
    /// frame. Same payload shape as [`WireRequest::ApplyRepair`].
    ApplyWriteMany(RepairBlocks),
    /// Read a run of blocks off the local disk in one frame.
    ReadLocalMany(Vec<BlockIndex>),
    /// A trace envelope: the inner request plus the coordinator's causal
    /// identifiers, so the serving site's phase spans stitch into the
    /// coordinator's trace tree. Strictly optional — an untraced peer never
    /// sees this tag (the coordinator only wraps frames after wire tracing
    /// is switched on, and falls back to bare frames when a peer rejects
    /// the envelope), so the format stays backward-compatible.
    Traced {
        /// The coordinator's trace id.
        trace_id: u64,
        /// The span the remote work should be parented under.
        parent_span: u64,
        /// The request being carried (never itself `Traced`).
        inner: Box<WireRequest>,
    },
    /// Fetch a block with its version to serve a read lease. Same payload
    /// and reply shape as [`WireRequest::Fetch`], but a distinct tag so the
    /// chaos suite can fault lease validation without touching quorum
    /// reads.
    FetchLease(BlockIndex),
    /// A multiplexing envelope: the inner request plus a per-connection
    /// request id. The server echoes the id on the matching
    /// [`WireResponse::Mux`] reply, which is what lets a coordinator keep a
    /// window of requests in flight on one connection and demultiplex the
    /// replies by id instead of by arrival order.
    Mux {
        /// Per-connection request id, echoed on the reply.
        id: u64,
        /// The request being carried (never itself `Mux` or `Traced`).
        inner: Box<WireRequest>,
    },
}

/// A site's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireResponse {
    /// Acknowledgement with no payload.
    Ack,
    /// A version number.
    Version(VersionNumber),
    /// A block with its version.
    Block(VersionNumber, BlockData),
    /// Raw block data.
    Data(BlockData),
    /// A version vector.
    Vector(VersionVector),
    /// A repair payload.
    Payload(VersionVector, RepairBlocks),
    /// A was-available set.
    W(BTreeSet<SiteId>),
    /// A plain count (e.g. blocks reset by a scrub).
    Count(u64),
    /// Votes for a batch of blocks, in request order.
    Versions(Vec<VersionNumber>),
    /// Raw data for a batch of blocks, in request order.
    DataMany(Vec<BlockData>),
    /// A multiplexed reply: the inner response tagged with the id of the
    /// [`WireRequest::Mux`] envelope it answers.
    Mux {
        /// The request id this reply answers.
        id: u64,
        /// The response being carried (never itself `Mux`).
        inner: Box<WireResponse>,
    },
}

/// A malformed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn bad(what: &str) -> DecodeError {
    DecodeError(what.to_string())
}

fn need(raw: &[u8], bytes: usize, what: &str) -> Result<(), DecodeError> {
    if raw.len() < bytes {
        Err(bad(what))
    } else {
        Ok(())
    }
}

fn put_data(buf: &mut Vec<u8>, data: &BlockData) {
    buf.put_u32_le(data.len() as u32);
    buf.put_slice(data.as_slice());
}

fn get_data(raw: &mut &[u8]) -> Result<BlockData, DecodeError> {
    need(raw, 4, "data length")?;
    let len = raw.get_u32_le() as usize;
    need(raw, len, "data body")?;
    let mut body = vec![0u8; len];
    raw.copy_to_slice(&mut body);
    Ok(BlockData::from(body))
}

fn put_vv(buf: &mut Vec<u8>, vv: &VersionVector) {
    buf.put_u64_le(vv.len() as u64);
    for (_, v) in vv.iter() {
        buf.put_u64_le(v.as_u64());
    }
}

fn get_vv(raw: &mut &[u8]) -> Result<VersionVector, DecodeError> {
    need(raw, 8, "vector length")?;
    let len = raw.get_u64_le() as usize;
    need(
        raw,
        len.checked_mul(8).ok_or_else(|| bad("vector overflow"))?,
        "vector body",
    )?;
    Ok((0..len)
        .map(|_| VersionNumber::new(raw.get_u64_le()))
        .collect())
}

fn put_blocks(buf: &mut Vec<u8>, blocks: &RepairBlocks) {
    buf.put_u32_le(blocks.len() as u32);
    for (k, v, data) in blocks {
        buf.put_u64_le(k.as_u64());
        buf.put_u64_le(v.as_u64());
        put_data(buf, data);
    }
}

fn get_blocks(raw: &mut &[u8]) -> Result<RepairBlocks, DecodeError> {
    need(raw, 4, "block count")?;
    let count = raw.get_u32_le() as usize;
    let mut out = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        need(raw, 16, "block header")?;
        let k = BlockIndex::new(raw.get_u64_le());
        let v = VersionNumber::new(raw.get_u64_le());
        out.push((k, v, get_data(raw)?));
    }
    Ok(out)
}

fn put_sites(buf: &mut Vec<u8>, sites: &BTreeSet<SiteId>) {
    buf.put_u32_le(sites.len() as u32);
    for s in sites {
        buf.put_u32_le(s.as_u32());
    }
}

fn get_sites(raw: &mut &[u8]) -> Result<BTreeSet<SiteId>, DecodeError> {
    need(raw, 4, "site count")?;
    let count = raw.get_u32_le() as usize;
    need(
        raw,
        count.checked_mul(4).ok_or_else(|| bad("site overflow"))?,
        "site body",
    )?;
    Ok((0..count).map(|_| SiteId::new(raw.get_u32_le())).collect())
}

impl WireRequest {
    /// Serializes the request.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            WireRequest::Probe => buf.put_u8(0),
            WireRequest::Vote(k) => {
                buf.put_u8(1);
                buf.put_u64_le(k.as_u64());
            }
            WireRequest::Fetch(k) => {
                buf.put_u8(2);
                buf.put_u64_le(k.as_u64());
            }
            WireRequest::ApplyWrite(k, v, data) => {
                buf.put_u8(3);
                buf.put_u64_le(k.as_u64());
                buf.put_u64_le(v.as_u64());
                put_data(&mut buf, data);
            }
            WireRequest::ReadLocal(k) => {
                buf.put_u8(4);
                buf.put_u64_le(k.as_u64());
            }
            WireRequest::VersionVector => buf.put_u8(5),
            WireRequest::RepairPayload(vv) => {
                buf.put_u8(6);
                put_vv(&mut buf, vv);
            }
            WireRequest::ApplyRepair(blocks) => {
                buf.put_u8(7);
                put_blocks(&mut buf, blocks);
            }
            WireRequest::GetW => buf.put_u8(8),
            WireRequest::SetW(w) => {
                buf.put_u8(9);
                put_sites(&mut buf, w);
            }
            WireRequest::AddW(s) => {
                buf.put_u8(10);
                buf.put_u32_le(s.as_u32());
            }
            WireRequest::Shutdown => buf.put_u8(11),
            WireRequest::ApplyWriteFaulty(k, v, data, fault) => {
                buf.put_u8(12);
                buf.put_u64_le(k.as_u64());
                buf.put_u64_le(v.as_u64());
                put_data(&mut buf, data);
                match fault {
                    StorageFault::Torn { keep } => {
                        buf.put_u8(0);
                        buf.put_u64_le(*keep as u64);
                    }
                    StorageFault::StaleVersion => buf.put_u8(1),
                    StorageFault::WalTorn { keep } => {
                        buf.put_u8(2);
                        buf.put_u64_le(*keep as u64);
                    }
                }
            }
            WireRequest::Scrub => buf.put_u8(13),
            WireRequest::VoteMany(ks) => {
                buf.put_u8(14);
                buf.put_u32_le(ks.len() as u32);
                for k in ks {
                    buf.put_u64_le(k.as_u64());
                }
            }
            WireRequest::ApplyWriteMany(blocks) => {
                buf.put_u8(15);
                put_blocks(&mut buf, blocks);
            }
            WireRequest::ReadLocalMany(ks) => {
                buf.put_u8(16);
                buf.put_u32_le(ks.len() as u32);
                for k in ks {
                    buf.put_u64_le(k.as_u64());
                }
            }
            WireRequest::Traced {
                trace_id,
                parent_span,
                inner,
            } => {
                buf.put_u8(17);
                buf.put_u64_le(*trace_id);
                buf.put_u64_le(*parent_span);
                buf.extend_from_slice(&inner.encode());
            }
            WireRequest::FetchLease(k) => {
                buf.put_u8(18);
                buf.put_u64_le(k.as_u64());
            }
            WireRequest::Mux { id, inner } => {
                buf.put_u8(19);
                buf.put_u64_le(*id);
                buf.extend_from_slice(&inner.encode());
            }
        }
        buf
    }

    /// Parses a request frame.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncation, trailing garbage, or an unknown tag.
    pub fn decode(mut raw: &[u8]) -> Result<WireRequest, DecodeError> {
        need(raw, 1, "request tag")?;
        let tag = raw.get_u8();
        let request = match tag {
            0 => WireRequest::Probe,
            1 | 2 | 4 => {
                need(raw, 8, "block index")?;
                let k = BlockIndex::new(raw.get_u64_le());
                match tag {
                    1 => WireRequest::Vote(k),
                    2 => WireRequest::Fetch(k),
                    _ => WireRequest::ReadLocal(k),
                }
            }
            3 => {
                need(raw, 16, "write header")?;
                let k = BlockIndex::new(raw.get_u64_le());
                let v = VersionNumber::new(raw.get_u64_le());
                WireRequest::ApplyWrite(k, v, get_data(&mut raw)?)
            }
            5 => WireRequest::VersionVector,
            6 => WireRequest::RepairPayload(get_vv(&mut raw)?),
            7 => WireRequest::ApplyRepair(get_blocks(&mut raw)?),
            8 => WireRequest::GetW,
            9 => WireRequest::SetW(get_sites(&mut raw)?),
            10 => {
                need(raw, 4, "site id")?;
                WireRequest::AddW(SiteId::new(raw.get_u32_le()))
            }
            11 => WireRequest::Shutdown,
            12 => {
                need(raw, 16, "write header")?;
                let k = BlockIndex::new(raw.get_u64_le());
                let v = VersionNumber::new(raw.get_u64_le());
                let data = get_data(&mut raw)?;
                need(raw, 1, "fault tag")?;
                let fault = match raw.get_u8() {
                    0 => {
                        need(raw, 8, "torn keep")?;
                        StorageFault::Torn {
                            keep: raw.get_u64_le() as usize,
                        }
                    }
                    1 => StorageFault::StaleVersion,
                    2 => {
                        need(raw, 8, "wal-torn keep")?;
                        StorageFault::WalTorn {
                            keep: raw.get_u64_le() as usize,
                        }
                    }
                    other => return Err(bad(&format!("unknown fault tag {other}"))),
                };
                WireRequest::ApplyWriteFaulty(k, v, data, fault)
            }
            13 => WireRequest::Scrub,
            14 => {
                need(raw, 4, "index count")?;
                let count = raw.get_u32_le() as usize;
                need(
                    raw,
                    count.checked_mul(8).ok_or_else(|| bad("index overflow"))?,
                    "index body",
                )?;
                WireRequest::VoteMany(
                    (0..count)
                        .map(|_| BlockIndex::new(raw.get_u64_le()))
                        .collect(),
                )
            }
            15 => WireRequest::ApplyWriteMany(get_blocks(&mut raw)?),
            17 => {
                need(raw, 16, "trace envelope")?;
                let trace_id = raw.get_u64_le();
                let parent_span = raw.get_u64_le();
                // The inner decode consumes the remainder and performs its
                // own trailing-bytes check, so return directly.
                let inner = WireRequest::decode(raw)?;
                if matches!(inner, WireRequest::Traced { .. }) {
                    return Err(bad("nested trace envelope"));
                }
                return Ok(WireRequest::Traced {
                    trace_id,
                    parent_span,
                    inner: Box::new(inner),
                });
            }
            16 => {
                need(raw, 4, "index count")?;
                let count = raw.get_u32_le() as usize;
                need(
                    raw,
                    count.checked_mul(8).ok_or_else(|| bad("index overflow"))?,
                    "index body",
                )?;
                WireRequest::ReadLocalMany(
                    (0..count)
                        .map(|_| BlockIndex::new(raw.get_u64_le()))
                        .collect(),
                )
            }
            18 => {
                need(raw, 8, "block index")?;
                WireRequest::FetchLease(BlockIndex::new(raw.get_u64_le()))
            }
            19 => {
                need(raw, 8, "mux envelope")?;
                let id = raw.get_u64_le();
                // The inner decode consumes the remainder and performs its
                // own trailing-bytes check, so return directly.
                let inner = WireRequest::decode(raw)?;
                if matches!(inner, WireRequest::Mux { .. } | WireRequest::Traced { .. }) {
                    return Err(bad("nested mux envelope"));
                }
                return Ok(WireRequest::Mux {
                    id,
                    inner: Box::new(inner),
                });
            }
            other => return Err(bad(&format!("unknown request tag {other}"))),
        };
        if raw.has_remaining() {
            return Err(bad("trailing bytes after request"));
        }
        Ok(request)
    }
}

impl WireResponse {
    /// Serializes the response.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            WireResponse::Ack => buf.put_u8(0),
            WireResponse::Version(v) => {
                buf.put_u8(1);
                buf.put_u64_le(v.as_u64());
            }
            WireResponse::Block(v, data) => {
                buf.put_u8(2);
                buf.put_u64_le(v.as_u64());
                put_data(&mut buf, data);
            }
            WireResponse::Data(data) => {
                buf.put_u8(3);
                put_data(&mut buf, data);
            }
            WireResponse::Vector(vv) => {
                buf.put_u8(4);
                put_vv(&mut buf, vv);
            }
            WireResponse::Payload(vv, blocks) => {
                buf.put_u8(5);
                put_vv(&mut buf, vv);
                put_blocks(&mut buf, blocks);
            }
            WireResponse::W(w) => {
                buf.put_u8(6);
                put_sites(&mut buf, w);
            }
            WireResponse::Count(n) => {
                buf.put_u8(7);
                buf.put_u64_le(*n);
            }
            WireResponse::Versions(vs) => {
                buf.put_u8(8);
                buf.put_u32_le(vs.len() as u32);
                for v in vs {
                    buf.put_u64_le(v.as_u64());
                }
            }
            WireResponse::DataMany(ds) => {
                buf.put_u8(9);
                buf.put_u32_le(ds.len() as u32);
                for d in ds {
                    put_data(&mut buf, d);
                }
            }
            WireResponse::Mux { id, inner } => {
                buf.put_u8(10);
                buf.put_u64_le(*id);
                buf.extend_from_slice(&inner.encode());
            }
        }
        buf
    }

    /// Parses a response frame.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncation, trailing garbage, or an unknown tag.
    pub fn decode(mut raw: &[u8]) -> Result<WireResponse, DecodeError> {
        need(raw, 1, "response tag")?;
        let tag = raw.get_u8();
        let response = match tag {
            0 => WireResponse::Ack,
            1 => {
                need(raw, 8, "version")?;
                WireResponse::Version(VersionNumber::new(raw.get_u64_le()))
            }
            2 => {
                need(raw, 8, "version")?;
                let v = VersionNumber::new(raw.get_u64_le());
                WireResponse::Block(v, get_data(&mut raw)?)
            }
            3 => WireResponse::Data(get_data(&mut raw)?),
            4 => WireResponse::Vector(get_vv(&mut raw)?),
            5 => {
                let vv = get_vv(&mut raw)?;
                WireResponse::Payload(vv, get_blocks(&mut raw)?)
            }
            6 => WireResponse::W(get_sites(&mut raw)?),
            7 => {
                need(raw, 8, "count")?;
                WireResponse::Count(raw.get_u64_le())
            }
            8 => {
                need(raw, 4, "version count")?;
                let count = raw.get_u32_le() as usize;
                need(
                    raw,
                    count
                        .checked_mul(8)
                        .ok_or_else(|| bad("version overflow"))?,
                    "version body",
                )?;
                WireResponse::Versions(
                    (0..count)
                        .map(|_| VersionNumber::new(raw.get_u64_le()))
                        .collect(),
                )
            }
            9 => {
                need(raw, 4, "data count")?;
                let count = raw.get_u32_le() as usize;
                let mut out = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    out.push(get_data(&mut raw)?);
                }
                WireResponse::DataMany(out)
            }
            10 => {
                need(raw, 8, "mux envelope")?;
                let id = raw.get_u64_le();
                // The inner decode consumes the remainder and performs its
                // own trailing-bytes check, so return directly.
                let inner = WireResponse::decode(raw)?;
                if matches!(inner, WireResponse::Mux { .. }) {
                    return Err(bad("nested mux envelope"));
                }
                return Ok(WireResponse::Mux {
                    id,
                    inner: Box::new(inner),
                });
            }
            other => return Err(bad(&format!("unknown response tag {other}"))),
        };
        if raw.has_remaining() {
            return Err(bad("trailing bytes after response"));
        }
        Ok(response)
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// I/O errors from the writer, or `InvalidInput` for an oversized frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() as u64 > MAX_FRAME as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// I/O errors from the reader (including clean EOF as `UnexpectedEof`), or
/// `InvalidData` for an oversized length prefix.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_data() -> impl Strategy<Value = BlockData> {
        prop::collection::vec(any::<u8>(), 0..256).prop_map(BlockData::from)
    }

    fn arb_vv() -> impl Strategy<Value = VersionVector> {
        prop::collection::vec(any::<u32>(), 0..16).prop_map(|vs| {
            vs.into_iter()
                .map(|v| VersionNumber::new(v as u64))
                .collect()
        })
    }

    fn arb_sites() -> impl Strategy<Value = BTreeSet<SiteId>> {
        prop::collection::btree_set((0u32..32).prop_map(SiteId::new), 0..8)
    }

    fn arb_blocks() -> impl Strategy<Value = RepairBlocks> {
        prop::collection::vec(
            (any::<u16>(), any::<u32>(), arb_data())
                .prop_map(|(k, v, d)| (BlockIndex::new(k as u64), VersionNumber::new(v as u64), d)),
            0..8,
        )
    }

    fn arb_plain_request() -> impl Strategy<Value = WireRequest> {
        prop_oneof![
            Just(WireRequest::Probe),
            any::<u16>().prop_map(|k| WireRequest::Vote(BlockIndex::new(k as u64))),
            any::<u16>().prop_map(|k| WireRequest::Fetch(BlockIndex::new(k as u64))),
            (any::<u16>(), any::<u32>(), arb_data()).prop_map(|(k, v, d)| WireRequest::ApplyWrite(
                BlockIndex::new(k as u64),
                VersionNumber::new(v as u64),
                d
            )),
            any::<u16>().prop_map(|k| WireRequest::ReadLocal(BlockIndex::new(k as u64))),
            Just(WireRequest::VersionVector),
            arb_vv().prop_map(WireRequest::RepairPayload),
            arb_blocks().prop_map(WireRequest::ApplyRepair),
            Just(WireRequest::GetW),
            arb_sites().prop_map(WireRequest::SetW),
            (0u32..32).prop_map(|s| WireRequest::AddW(SiteId::new(s))),
            Just(WireRequest::Shutdown),
            (any::<u16>(), any::<u32>(), arb_data(), arb_fault()).prop_map(|(k, v, d, f)| {
                WireRequest::ApplyWriteFaulty(
                    BlockIndex::new(k as u64),
                    VersionNumber::new(v as u64),
                    d,
                    f,
                )
            }),
            Just(WireRequest::Scrub),
            prop::collection::vec(any::<u16>(), 0..8).prop_map(|ks| WireRequest::VoteMany(
                ks.into_iter().map(|k| BlockIndex::new(k as u64)).collect()
            )),
            arb_blocks().prop_map(WireRequest::ApplyWriteMany),
            prop::collection::vec(any::<u16>(), 0..8).prop_map(|ks| WireRequest::ReadLocalMany(
                ks.into_iter().map(|k| BlockIndex::new(k as u64)).collect()
            )),
            any::<u16>().prop_map(|k| WireRequest::FetchLease(BlockIndex::new(k as u64))),
        ]
    }

    fn arb_request() -> impl Strategy<Value = WireRequest> {
        prop_oneof![
            3 => arb_plain_request(),
            1 => (any::<u64>(), any::<u64>(), arb_plain_request()).prop_map(
                |(trace_id, parent_span, inner)| WireRequest::Traced {
                    trace_id,
                    parent_span,
                    inner: Box::new(inner),
                }
            ),
            1 => (any::<u64>(), arb_plain_request()).prop_map(|(id, inner)| WireRequest::Mux {
                id,
                inner: Box::new(inner),
            }),
        ]
    }

    fn arb_fault() -> impl Strategy<Value = StorageFault> {
        prop_oneof![
            (0usize..512).prop_map(|keep| StorageFault::Torn { keep }),
            Just(StorageFault::StaleVersion),
            (0usize..512).prop_map(|keep| StorageFault::WalTorn { keep }),
        ]
    }

    fn arb_plain_response() -> impl Strategy<Value = WireResponse> {
        prop_oneof![
            Just(WireResponse::Ack),
            any::<u32>().prop_map(|v| WireResponse::Version(VersionNumber::new(v as u64))),
            (any::<u32>(), arb_data())
                .prop_map(|(v, d)| WireResponse::Block(VersionNumber::new(v as u64), d)),
            arb_data().prop_map(WireResponse::Data),
            arb_vv().prop_map(WireResponse::Vector),
            (arb_vv(), arb_blocks()).prop_map(|(vv, b)| WireResponse::Payload(vv, b)),
            arb_sites().prop_map(WireResponse::W),
            any::<u64>().prop_map(WireResponse::Count),
            prop::collection::vec(any::<u32>(), 0..8).prop_map(|vs| WireResponse::Versions(
                vs.into_iter()
                    .map(|v| VersionNumber::new(v as u64))
                    .collect()
            )),
            prop::collection::vec(arb_data(), 0..8).prop_map(WireResponse::DataMany),
        ]
    }

    fn arb_response() -> impl Strategy<Value = WireResponse> {
        prop_oneof![
            3 => arb_plain_response(),
            1 => (any::<u64>(), arb_plain_response()).prop_map(|(id, inner)| WireResponse::Mux {
                id,
                inner: Box::new(inner),
            }),
        ]
    }

    proptest! {
        #[test]
        fn request_roundtrip(req in arb_request()) {
            let encoded = req.encode();
            prop_assert_eq!(WireRequest::decode(&encoded).unwrap(), req);
        }

        #[test]
        fn response_roundtrip(resp in arb_response()) {
            let encoded = resp.encode();
            prop_assert_eq!(WireResponse::decode(&encoded).unwrap(), resp);
        }

        #[test]
        fn truncated_frames_never_panic(req in arb_request(), cut in 0usize..64) {
            let encoded = req.encode();
            if cut < encoded.len() {
                // Any prefix must error or decode to something — never panic.
                let _ = WireRequest::decode(&encoded[..cut]);
            }
        }

        #[test]
        fn random_bytes_never_panic(raw in prop::collection::vec(any::<u8>(), 0..128)) {
            let _ = WireRequest::decode(&raw);
            let _ = WireResponse::decode(&raw);
        }
    }

    #[test]
    fn frame_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
        assert!(
            read_frame(&mut cursor).is_err(),
            "clean EOF surfaces as error"
        );
    }

    #[test]
    fn oversized_frames_rejected_both_ways() {
        let huge = (MAX_FRAME + 1).to_le_bytes();
        let mut cursor = &huge[..];
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut encoded = WireRequest::Probe.encode();
        encoded.push(0xFF);
        assert!(WireRequest::decode(&encoded).is_err());
    }

    #[test]
    fn traced_envelope_roundtrips_and_rejects_nesting() {
        let inner = WireRequest::Vote(BlockIndex::new(7));
        let traced = WireRequest::Traced {
            trace_id: u64::MAX,
            parent_span: 42,
            inner: Box::new(inner.clone()),
        };
        let encoded = traced.encode();
        assert_eq!(WireRequest::decode(&encoded).unwrap(), traced);

        // A traced frame is exactly 17 bytes of envelope plus the inner
        // frame — an untraced peer reads tag 17 and rejects it cleanly.
        assert_eq!(encoded.len(), 17 + inner.encode().len());
        assert_eq!(encoded[0], 17);

        let nested = WireRequest::Traced {
            trace_id: 1,
            parent_span: 2,
            inner: Box::new(traced),
        };
        let err = WireRequest::decode(&nested.encode()).unwrap_err();
        assert!(err.0.contains("nested"), "unexpected error: {err}");

        // Trailing garbage after the inner frame is still rejected.
        let mut trailing = encoded;
        trailing.push(0xAB);
        assert!(WireRequest::decode(&trailing).is_err());
    }

    #[test]
    fn mux_envelope_roundtrips_and_rejects_nesting() {
        let inner = WireRequest::FetchLease(BlockIndex::new(3));
        let mux = WireRequest::Mux {
            id: 99,
            inner: Box::new(inner.clone()),
        };
        let encoded = mux.encode();
        assert_eq!(WireRequest::decode(&encoded).unwrap(), mux);
        // Tag byte + 8-byte id + the inner frame, nothing more.
        assert_eq!(encoded.len(), 9 + inner.encode().len());
        assert_eq!(encoded[0], 19);

        let nested = WireRequest::Mux {
            id: 1,
            inner: Box::new(mux),
        };
        assert!(WireRequest::decode(&nested.encode()).is_err());

        let reply = WireResponse::Mux {
            id: 99,
            inner: Box::new(WireResponse::Block(
                VersionNumber::new(4),
                BlockData::from(vec![1, 2]),
            )),
        };
        assert_eq!(WireResponse::decode(&reply.encode()).unwrap(), reply);
        let nested_reply = WireResponse::Mux {
            id: 1,
            inner: Box::new(reply),
        };
        assert!(WireResponse::decode(&nested_reply.encode()).is_err());
    }
}
