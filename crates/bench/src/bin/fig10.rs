//! Regenerates **Figure 10**: availabilities of a replicated block with
//! four available (and naive available) copies vs. eight voting copies, for
//! ρ ∈ [0, 0.20].
//!
//! ```text
//! cargo run --release -p blockrep-bench --bin fig10
//! ```

fn main() {
    blockrep_bench::report::fig10(100_000.0);
}
