//! Seeded violations: an AB-BA lock-order cycle between `forward` and
//! `backward`, and a re-acquisition of a held lock in `reenter`.

impl Pair {
    fn forward(&self) {
        let a = self.a.lock();
        let b = self.b.lock();
        *b += *a;
    }

    fn backward(&self) {
        let b = self.b.lock();
        let a = self.a.lock();
        *a += *b;
    }

    fn reenter(&self) {
        let first = self.a.lock();
        let again = self.a.lock();
        *again += *first;
    }
}
