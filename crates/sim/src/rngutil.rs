//! Random variates for the paper's stochastic model.

use crate::SimTime;
use rand::Rng;

/// An exponential distribution with the given rate, sampled by inverse
/// transform.
///
/// The paper assumes "individual site failures and individual site repairs
/// are independent events distributed according to a Poisson law": the time
/// to the next failure of an up site is `Exp(λ)` and the time to repair a
/// down site is `Exp(μ)`. Implemented here directly (rather than via an
/// external distributions crate) as `-ln(1-u)/rate`.
///
/// # Examples
///
/// ```
/// use blockrep_sim::Exponential;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(42);
/// let exp = Exponential::new(2.0);
/// let mean = (0..20_000).map(|_| exp.sample(&mut rng).as_f64()).sum::<f64>() / 20_000.0;
/// assert!((mean - 0.5).abs() < 0.02); // mean = 1/rate
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates a distribution with the given rate (events per time unit).
    ///
    /// # Panics
    ///
    /// Panics unless the rate is finite and strictly positive.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential rate must be finite and positive, got {rate}"
        );
        Exponential { rate }
    }

    /// The rate parameter.
    pub fn rate(self) -> f64 {
        self.rate
    }

    /// The mean inter-event time, `1/rate`.
    pub fn mean(self) -> f64 {
        1.0 / self.rate
    }

    /// Draws one inter-event time.
    pub fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> SimTime {
        // random::<f64>() is uniform on [0, 1); 1-u is in (0, 1], so the log
        // is finite and the variate nonnegative.
        let u: f64 = rng.random();
        SimTime::new(-(1.0 - u).ln() / self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_nonnegative_and_finite() {
        let mut rng = StdRng::seed_from_u64(1);
        let exp = Exponential::new(0.05);
        for _ in 0..10_000 {
            let t = exp.sample(&mut rng).as_f64();
            assert!(t.is_finite() && t >= 0.0);
        }
    }

    #[test]
    fn empirical_mean_matches_rate() {
        let mut rng = StdRng::seed_from_u64(2);
        for rate in [0.05, 1.0, 20.0] {
            let exp = Exponential::new(rate);
            let n = 50_000;
            let mean = (0..n).map(|_| exp.sample(&mut rng).as_f64()).sum::<f64>() / n as f64;
            assert!(
                (mean - 1.0 / rate).abs() < 0.03 / rate,
                "rate {rate}: measured mean {mean}"
            );
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let exp = Exponential::new(1.0);
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..10).map(|_| exp.sample(&mut rng).as_f64()).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..10).map(|_| exp.sample(&mut rng).as_f64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_rate_rejected() {
        let _ = Exponential::new(0.0);
    }
}
