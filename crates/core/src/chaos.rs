//! Seeded chaos testing: random fault schedules replayed on all three
//! runtimes, checked against a one-copy oracle and against each other.
//!
//! A [`ChaosScript`] is a seeded sequence of workload steps
//! ([`Action`](crate::scenario::Action)) with [`FaultKind`]s attached to
//! individual remote exchanges. [`run_seed`] replays the same script on the
//! deterministic [`Cluster`], the threaded [`LiveCluster`] and the socket
//! [`TcpCluster`], asserting
//!
//! 1. **one-copy admissibility** — every successful read returns a value
//!    the fault history admits (exactly the last write for blocks with a
//!    clean history, a member of the block's write history while crash
//!    faults are unresolved), and never a byte-mix of two writes; and
//! 2. **runtime parity** — the three runtimes produce the same per-step
//!    results, the same final replica fingerprints and the same §5 traffic.
//!
//! On failure, [`run_seed`] shrinks the script to a locally minimal failing
//! schedule (delta-debugging over steps, then over individual faults) and
//! reports it, so a red run is immediately replayable.
//!
//! # Fault model
//!
//! Crash faults (coordinator/target crashes, torn and stale-version
//! installs) are scheduled for every scheme: they are ordinary fail-stop
//! events of the paper's model, merely aimed at the worst instant. Pure
//! message faults (drop, delay) are scheduled only for voting, which is
//! designed to tolerate them; the available copy schemes *assume* a
//! reliable network (§3.2), and injecting silent message loss there
//! manufactures states the paper excludes, producing false alarms rather
//! than bugs. Duplication is benign everywhere (installs are idempotent)
//! and is scheduled for every scheme. With read leases enabled
//! ([`generate_with`]), part of the stale-version mass becomes
//! [`FaultKind::StaleLease`] — a lease holder answering a one-round
//! offloaded read from before the last write — which the version check in
//! the lease path must always catch (benign by construction).

use crate::backend::Backend;
use crate::fault::{FaultKind, FaultPlan, FaultSpec, FaultyBackend, OpReport};
use crate::scenario::Action;
use crate::{protocol, Cluster, ClusterOptions, LiveCluster, TcpCluster};
use blockrep_net::{DeliveryMode, TrafficSnapshot};
use blockrep_types::{BlockData, BlockIndex, DeviceConfig, Scheme, SiteId, SiteState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::panic::catch_unwind;

/// One chaos step: a workload action plus the faults scheduled on its
/// remote exchanges, as `(exchange index, kind)` pairs.
///
/// Faults ride on their step (rather than in a flat schedule) so that
/// shrinking can remove steps without renumbering the survivors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosStep {
    /// The workload action.
    pub action: Action,
    /// Faults to fire on this step's remote exchanges.
    pub faults: Vec<(u64, FaultKind)>,
}

/// A generated chaos script: a device configuration and the steps to
/// replay on it.
#[derive(Debug, Clone)]
pub struct ChaosScript {
    /// The device configuration every runtime is built from.
    pub cfg: DeviceConfig,
    /// The steps, replayed in order.
    pub steps: Vec<ChaosStep>,
}

/// A runtime the chaos runner can drive: a [`Backend`] plus the hooks the
/// runner needs to make a mid-operation crash real (the live cluster must
/// also take the site's link down; the other runtimes derive reachability
/// from site state and need nothing extra).
pub trait ChaosRuntime: Backend {
    /// The runtime's name in parity reports.
    fn runtime_name(&self) -> &'static str;
    /// Called after `protocol::fail` when the runner fail-stops a site.
    fn on_fail(&self, _s: SiteId) {}
    /// Called before `protocol::repair` when the runner restarts a site.
    fn on_restart(&self, _s: SiteId) {}
}

impl ChaosRuntime for Cluster {
    fn runtime_name(&self) -> &'static str {
        "deterministic"
    }
}

impl ChaosRuntime for LiveCluster {
    fn runtime_name(&self) -> &'static str {
        "live"
    }
    fn on_fail(&self, s: SiteId) {
        self.set_link(s, false);
    }
    fn on_restart(&self, s: SiteId) {
        self.set_link(s, true);
    }
}

impl ChaosRuntime for TcpCluster {
    fn runtime_name(&self) -> &'static str {
        "tcp"
    }
}

/// What one runtime produced while replaying a script: a per-step log
/// (results, fired faults, site states) ending in a full replica
/// fingerprint, plus the final traffic counts. Two runs are equivalent iff
/// all fields are equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// One line per step, then one fingerprint line per site.
    pub log: Vec<String>,
    /// Final §5 traffic counts.
    pub traffic: TrafficSnapshot,
    /// How many scheduled faults actually fired.
    pub faults_fired: u64,
    /// Successful reads checked against the oracle.
    pub reads_checked: u64,
}

/// Summary of a passing seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosReport {
    /// Steps replayed (per runtime).
    pub steps: usize,
    /// Faults that fired (per runtime).
    pub faults_fired: u64,
    /// Successful reads checked against the oracle (per runtime).
    pub reads_checked: u64,
}

/// A failing seed, shrunk to a locally minimal schedule.
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    /// The seed that failed.
    pub seed: u64,
    /// The scheme under test.
    pub scheme: Scheme,
    /// Whether the failing run used journaled devices.
    pub journaled: bool,
    /// Whether the failing run had read leases enabled.
    pub leases: bool,
    /// The (shrunk) failing schedule.
    pub steps: Vec<ChaosStep>,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "chaos seed {} failed under {} ({} steps after shrinking):",
            self.seed,
            self.scheme,
            self.steps.len()
        )?;
        writeln!(f, "{}", format_schedule(&self.steps))?;
        write!(f, "{}", self.detail)
    }
}

impl std::error::Error for ChaosFailure {}

/// Renders a schedule as one line per step, for failure reports.
pub fn format_schedule(steps: &[ChaosStep]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, step) in steps.iter().enumerate() {
        let _ = write!(out, "  #{i:<3} {:?}", step.action);
        for &(x, kind) in &step.faults {
            let _ = write!(out, "  [x{x}:{kind}]");
        }
        out.push('\n');
    }
    out
}

/// Deterministically generates the chaos script for `(seed, scheme)`.
///
/// The geometry (3–5 sites, 2–4 blocks of 8 bytes) and the action mix are
/// drawn from the seed; faults are attached mostly to writes, with a few on
/// reads and repairs. Fill bytes are always nonzero so a zeroed block is
/// unambiguously "never written / scrubbed".
pub fn generate(seed: u64, scheme: Scheme, len: usize) -> ChaosScript {
    generate_with(seed, scheme, len, false)
}

/// Like [`generate`], optionally drawing lease-targeted faults. With
/// `leases == false` the output is byte-identical to [`generate`] — the
/// flag only re-labels part of the stale-version probability mass as
/// [`FaultKind::StaleLease`] (same number of RNG draws), so a leased and an
/// unleased run of the same seed replay the same workload shape.
pub fn generate_with(seed: u64, scheme: Scheme, len: usize, leases: bool) -> ChaosScript {
    let mut rng = StdRng::seed_from_u64(seed ^ ((scheme as u64 + 1) << 32));
    let sites = rng.random_range(3usize..=5);
    let blocks = rng.random_range(2usize..=4);
    let cfg = DeviceConfig::builder(scheme)
        .sites(sites)
        .num_blocks(blocks as u64)
        .block_size(8)
        .build()
        .expect("chaos geometry is always valid");
    let site = |rng: &mut StdRng| SiteId::new(rng.random_range(0..sites as u32));
    let block = |rng: &mut StdRng| BlockIndex::new(rng.random_range(0..blocks as u64));
    let mut steps = Vec::with_capacity(len);
    for _ in 0..len {
        let action = match rng.random_range(0u32..100) {
            0..=44 => Action::Write {
                origin: site(&mut rng),
                block: block(&mut rng),
                fill: rng.random_range(1u8..=255),
            },
            45..=69 => Action::Read {
                origin: site(&mut rng),
                block: block(&mut rng),
            },
            70..=84 => Action::Fail(site(&mut rng)),
            _ => Action::Repair(site(&mut rng)),
        };
        let fault_p = match action {
            Action::Write { .. } => 0.35,
            Action::Read { .. } | Action::Repair(_) => 0.15,
            Action::Fail(_) => 0.0, // fail-stop steps have no exchanges
        };
        let mut faults: Vec<(u64, FaultKind)> = Vec::new();
        if fault_p > 0.0 && rng.random_bool(fault_p) {
            let n = rng.random_range(1usize..=2);
            for _ in 0..n {
                // Exchanges per op are bounded by a few per remote site.
                let x = rng.random_range(0..3 * sites as u64);
                let kind = random_kind(&mut rng, scheme, leases);
                if !faults.iter().any(|&(fx, _)| fx == x) {
                    faults.push((x, kind));
                }
            }
        }
        steps.push(ChaosStep { action, faults });
    }
    ChaosScript { cfg, steps }
}

fn random_kind(rng: &mut StdRng, scheme: Scheme, leases: bool) -> FaultKind {
    let message_faults_ok = scheme == Scheme::Voting;
    loop {
        let kind = match rng.random_range(0u32..100) {
            0..=19 => FaultKind::DropMessage,
            20..=29 => FaultKind::DelayMessage,
            30..=39 => FaultKind::DuplicateMessage,
            40..=59 => FaultKind::CrashCoordinator,
            60..=79 => FaultKind::CrashTarget,
            80..=89 => FaultKind::TornWrite {
                keep: rng.random_range(1usize..8),
            },
            // In leased mode, half the stale-version mass targets lease
            // validation instead (same draw count either way, so leased and
            // unleased generation consume the RNG identically).
            90..=94 if leases => FaultKind::StaleLease,
            _ => FaultKind::StaleVersion,
        };
        let in_model =
            message_faults_ok || !matches!(kind, FaultKind::DropMessage | FaultKind::DelayMessage);
        if in_model {
            return kind;
        }
    }
}

/// The per-block one-copy oracle.
///
/// `Exact(f)` asserts reads return exactly fill `f` (`None` = zeroes);
/// `Tainted` admits any member of the block's write history (plus zeroes) —
/// the strongest sound claim while interrupted writes are unresolved.
#[derive(Debug, Clone, PartialEq, Eq)]
enum BlockOracle {
    Exact(Option<u8>),
    Tainted,
}

struct Oracle {
    scheme: Scheme,
    blocks: Vec<BlockOracle>,
    /// Every fill ever handed to a write of this block, plus `None`
    /// (zeroes: the formatted state, also the post-scrub state).
    seen: Vec<BTreeSet<Option<u8>>>,
    /// Whether an interrupted write may have left sites with *incomparable*
    /// version vectors. Voting never cares — its reads are per-block quorum
    /// decisions. The available copy schemes repair a whole site from a
    /// single "most current" source, which is only guaranteed current while
    /// the vectors form a dominance chain; once the chain may be broken, no
    /// block can be certified `Exact` for them until all replicas agree
    /// again.
    chain_broken: bool,
    /// Whether every site runs a write-ahead journal
    /// ([`DeviceConfig::journaled`]). Journaled sites replay the journal on
    /// restart, so a storage fault can never revert a block to zeroes and
    /// the admissible history collapses at every point of full agreement —
    /// the oracle certifies the strictly stronger durable-by-§3.2 contract.
    journaled: bool,
}

impl Oracle {
    fn new(scheme: Scheme, blocks: usize, journaled: bool) -> Oracle {
        Oracle {
            scheme,
            blocks: vec![BlockOracle::Exact(None); blocks],
            seen: vec![BTreeSet::from([None]); blocks],
            chain_broken: false,
            journaled,
        }
    }

    fn record_write(&mut self, b: usize, fill: u8, ok: bool, report: &OpReport) {
        self.seen[b].insert(Some(fill));
        let effective = report.fired.iter().any(|f| !f.kind.is_benign());
        if effective {
            if report.fired.iter().any(|f| f.kind.is_storage()) && !self.journaled {
                // The torn/stale block is scrubbed to zeroes on restart.
                // A journaled site instead replays the write from its
                // journal after the scrub, so zeroes never become
                // admissible there.
                self.seen[b].insert(None);
            }
            self.blocks[b] = BlockOracle::Tainted;
            if self.scheme != Scheme::Voting {
                self.chain_broken = true;
                for blk in &mut self.blocks {
                    *blk = BlockOracle::Tainted;
                }
            }
        } else if ok {
            self.blocks[b] = if self.chain_broken {
                BlockOracle::Tainted
            } else {
                BlockOracle::Exact(Some(fill))
            };
        }
    }

    /// Checks a successful read of block `b` that returned `data`.
    fn check_read(&self, op: usize, b: usize, data: &BlockData) -> Result<(), String> {
        let bytes = data.as_slice();
        let first = bytes.first().copied().unwrap_or(0);
        if !bytes.iter().all(|&x| x == first) {
            return Err(format!(
                "op {op}: read of block {b} returned mixed bytes {bytes:02x?} — \
                 a torn write leaked into a served read"
            ));
        }
        let observed = if first == 0 { None } else { Some(first) };
        match &self.blocks[b] {
            BlockOracle::Exact(f) => {
                if observed != *f {
                    return Err(format!(
                        "op {op}: one-copy violation on block {b}: read {observed:?}, \
                         oracle says exactly {f:?}"
                    ));
                }
            }
            BlockOracle::Tainted => {
                if !self.seen[b].contains(&observed) {
                    return Err(format!(
                        "op {op}: read of block {b} returned {observed:?}, which was \
                         never written (history {:?})",
                        self.seen[b]
                    ));
                }
            }
        }
        Ok(())
    }

    fn any_tainted(&self) -> bool {
        self.blocks.contains(&BlockOracle::Tainted)
    }

    /// If every site agrees on every block (same version, same uniform
    /// data), the replicas are indistinguishable from a fresh device plus
    /// clean writes: re-certify everything `Exact` and re-arm the chain.
    fn try_narrow<R: ChaosRuntime>(&mut self, rt: &R) {
        if !self.any_tainted() {
            return;
        }
        let cfg = rt.config();
        let mut exact = Vec::with_capacity(self.blocks.len());
        for b in 0..self.blocks.len() {
            let k = BlockIndex::new(b as u64);
            let mut agreed: Option<(blockrep_types::VersionNumber, BlockData)> = None;
            for s in cfg.site_ids() {
                let Some(cur) = rt.fetch_block(s, s, k) else {
                    return;
                };
                match &agreed {
                    None => agreed = Some(cur),
                    Some(prev) if *prev == cur => {}
                    Some(_) => return, // disagreement: taint stands
                }
            }
            let (_, data) = agreed.expect("device has at least one site");
            let bytes = data.as_slice();
            let first = bytes.first().copied().unwrap_or(0);
            if !bytes.iter().all(|&x| x == first) {
                return; // uniformly torn everywhere: keep the taint
            }
            exact.push(if first == 0 { None } else { Some(first) });
        }
        for ((blk, hist), fill) in self.blocks.iter_mut().zip(&mut self.seen).zip(exact) {
            *blk = BlockOracle::Exact(fill);
            if self.journaled {
                // Durable-by-§3.2: journal replay is monotone in version
                // number, so once every replica agrees a block can never
                // revert past the agreed state — the admissible history
                // collapses to the point of agreement.
                hist.clear();
                hist.insert(fill);
            }
        }
        self.chain_broken = false;
    }
}

/// Certifies a **clean** (fault-free) successful write directly against
/// the scheme's replication contract, catching protocol bugs at the write
/// instead of waiting for a read to trip over them:
///
/// * voting — the sites *actually holding* the new value must carry a
///   write quorum of weight, and so must the operational sites (a write
///   that succeeds without a live write quorum is exactly the bug a
///   weakened `voting.rs` check introduces);
/// * available copy schemes — every available site must hold the value
///   ("write to all available copies" admits no exceptions).
fn certify_clean_write<R: ChaosRuntime>(
    rt: &R,
    op: usize,
    k: BlockIndex,
    fill: u8,
) -> Result<(), String> {
    let cfg = rt.config();
    let holds = |s: SiteId| {
        rt.fetch_block(s, s, k)
            .is_some_and(|(_, data)| data.as_slice().iter().all(|&x| x == fill))
    };
    match cfg.scheme() {
        Scheme::Voting => {
            let holders: Vec<SiteId> = cfg.site_ids().filter(|&s| holds(s)).collect();
            let holder_weight = crate::backend::weight_of(cfg, &holders);
            if holder_weight < cfg.write_quorum() {
                return Err(format!(
                    "op {op}: write of block {k} committed on weight {holder_weight} \
                     (sites {holders:?}), below the write quorum {}",
                    cfg.write_quorum()
                ));
            }
            let live: Vec<SiteId> = cfg
                .site_ids()
                .filter(|&s| rt.local_state(s).is_operational())
                .collect();
            let live_weight = crate::backend::weight_of(cfg, &live);
            if live_weight < cfg.write_quorum() {
                return Err(format!(
                    "op {op}: write of block {k} succeeded while only weight \
                     {live_weight} was operational — no write quorum existed"
                ));
            }
        }
        Scheme::AvailableCopy | Scheme::NaiveAvailableCopy => {
            for s in cfg.site_ids() {
                if rt.local_state(s) == SiteState::Available && !holds(s) {
                    return Err(format!(
                        "op {op}: available site {s} missed the write of block {k} \
                         (fill {fill:#04x})"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Certifies a clean successful voting read: the operational sites must
/// carry a read quorum, or the read should have been refused.
fn certify_clean_read<R: ChaosRuntime>(rt: &R, op: usize, k: BlockIndex) -> Result<(), String> {
    let cfg = rt.config();
    if cfg.scheme() != Scheme::Voting {
        return Ok(());
    }
    let live: Vec<SiteId> = cfg
        .site_ids()
        .filter(|&s| rt.local_state(s).is_operational())
        .collect();
    let live_weight = crate::backend::weight_of(cfg, &live);
    if live_weight < cfg.read_quorum() {
        return Err(format!(
            "op {op}: read of block {k} succeeded while only weight {live_weight} \
             was operational — no read quorum existed"
        ));
    }
    Ok(())
}

/// Makes the mid-operation crashes of `report` real: fail-stops each
/// crashed site through the scheme's own failure handling, in the same
/// order the runtime's `fail_site` uses.
fn finalize_crashes<R: ChaosRuntime>(rt: &R, report: &OpReport) {
    for &s in &report.crashed {
        if rt.local_state(s).is_operational() {
            protocol::fail(rt, s);
            rt.on_fail(s);
        }
    }
}

fn fired_suffix(report: &OpReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for f in &report.fired {
        let _ = write!(out, " [{f}]");
    }
    for &s in &report.crashed {
        let _ = write!(out, " +crash:{s}");
    }
    out
}

fn states_suffix<R: ChaosRuntime>(rt: &R) -> String {
    rt.config()
        .site_ids()
        .map(|s| match rt.local_state(s) {
            SiteState::Available => 'A',
            SiteState::Comatose => 'C',
            SiteState::Failed => 'F',
        })
        .collect()
}

/// Replays `steps` on one runtime, maintaining the oracle. Returns the
/// run's outcome for parity comparison, or the first oracle violation.
pub fn run_on<R: ChaosRuntime>(rt: &R, steps: &[ChaosStep]) -> Result<RunOutcome, String> {
    let cfg = rt.config().clone();
    let plan: FaultPlan = steps
        .iter()
        .enumerate()
        .flat_map(|(op, step)| {
            step.faults.iter().map(move |&(x, kind)| FaultSpec {
                op: op as u64,
                exchange: x,
                kind,
            })
        })
        .collect();
    let fb = FaultyBackend::new(rt, &plan);
    let mut oracle = Oracle::new(cfg.scheme(), cfg.num_blocks() as usize, cfg.journaled());
    let mut log = Vec::with_capacity(steps.len());
    let mut faults_fired = 0u64;
    let mut reads_checked = 0u64;
    for (op, step) in steps.iter().enumerate() {
        fb.begin_op(op as u64);
        let mut line = match step.action {
            Action::Write {
                origin,
                block,
                fill,
            } => {
                let data = BlockData::from(vec![fill; cfg.block_size()]);
                let res = protocol::write(&fb, origin, block, &data);
                let report = fb.end_op();
                finalize_crashes(rt, &report);
                oracle.record_write(block.index(), fill, res.is_ok(), &report);
                if res.is_ok() && report.fired.iter().all(|f| f.kind.is_benign()) {
                    certify_clean_write(rt, op, block, fill)?;
                }
                let outcome = match &res {
                    Ok(()) => "ok".to_string(),
                    Err(e) => format!("err({e})"),
                };
                faults_fired += report.fired.len() as u64;
                format!(
                    "#{op} write {origin} {block} fill={fill:#04x} -> {outcome}{}",
                    fired_suffix(&report)
                )
            }
            Action::Read { origin, block } => {
                let res = protocol::read(&fb, origin, block);
                let report = fb.end_op();
                finalize_crashes(rt, &report);
                let outcome = match &res {
                    Ok(data) => {
                        // A coordinator that crashed mid-read may have
                        // assembled its answer from a dead site; skip the
                        // oracle for an answer nobody received.
                        if !report.crashed.contains(&origin) {
                            oracle.check_read(op, block.index(), data)?;
                            if report.fired.iter().all(|f| f.kind.is_benign()) {
                                certify_clean_read(rt, op, block)?;
                            }
                            reads_checked += 1;
                        }
                        format!("ok({:02x?})", data.as_slice())
                    }
                    Err(e) => format!("err({e})"),
                };
                faults_fired += report.fired.len() as u64;
                format!(
                    "#{op} read {origin} {block} -> {outcome}{}",
                    fired_suffix(&report)
                )
            }
            Action::Fail(s) => {
                let _ = fb.end_op();
                let did = if rt.local_state(s).is_operational() {
                    protocol::fail(rt, s);
                    rt.on_fail(s);
                    "failed"
                } else {
                    "already-down"
                };
                format!("#{op} fail {s} -> {did}")
            }
            Action::Repair(s) => {
                let outcome = match rt.local_state(s) {
                    SiteState::Failed => {
                        rt.on_restart(s);
                        let scrubbed = rt.scrub_local(s);
                        protocol::repair(&fb, s);
                        format!("restarted scrubbed={scrubbed}")
                    }
                    SiteState::Comatose => {
                        protocol::sweep(&fb);
                        "swept".to_string()
                    }
                    SiteState::Available => "already-up".to_string(),
                };
                let report = fb.end_op();
                finalize_crashes(rt, &report);
                faults_fired += report.fired.len() as u64;
                format!("#{op} repair {s} -> {outcome}{}", fired_suffix(&report))
            }
        };
        line.push_str(" |");
        line.push_str(&states_suffix(rt));
        log.push(line);
        oracle.try_narrow(rt);
    }
    for s in cfg.site_ids() {
        use std::fmt::Write as _;
        let w = rt
            .was_available(s, s)
            .expect("a site always reports its own was-available set");
        let mut line = format!(
            "site {s}: {:?} W={:?}",
            rt.local_state(s),
            w.iter().map(|x| x.as_u32()).collect::<Vec<_>>()
        );
        for b in 0..cfg.num_blocks() {
            let k = BlockIndex::new(b);
            let (v, data) = rt
                .fetch_block(s, s, k)
                .expect("a site can always read its own disk");
            let _ = write!(line, " b{b}=v{}:{:02x?}", v.as_u64(), data.as_slice());
        }
        log.push(line);
    }
    Ok(RunOutcome {
        log,
        traffic: rt.counter().snapshot(),
        faults_fired,
        reads_checked,
    })
}

fn run_caught<T>(
    name: &'static str,
    run: impl FnOnce() -> Result<T, String> + std::panic::UnwindSafe,
) -> Result<T, String> {
    match catch_unwind(run) {
        Ok(res) => res.map_err(|e| format!("[{name}] {e}")),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(format!("[{name}] panicked: {msg}"))
        }
    }
}

/// Replays `steps` on all three runtimes and checks both the oracle and
/// cross-runtime parity. Returns the first discrepancy as an error; panics
/// in any runtime's replay are caught and reported the same way.
pub fn check(cfg: &DeviceConfig, steps: &[ChaosStep]) -> Result<ChaosReport, String> {
    check_with(cfg, steps, false)
}

/// Like [`check`], optionally enabling read leases on all three runtimes
/// before the replay — leases change *how many* messages a read costs, not
/// *what* it may return, so the oracle and the cross-runtime parity checks
/// are exactly the ones of the unleased run.
pub fn check_with(
    cfg: &DeviceConfig,
    steps: &[ChaosStep],
    leases: bool,
) -> Result<ChaosReport, String> {
    let det = run_caught("deterministic", || {
        let rt = Cluster::new(
            cfg.clone(),
            ClusterOptions {
                mode: DeliveryMode::Multicast,
            },
        );
        rt.leases().set_enabled(leases);
        run_on(&rt, steps)
    })?;
    let live = run_caught("live", || {
        let rt = LiveCluster::spawn(cfg.clone(), DeliveryMode::Multicast);
        rt.leases().set_enabled(leases);
        run_on(&rt, steps)
    })?;
    let tcp = run_caught("tcp", || {
        let rt = TcpCluster::spawn(cfg.clone(), DeliveryMode::Multicast)
            .map_err(|e| format!("tcp spawn failed: {e}"))?;
        rt.leases().set_enabled(leases);
        run_on(&rt, steps)
    })?;
    for (name, other) in [("live", &live), ("tcp", &tcp)] {
        if let Some(divergence) = diverges(&det, other) {
            return Err(format!(
                "runtime parity broken (deterministic vs {name}): {divergence}"
            ));
        }
    }
    Ok(ChaosReport {
        steps: steps.len(),
        faults_fired: det.faults_fired,
        reads_checked: det.reads_checked,
    })
}

fn diverges(a: &RunOutcome, b: &RunOutcome) -> Option<String> {
    for (i, (la, lb)) in a.log.iter().zip(&b.log).enumerate() {
        if la != lb {
            return Some(format!("log line {i}:\n  a: {la}\n  b: {lb}"));
        }
    }
    if a.log.len() != b.log.len() {
        return Some(format!("log length {} vs {}", a.log.len(), b.log.len()));
    }
    if a.faults_fired != b.faults_fired {
        return Some(format!(
            "fired fault count {} vs {}",
            a.faults_fired, b.faults_fired
        ));
    }
    if a.traffic != b.traffic {
        return Some(format!(
            "traffic counts differ:\n  a: {}\n  b: {}",
            a.traffic, b.traffic
        ));
    }
    None
}

/// Shrinks a failing schedule: delta-debugging over chunks of steps, then
/// removal of individual faults, until locally minimal. Every candidate is
/// re-checked on all three runtimes ([`check`] reports runtime panics as
/// failures, so panicking schedules shrink too).
pub fn shrink(cfg: &DeviceConfig, steps: Vec<ChaosStep>) -> Vec<ChaosStep> {
    shrink_with(cfg, steps, false)
}

/// Like [`shrink`], re-checking every candidate with read leases enabled —
/// a schedule that only fails leased must shrink under the leased replay.
pub fn shrink_with(cfg: &DeviceConfig, mut steps: Vec<ChaosStep>, leases: bool) -> Vec<ChaosStep> {
    let fails = |candidate: &[ChaosStep]| {
        !candidate.is_empty() && check_with(cfg, candidate, leases).is_err()
    };
    // Pass 1: remove chunks of steps, halving the chunk size.
    let mut chunk = steps.len().div_ceil(2).max(1);
    loop {
        let mut i = 0;
        while i < steps.len() {
            let mut candidate = steps.clone();
            candidate.drain(i..(i + chunk).min(candidate.len()));
            if fails(&candidate) {
                steps = candidate;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = chunk.div_ceil(2);
    }
    // Pass 2: drop individual faults.
    for i in 0..steps.len() {
        let mut j = 0;
        while j < steps[i].faults.len() {
            let mut candidate = steps.clone();
            candidate[i].faults.remove(j);
            if fails(&candidate) {
                steps = candidate;
            } else {
                j += 1;
            }
        }
    }
    steps
}

/// Generates, replays and cross-checks one seed; on failure, shrinks the
/// schedule and returns it for replay.
///
/// # Errors
///
/// A [`ChaosFailure`] carrying the shrunk schedule and the diagnostic of
/// the minimal failure.
pub fn run_seed(seed: u64, scheme: Scheme, len: usize) -> Result<ChaosReport, Box<ChaosFailure>> {
    run_seed_with(seed, scheme, len, false)
}

/// Like [`run_seed`], optionally flipping every site to a journaled device
/// ([`DeviceConfig::journaled`]). The flag is applied *after* generation, so
/// journaled and unjournaled runs of the same seed replay the identical
/// schedule — only the durability machinery (and the correspondingly
/// stricter oracle) differs.
///
/// # Errors
///
/// A [`ChaosFailure`] carrying the shrunk schedule and the diagnostic of
/// the minimal failure.
pub fn run_seed_with(
    seed: u64,
    scheme: Scheme,
    len: usize,
    journaled: bool,
) -> Result<ChaosReport, Box<ChaosFailure>> {
    run_seed_opts(seed, scheme, len, journaled, false)
}

/// The full-option seed runner: journaled devices and/or read leases. The
/// lease flag drives both generation (lease-targeted faults become
/// schedulable, see [`generate_with`]) and the replay (leases are switched
/// on across all three runtimes, see [`check_with`]).
///
/// # Errors
///
/// A [`ChaosFailure`] carrying the shrunk schedule and the diagnostic of
/// the minimal failure.
pub fn run_seed_opts(
    seed: u64,
    scheme: Scheme,
    len: usize,
    journaled: bool,
    leases: bool,
) -> Result<ChaosReport, Box<ChaosFailure>> {
    let mut script = generate_with(seed, scheme, len, leases);
    script.cfg.set_journaled(journaled);
    let detail = match check_with(&script.cfg, &script.steps, leases) {
        Ok(report) => return Ok(report),
        Err(detail) => detail,
    };
    let steps = shrink_with(&script.cfg, script.steps, leases);
    let detail = check_with(&script.cfg, &steps, leases)
        .err()
        .unwrap_or(detail);
    Err(Box::new(ChaosFailure {
        seed,
        scheme,
        journaled,
        leases,
        steps,
        detail,
    }))
}

/// Post-mortem flight-recorder dump for a chaos failure: replays the
/// (shrunk) minimal schedule on the deterministic runtime with tracing
/// enabled and returns the causal trace as Chrome trace-event JSON.
///
/// The geometry is regenerated from the failure's seed, so the dump replays
/// exactly the configuration that failed. A replay that panics (as the
/// original failure may well do) is caught: the dump carries every span the
/// recorder captured up to the crash, which is the whole point.
pub fn trace_failure(failure: &ChaosFailure) -> String {
    let mut script = generate_with(failure.seed, failure.scheme, 0, failure.leases);
    script.cfg.set_journaled(failure.journaled);
    trace_schedule_with(&script.cfg, &failure.steps, failure.leases)
}

/// Replays `steps` on the deterministic runtime with the flight recorder
/// armed and dumps the resulting causal trace as Chrome trace-event JSON.
/// Previous recorder contents are cleared first; the global tracing flags
/// are restored to their prior values afterwards.
pub fn trace_schedule(cfg: &DeviceConfig, steps: &[ChaosStep]) -> String {
    trace_schedule_with(cfg, steps, false)
}

/// Like [`trace_schedule`], optionally replaying with read leases enabled —
/// required to reproduce a failure that only manifests leased.
pub fn trace_schedule_with(cfg: &DeviceConfig, steps: &[ChaosStep], leases: bool) -> String {
    use blockrep_obs::trace;
    let was_obs = blockrep_obs::enabled();
    let was_tracing = trace::enabled();
    trace::enable();
    trace::clear();
    let cfg = cfg.clone();
    let steps = steps.to_vec();
    let _ = run_caught("trace-replay", move || {
        let rt = Cluster::new(
            cfg,
            ClusterOptions {
                mode: DeliveryMode::Multicast,
            },
        );
        rt.leases().set_enabled(leases);
        run_on(&rt, &steps)
    });
    let records = trace::snapshot();
    if !was_tracing {
        trace::disable();
    }
    if !was_obs {
        blockrep_obs::disable();
    }
    trace::chrome_trace_json(&records)
}

// ---------------------------------------------------------------------------
// Shard-targeted fault scenarios
// ---------------------------------------------------------------------------

/// What one runtime produced replaying the shard fault scenarios: a step
/// log ending in per-shard traffic and replica fingerprints. Two runs are
/// equivalent iff the logs and counts are equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRunOutcome {
    /// One line per scenario step, then per-shard traffic and fingerprints.
    pub log: Vec<String>,
    /// Successful reads checked against the per-shard oracles.
    pub reads_checked: u64,
}

/// Summary of a passing shard-scenario replay (identical per runtime).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardChaosReport {
    /// Shards in the device under test.
    pub shards: usize,
    /// Scenario steps replayed (per runtime).
    pub steps: usize,
    /// Successful reads checked against the per-shard oracles.
    pub reads_checked: u64,
}

/// The fixed geometry the shard scenarios run on: 3-site shards, eight
/// 8-byte blocks per shard in 2-block placement groups, so every batch
/// over the full address space is a genuine cross-shard batch.
fn shard_scenario_spec(scheme: Scheme, shards: usize, journaled: bool) -> crate::shard::ShardSpec {
    crate::shard::ShardSpec {
        sites_per_shard: 3,
        block_size: 8,
        group_size: 2,
        journaled,
        ..crate::shard::ShardSpec::new(scheme, shards, 8 * shards as u64)
    }
}

/// Replays the two shard-targeted fault scenarios of the chaos suite on
/// one runtime family:
///
/// 1. **Shard blackout** — every site of one shard (the one owning block
///    0) fail-stops; a cross-shard write must fail that shard's sub-batch
///    while every other shard commits, reads of the surviving shards must
///    still serve, and after the shard is repaired its replicas must hold
///    exactly the pre-blackout contents (the failed sub-batch left no
///    trace).
/// 2. **Torn write mid cross-shard batch** — a [`FaultKind::TornWrite`]
///    lands on one shard's first install exchange during a cross-shard
///    batch; the victim shard's one-copy oracle degrades to history
///    membership (and must never see a byte-mix), the other shards stay
///    `Exact`, and a repair plus one clean write re-certifies everything.
///
/// The per-shard oracle is the same [`Oracle`] the seeded runs use, one
/// instance per shard over the shard's owned blocks. All protocol traffic
/// flows through a per-shard [`FaultyBackend`] (sequential scatter, pinned
/// exchange coordinates), so the log — including per-shard §5 traffic — is
/// byte-identical across runtimes.
pub fn run_shard_scenarios_on<R: ChaosRuntime>(
    dev: &crate::shard::ShardedDevice<R>,
) -> Result<ShardRunOutcome, String> {
    use blockrep_storage::BlockDevice as _;
    use std::fmt::Write as _;
    use std::sync::Arc;

    let manifest = dev.manifest().clone();
    let raw = dev.shard_backends();
    let cfg = raw[0].config().clone();
    let blocks = cfg.num_blocks();
    let all: Vec<BlockIndex> = (0..blocks).map(BlockIndex::new).collect();
    let victim = manifest.shard_of(BlockIndex::new(0));
    let victim_blocks: Vec<BlockIndex> = all
        .iter()
        .copied()
        .filter(|&k| manifest.shard_of(k) == victim)
        .collect();
    let healthy_blocks: Vec<BlockIndex> = all
        .iter()
        .copied()
        .filter(|&k| manifest.shard_of(k) != victim)
        .collect();
    if healthy_blocks.is_empty() {
        return Err(format!(
            "degenerate placement: shard {victim} owns every block of the scenario geometry"
        ));
    }

    // The torn install lands on the first *install* exchange of the victim
    // shard's batched write: voting spends one vote exchange per remote
    // site first, the available copy schemes install immediately.
    let torn_op = 7u64;
    let torn_x = match cfg.scheme() {
        Scheme::Voting => cfg.num_sites() as u64 - 1,
        Scheme::AvailableCopy | Scheme::NaiveAvailableCopy => 0,
    };
    let victim_plan: FaultPlan = [FaultSpec {
        op: torn_op,
        exchange: torn_x,
        kind: FaultKind::TornWrite { keep: 3 },
    }]
    .into_iter()
    .collect();
    let clean_plan = FaultPlan::default();
    let fbs: Vec<Arc<FaultyBackend<'_, R>>> = raw
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let plan = if i == victim {
                &victim_plan
            } else {
                &clean_plan
            };
            Arc::new(FaultyBackend::new(&**b, plan))
        })
        .collect();
    let fdev = crate::shard::ShardedDevice::new(fbs, manifest.clone(), dev.preferred());

    let mut oracles: Vec<Oracle> = (0..manifest.shard_count())
        .map(|_| Oracle::new(cfg.scheme(), blocks as usize, cfg.journaled()))
        .collect();
    let mut log: Vec<String> = Vec::new();
    let mut reads_checked = 0u64;

    let begin = |op: u64| {
        for fb in fdev.shard_backends() {
            fb.begin_op(op);
        }
    };
    let end_all =
        || -> Vec<OpReport> { fdev.shard_backends().iter().map(|fb| fb.end_op()).collect() };
    let states = || -> String {
        let mut out = String::new();
        for (i, b) in raw.iter().enumerate() {
            if i > 0 {
                out.push('/');
            }
            out.push_str(&states_suffix(&**b));
        }
        out
    };
    let batch = |fill: u8, ks: &[BlockIndex]| -> Vec<(BlockIndex, BlockData)> {
        ks.iter()
            .map(|&k| (k, BlockData::from(vec![fill; cfg.block_size()])))
            .collect()
    };

    // A cross-shard write over every block; `expect_victim_commit` says
    // whether the victim shard's sub-batch is expected to land (it is
    // recorded failed otherwise, which keeps its oracle at the previous
    // exact value).
    let write_all = |op: u64,
                     fill: u8,
                     expect_victim_commit: bool,
                     log: &mut Vec<String>,
                     oracles: &mut Vec<Oracle>|
     -> Result<(), String> {
        begin(op);
        let res = fdev.write_blocks(&batch(fill, &all));
        let reports = end_all();
        for (i, report) in reports.iter().enumerate() {
            finalize_crashes(&*raw[i], report);
        }
        let outcome = match &res {
            Ok(()) => "ok".to_string(),
            Err(e) => format!("err({e})"),
        };
        // The device-level result tells whether the victim's sub-batch
        // landed: in these scenarios the healthy shards always commit, so
        // the batch fails exactly when the victim was expected to fail.
        if res.is_ok() != expect_victim_commit {
            return Err(format!(
                "op {op}: write-all was expected to {} the victim sub-batch but \
                 returned {outcome}",
                if expect_victim_commit {
                    "commit"
                } else {
                    "fail"
                }
            ));
        }
        let committed = |s: usize| s != victim || expect_victim_commit;
        for &k in &all {
            let s = manifest.shard_of(k);
            oracles[s].record_write(k.index(), fill, committed(s), &reports[s]);
        }
        // Clean committed sub-batches must satisfy the scheme's replication
        // contract on their own shard.
        for (i, report) in reports.iter().enumerate() {
            if committed(i) && report.fired.iter().all(|f| f.kind.is_benign()) {
                for &k in &all {
                    if manifest.shard_of(k) == i {
                        certify_clean_write(&*raw[i], op as usize, k, fill)?;
                    }
                }
            }
        }
        let mut line = format!("#{op} write-all fill={fill:#04x} -> {outcome}");
        for report in &reports {
            line.push_str(&fired_suffix(report));
        }
        let _ = write!(line, " |{}", states());
        log.push(line);
        for (i, oracle) in oracles.iter_mut().enumerate() {
            oracle.try_narrow(&*raw[i]);
        }
        Ok(())
    };

    let read_some = |op: u64,
                     label: &str,
                     ks: &[BlockIndex],
                     expect_ok: bool,
                     log: &mut Vec<String>,
                     oracles: &Vec<Oracle>,
                     reads_checked: &mut u64|
     -> Result<(), String> {
        begin(op);
        let res = fdev.read_blocks(ks);
        let _ = end_all();
        let outcome = match &res {
            Ok(data) => {
                for (&k, d) in ks.iter().zip(data) {
                    oracles[manifest.shard_of(k)].check_read(op as usize, k.index(), d)?;
                    *reads_checked += 1;
                }
                "ok".to_string()
            }
            Err(e) => format!("err({e})"),
        };
        if res.is_ok() != expect_ok {
            return Err(format!(
                "op {op}: {label} read was expected to {} but did not ({outcome})",
                if expect_ok { "succeed" } else { "fail" }
            ));
        }
        log.push(format!("#{op} read-{label} -> {outcome} |{}", states()));
        Ok(())
    };

    // --- Scenario 1: shard blackout -------------------------------------
    write_all(0, 0x11, true, &mut log, &mut oracles)?;

    // #1: fail-stop every site of the victim shard.
    for s in raw[victim].config().site_ids() {
        protocol::fail(&*raw[victim], s);
        raw[victim].on_fail(s);
    }
    log.push(format!(
        "#1 crash-shard {victim} -> all sites failed |{}",
        states()
    ));

    // #2: the cross-shard write must fail the victim's sub-batch only.
    write_all(2, 0x22, false, &mut log, &mut oracles)?;
    // The dead shard's replicas must be untouched by the failed sub-batch.
    for s in raw[victim].config().site_ids() {
        for &k in &victim_blocks {
            let (_, data) = raw[victim]
                .fetch_block(s, s, k)
                .ok_or_else(|| format!("op 2: victim site {s} lost block {k} entirely"))?;
            if !data.as_slice().iter().all(|&x| x == 0x11) {
                return Err(format!(
                    "op 2: failed sub-batch corrupted shard {victim}: site {s} block {k} \
                     holds {:02x?}, expected the pre-blackout fill 0x11",
                    data.as_slice()
                ));
            }
        }
    }

    read_some(
        3,
        "healthy",
        &healthy_blocks,
        true,
        &mut log,
        &oracles,
        &mut reads_checked,
    )?;
    read_some(
        4,
        "all",
        &all,
        false,
        &mut log,
        &oracles,
        &mut reads_checked,
    )?;

    // #5: repair the victim shard; the available copy schemes may need a
    // sweep per site before the closure admits the shard back.
    for s in raw[victim].config().site_ids() {
        if raw[victim].local_state(s) == SiteState::Failed {
            raw[victim].on_restart(s);
            let _ = raw[victim].scrub_local(s);
            begin(5);
            protocol::repair(&*fdev.shard_backends()[victim], s);
            let _ = end_all();
        }
    }
    let mut sweeps = 0usize;
    while raw[victim]
        .config()
        .site_ids()
        .any(|s| raw[victim].local_state(s) == SiteState::Comatose)
        && sweeps < cfg.num_sites()
    {
        begin(5);
        protocol::sweep(&*fdev.shard_backends()[victim]);
        let _ = end_all();
        sweeps += 1;
    }
    log.push(format!(
        "#5 repair-shard {victim} sweeps={sweeps} -> |{}",
        states()
    ));
    for (i, oracle) in oracles.iter_mut().enumerate() {
        oracle.try_narrow(&*raw[i]);
    }

    // #6: healed — the victim serves its pre-blackout contents, the
    // healthy shards their post-blackout ones.
    read_some(
        6,
        "healed",
        &all,
        true,
        &mut log,
        &oracles,
        &mut reads_checked,
    )?;

    // --- Scenario 2: torn write mid cross-shard batch --------------------
    write_all(torn_op, 0x44, true, &mut log, &mut oracles)?;
    read_some(
        8,
        "post-torn",
        &all,
        true,
        &mut log,
        &oracles,
        &mut reads_checked,
    )?;

    // #9: repair whatever the torn install crashed.
    for s in raw[victim].config().site_ids() {
        if raw[victim].local_state(s) == SiteState::Failed {
            raw[victim].on_restart(s);
            let _ = raw[victim].scrub_local(s);
            begin(9);
            protocol::repair(&*fdev.shard_backends()[victim], s);
            let _ = end_all();
        }
    }
    let mut sweeps = 0usize;
    while raw[victim]
        .config()
        .site_ids()
        .any(|s| raw[victim].local_state(s) == SiteState::Comatose)
        && sweeps < cfg.num_sites()
    {
        begin(9);
        protocol::sweep(&*fdev.shard_backends()[victim]);
        let _ = end_all();
        sweeps += 1;
    }
    log.push(format!(
        "#9 repair-torn shard {victim} sweeps={sweeps} -> |{}",
        states()
    ));
    for (i, oracle) in oracles.iter_mut().enumerate() {
        oracle.try_narrow(&*raw[i]);
    }

    // #10–#11: one clean write re-certifies every shard `Exact`.
    write_all(10, 0x55, true, &mut log, &mut oracles)?;
    read_some(
        11,
        "final",
        &all,
        true,
        &mut log,
        &oracles,
        &mut reads_checked,
    )?;

    // Final per-shard traffic and replica fingerprints (owned blocks).
    for (i, b) in raw.iter().enumerate() {
        log.push(format!("shard {i} traffic {}", b.counter().snapshot()));
        for s in b.config().site_ids() {
            let w = b
                .was_available(s, s)
                .expect("a site always reports its own was-available set");
            let mut line = format!(
                "shard {i} site {s}: {:?} W={:?}",
                b.local_state(s),
                w.iter().map(|x| x.as_u32()).collect::<Vec<_>>()
            );
            for &k in all.iter().filter(|&&k| manifest.shard_of(k) == i) {
                let (v, data) = b
                    .fetch_block(s, s, k)
                    .expect("a site can always read its own disk");
                let _ = write!(line, " {k}=v{}:{:02x?}", v.as_u64(), data.as_slice());
            }
            log.push(line);
        }
    }

    Ok(ShardRunOutcome { log, reads_checked })
}

fn shard_diverges(a: &ShardRunOutcome, b: &ShardRunOutcome) -> Option<String> {
    for (i, (la, lb)) in a.log.iter().zip(&b.log).enumerate() {
        if la != lb {
            return Some(format!("log line {i}:\n  a: {la}\n  b: {lb}"));
        }
    }
    if a.log.len() != b.log.len() {
        return Some(format!("log length {} vs {}", a.log.len(), b.log.len()));
    }
    if a.reads_checked != b.reads_checked {
        return Some(format!(
            "reads checked {} vs {}",
            a.reads_checked, b.reads_checked
        ));
    }
    None
}

/// Replays the shard fault scenarios on all three runtimes over a
/// `shards`-shard device and checks both the per-shard one-copy oracles
/// and cross-runtime parity (step logs, per-shard §5 traffic, replica
/// fingerprints). Returns the first discrepancy as an error.
pub fn check_shards(
    scheme: Scheme,
    shards: usize,
    journaled: bool,
) -> Result<ShardChaosReport, String> {
    if shards < 2 {
        return Err("the shard scenarios need at least 2 shards".to_string());
    }
    let spec = shard_scenario_spec(scheme, shards, journaled);
    let det = {
        let spec = spec.clone();
        run_caught("deterministic", move || {
            let dev = crate::shard::ShardedDevice::deterministic(
                &spec,
                ClusterOptions {
                    mode: DeliveryMode::Multicast,
                },
            )
            .map_err(|e| format!("spawn failed: {e}"))?;
            run_shard_scenarios_on(&dev)
        })?
    };
    let live = {
        let spec = spec.clone();
        run_caught("live", move || {
            let dev = crate::shard::ShardedDevice::live(&spec, DeliveryMode::Multicast)
                .map_err(|e| format!("spawn failed: {e}"))?;
            run_shard_scenarios_on(&dev)
        })?
    };
    let tcp = {
        let spec = spec.clone();
        run_caught("tcp", move || {
            let dev = crate::shard::ShardedDevice::tcp(&spec, DeliveryMode::Multicast)
                .map_err(|e| format!("spawn failed: {e}"))?;
            run_shard_scenarios_on(&dev)
        })?
    };
    for (name, other) in [("live", &live), ("tcp", &tcp)] {
        if let Some(divergence) = shard_diverges(&det, other) {
            return Err(format!(
                "shard runtime parity broken (deterministic vs {name}): {divergence}"
            ));
        }
    }
    Ok(ShardChaosReport {
        shards,
        steps: det.log.len(),
        reads_checked: det.reads_checked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_scenarios_pass_on_all_runtimes_for_every_scheme() {
        for scheme in Scheme::ALL {
            let report = check_shards(scheme, 2, false).unwrap_or_else(|e| panic!("{scheme}: {e}"));
            assert_eq!(report.shards, 2);
            assert!(report.reads_checked > 0, "{scheme}: no reads checked");
        }
    }

    #[test]
    fn shard_scenarios_pass_journaled_and_wider() {
        let report = check_shards(Scheme::Voting, 2, true).unwrap();
        assert!(report.reads_checked > 0);
        let report = check_shards(Scheme::Voting, 4, false).unwrap();
        assert_eq!(report.shards, 4);
    }

    #[test]
    fn check_shards_rejects_a_single_shard() {
        assert!(check_shards(Scheme::Voting, 1, false).is_err());
    }
}
