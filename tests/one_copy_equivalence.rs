//! Property tests: one-copy equivalence of every consistency scheme.
//!
//! Random scripts of writes, reads, failures and repairs are replayed
//! against the deterministic cluster; the scenario runner's oracle asserts
//! that every successful read observes the last successful write. This is
//! the correctness property all three of the paper's schemes promise.

use blockrep::core::scenario::{run_script, Action};
use blockrep::core::{Cluster, ClusterOptions};
use blockrep::net::DeliveryMode;
use blockrep::types::{BlockIndex, DeviceConfig, Scheme, SiteId};
use proptest::prelude::*;

const NUM_BLOCKS: u64 = 4;

fn action_strategy(n_sites: u32) -> impl Strategy<Value = Action> {
    let site = (0..n_sites).prop_map(SiteId::new);
    let block = (0..NUM_BLOCKS).prop_map(BlockIndex::new);
    prop_oneof![
        3 => (site.clone(), block.clone(), any::<u8>())
            .prop_map(|(origin, block, fill)| Action::Write { origin, block, fill }),
        4 => (site.clone(), block).prop_map(|(origin, block)| Action::Read { origin, block }),
        1 => site.clone().prop_map(Action::Fail),
        1 => site.prop_map(Action::Repair),
    ]
}

fn check(scheme: Scheme, n_sites: usize, mode: DeliveryMode, script: &[Action]) {
    let cfg = DeviceConfig::builder(scheme)
        .sites(n_sites)
        .num_blocks(NUM_BLOCKS)
        .block_size(16)
        .build()
        .unwrap();
    let cluster = Cluster::new(cfg, ClusterOptions { mode });
    // run_script panics on any one-copy-equivalence violation.
    run_script(&cluster, script);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn voting_reads_see_last_write(script in prop::collection::vec(action_strategy(3), 1..60)) {
        check(Scheme::Voting, 3, DeliveryMode::Multicast, &script);
    }

    #[test]
    fn voting_five_sites(script in prop::collection::vec(action_strategy(5), 1..60)) {
        check(Scheme::Voting, 5, DeliveryMode::Unicast, &script);
    }

    #[test]
    fn available_copy_reads_see_last_write(script in prop::collection::vec(action_strategy(3), 1..60)) {
        check(Scheme::AvailableCopy, 3, DeliveryMode::Multicast, &script);
    }

    #[test]
    fn available_copy_four_sites(script in prop::collection::vec(action_strategy(4), 1..60)) {
        check(Scheme::AvailableCopy, 4, DeliveryMode::Unicast, &script);
    }

    #[test]
    fn naive_reads_see_last_write(script in prop::collection::vec(action_strategy(3), 1..60)) {
        check(Scheme::NaiveAvailableCopy, 3, DeliveryMode::Multicast, &script);
    }

    #[test]
    fn naive_four_sites(script in prop::collection::vec(action_strategy(4), 1..60)) {
        check(Scheme::NaiveAvailableCopy, 4, DeliveryMode::Multicast, &script);
    }

    #[test]
    fn single_site_degenerate_cluster(script in prop::collection::vec(action_strategy(1), 1..40)) {
        for scheme in Scheme::ALL {
            check(scheme, 1, DeliveryMode::Multicast, &script);
        }
    }

    /// Vectored equivalence: a random script of batched writes and reads
    /// must leave exactly the same bytes AND the same §5 traffic totals as
    /// the identical script unrolled into per-block operations.
    #[test]
    fn vectored_ops_equal_per_block_ops(
        script in prop::collection::vec(
            (0..3u32, prop::collection::btree_set(0..NUM_BLOCKS, 1..4), any::<u8>()),
            1..16,
        )
    ) {
        use blockrep::types::BlockData;
        for scheme in Scheme::ALL {
            let cfg = DeviceConfig::builder(scheme)
                .sites(3)
                .num_blocks(NUM_BLOCKS)
                .block_size(16)
                .build()
                .unwrap();
            let batched = Cluster::new(cfg.clone(), ClusterOptions::default());
            let unrolled = Cluster::new(cfg, ClusterOptions::default());
            for (origin, blocks, fill) in &script {
                let o = SiteId::new(*origin);
                let writes: Vec<(BlockIndex, BlockData)> = blocks
                    .iter()
                    .map(|&k| (BlockIndex::new(k), BlockData::from(vec![fill.wrapping_add(k as u8); 16])))
                    .collect();
                let a = batched.write_many(o, &writes).is_ok();
                let b = writes.iter().all(|(k, d)| unrolled.write(o, *k, d.clone()).is_ok());
                prop_assert_eq!(a, b, "{}: write outcome diverged", scheme);
                let ks: Vec<BlockIndex> = blocks.iter().map(|&k| BlockIndex::new(k)).collect();
                let a: Option<Vec<Vec<u8>>> = batched
                    .read_many(o, &ks)
                    .ok()
                    .map(|v| v.iter().map(|d| d.as_slice().to_vec()).collect());
                let b: Option<Vec<Vec<u8>>> = ks
                    .iter()
                    .map(|&k| unrolled.read(o, k).ok().map(|d| d.as_slice().to_vec()))
                    .collect();
                prop_assert_eq!(a, b, "{}: read bytes diverged", scheme);
            }
            prop_assert_eq!(
                batched.traffic(),
                unrolled.traffic(),
                "{}: batched §5 accounting diverged from the per-block loop",
                scheme
            );
        }
    }
}

#[test]
fn version_numbers_never_regress_across_random_script() {
    // Deterministic variant of the monotonicity invariant: replay a fixed
    // stress script and check per-site versions are monotone between steps.
    let cfg = DeviceConfig::builder(Scheme::AvailableCopy)
        .sites(3)
        .num_blocks(2)
        .block_size(16)
        .build()
        .unwrap();
    let cluster = Cluster::new(cfg, ClusterOptions::default());
    let s = SiteId::new;
    let k = BlockIndex::new(0);
    let mut last = vec![0u64; 3];
    let observe = |cluster: &Cluster, last: &mut Vec<u64>| {
        for i in 0..3u32 {
            let v = cluster.version_of(s(i), k).as_u64();
            assert!(v >= last[i as usize], "site {i} version regressed");
            last[i as usize] = v;
        }
    };
    for round in 0..40u8 {
        let _ = cluster.write(s(0), k, blockrep::types::BlockData::from(vec![round; 16]));
        observe(&cluster, &mut last);
        if round % 7 == 0 {
            cluster.fail_site(s(2));
            observe(&cluster, &mut last);
        }
        if round % 7 == 3 && cluster.site_state(s(2)) == blockrep::types::SiteState::Failed {
            cluster.repair_site(s(2));
            observe(&cluster, &mut last);
        }
    }
}
