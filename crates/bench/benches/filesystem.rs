//! File-system benchmarks over both substrates: a plain local store and a
//! replicated reliable device — the overhead of block-level replication as
//! the file system actually experiences it.

use blockrep_core::{Cluster, ClusterOptions, ReliableDevice};
use blockrep_fs::FileSystem;
use blockrep_storage::{BlockDevice, MemStore};
use blockrep_types::{DeviceConfig, Scheme, SiteId};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn reliable(scheme: Scheme) -> ReliableDevice<Cluster> {
    let cfg = DeviceConfig::builder(scheme)
        .sites(3)
        .num_blocks(512)
        .block_size(512)
        .build()
        .unwrap();
    ReliableDevice::new(
        Arc::new(Cluster::new(cfg, ClusterOptions::default())),
        SiteId::new(0),
    )
}

fn bench_fs<D: BlockDevice>(
    g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    label: &str,
    dev: D,
) {
    let fs = FileSystem::format(dev).unwrap();
    fs.mkdir("/bench").unwrap();
    let payload = vec![0xABu8; 4096];
    fs.write_file("/bench/read-target", &payload).unwrap();
    g.bench_function(format!("{label}/write_4k"), |b| {
        b.iter(|| {
            fs.write_file("/bench/write-target", black_box(&payload))
                .unwrap()
        })
    });
    g.bench_function(format!("{label}/read_4k"), |b| {
        b.iter(|| black_box(fs.read_file("/bench/read-target").unwrap()))
    });
    g.bench_function(format!("{label}/create_unlink"), |b| {
        b.iter(|| {
            fs.create("/bench/tmp").unwrap();
            fs.remove_file("/bench/tmp").unwrap();
        })
    });
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("filesystem");
    bench_fs(&mut g, "local_memstore", MemStore::new(512, 512));
    bench_fs(
        &mut g,
        "reliable_naive",
        reliable(Scheme::NaiveAvailableCopy),
    );
    bench_fs(&mut g, "reliable_voting", reliable(Scheme::Voting));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
