//! Block stores for `blockrep`.
//!
//! The reliable device of the paper presents the interface of "an ordinary
//! block-structured device". That interface is the [`BlockDevice`] trait
//! defined here; everything above it — including the unmodified file system
//! in `blockrep-fs` — consumes only this trait, and everything below it —
//! a plain in-memory disk, a file-backed disk, or the replicated reliable
//! device in `blockrep-core` — provides it.
//!
//! The crate also supplies the per-site storage used by server processes:
//! a [`VersionedStore`] pairing each block with the version number the
//! consistency protocols rely on.
//!
//! # Examples
//!
//! ```
//! use blockrep_storage::{BlockDevice, MemStore};
//! use blockrep_types::{BlockData, BlockIndex};
//!
//! # fn main() -> Result<(), blockrep_types::DeviceError> {
//! let disk = MemStore::new(16, 512);
//! let k = BlockIndex::new(3);
//! disk.write_block(k, BlockData::zeroed(512))?;
//! assert!(disk.read_block(k)?.is_zeroed());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod device;
mod file;
mod mem;
mod versioned;
pub mod wal;

pub use cache::{CacheStats, CacheStore};
pub use device::BlockDevice;
pub use file::FileStore;
pub use mem::MemStore;
pub use versioned::{StorageFault, VersionedStore};
pub use wal::{Journaled, Wal, WalRecord, WalStats};
