//! Inodes: 64-byte on-disk records with direct and indirect block pointers.

use crate::layout::{FsGeometry, DIRECT_POINTERS, INODE_SIZE};
use crate::{FsError, FsResult};
use blockrep_storage::BlockDevice;
use blockrep_types::{BlockData, BlockIndex};
use bytes::{Buf, BufMut};

/// What an inode describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum InodeKind {
    /// Free slot.
    Free = 0,
    /// Regular file.
    File = 1,
    /// Directory.
    Dir = 2,
}

/// An in-memory inode image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inode {
    /// File or directory (or free).
    pub kind: InodeKind,
    /// Link count (1 for everything in this FS — no hard links — kept for
    /// format compatibility with a future extension).
    pub nlink: u16,
    /// Size in bytes (for directories: the byte extent of the entry table).
    pub size: u64,
    /// Direct block pointers; 0 = hole / unallocated.
    pub direct: [u32; DIRECT_POINTERS],
    /// Single indirect pointer block; 0 = none.
    pub indirect: u32,
}

impl Inode {
    /// A fresh inode of the given kind.
    pub fn new(kind: InodeKind) -> Self {
        Inode {
            kind,
            nlink: 1,
            size: 0,
            direct: [0; DIRECT_POINTERS],
            indirect: 0,
        }
    }

    /// Serializes to the 64-byte on-disk record.
    pub fn encode(&self) -> [u8; INODE_SIZE] {
        let mut buf = Vec::with_capacity(INODE_SIZE);
        buf.put_u16_le(self.kind as u16);
        buf.put_u16_le(self.nlink);
        buf.put_u64_le(self.size);
        for p in self.direct {
            buf.put_u32_le(p);
        }
        buf.put_u32_le(self.indirect);
        buf.resize(INODE_SIZE, 0);
        buf.try_into().expect("inode record is exactly 64 bytes")
    }

    /// Parses the 64-byte on-disk record.
    pub fn decode(mut raw: &[u8]) -> Inode {
        let kind = match raw.get_u16_le() {
            1 => InodeKind::File,
            2 => InodeKind::Dir,
            _ => InodeKind::Free,
        };
        let nlink = raw.get_u16_le();
        let size = raw.get_u64_le();
        let mut direct = [0u32; DIRECT_POINTERS];
        for p in &mut direct {
            *p = raw.get_u32_le();
        }
        let indirect = raw.get_u32_le();
        Inode {
            kind,
            nlink,
            size,
            direct,
            indirect,
        }
    }
}

/// The on-disk inode table.
pub struct InodeTable<'a, D> {
    dev: &'a D,
    geo: &'a FsGeometry,
}

impl<'a, D: BlockDevice> InodeTable<'a, D> {
    /// Creates a table view over `dev`.
    pub fn new(dev: &'a D, geo: &'a FsGeometry) -> Self {
        InodeTable { dev, geo }
    }

    fn locate(&self, ino: u32) -> FsResult<(BlockIndex, usize)> {
        if ino == 0 || ino > self.geo.inode_count {
            return Err(FsError::BadSuperblock(format!("inode {ino} out of range")));
        }
        let per_block = self.geo.block_size as usize / INODE_SIZE;
        let index = (ino - 1) as usize;
        let block = self.geo.inode_start + (index / per_block) as u64;
        Ok((BlockIndex::new(block), (index % per_block) * INODE_SIZE))
    }

    /// Reads inode `ino`.
    pub fn read(&self, ino: u32) -> FsResult<Inode> {
        let (block, offset) = self.locate(ino)?;
        let raw = self.dev.read_block(block)?;
        Ok(Inode::decode(&raw.as_slice()[offset..offset + INODE_SIZE]))
    }

    /// Writes inode `ino`.
    pub fn write(&self, ino: u32, inode: &Inode) -> FsResult<()> {
        let (block, offset) = self.locate(ino)?;
        let mut raw = self.dev.read_block(block)?.as_slice().to_vec();
        raw[offset..offset + INODE_SIZE].copy_from_slice(&inode.encode());
        self.dev.write_block(block, BlockData::from(raw))?;
        Ok(())
    }

    /// Allocates a free inode slot, initializes it to a fresh `kind` inode
    /// and returns its number.
    ///
    /// # Errors
    ///
    /// [`FsError::NoInodes`] when the table is full.
    pub fn alloc(&self, kind: InodeKind) -> FsResult<u32> {
        for ino in 1..=self.geo.inode_count {
            if self.read(ino)?.kind == InodeKind::Free {
                let inode = Inode::new(kind);
                self.write(ino, &inode)?;
                return Ok(ino);
            }
        }
        Err(FsError::NoInodes)
    }

    /// Frees inode `ino`.
    pub fn free(&self, ino: u32) -> FsResult<()> {
        self.write(ino, &Inode::new(InodeKind::Free))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockrep_storage::MemStore;

    fn setup() -> (MemStore, FsGeometry) {
        let geo = FsGeometry::plan(128, 512).unwrap();
        (MemStore::new(128, 512), geo)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut ino = Inode::new(InodeKind::File);
        ino.size = 1234;
        ino.direct[0] = 55;
        ino.direct[11] = 99;
        ino.indirect = 77;
        let back = Inode::decode(&ino.encode());
        assert_eq!(back, ino);
    }

    #[test]
    fn table_read_write_roundtrip() {
        let (dev, geo) = setup();
        let table = InodeTable::new(&dev, &geo);
        let mut ino = Inode::new(InodeKind::Dir);
        ino.size = 64;
        table.write(5, &ino).unwrap();
        assert_eq!(table.read(5).unwrap(), ino);
        // Neighbouring slots untouched.
        assert_eq!(table.read(4).unwrap().kind, InodeKind::Free);
        assert_eq!(table.read(6).unwrap().kind, InodeKind::Free);
    }

    #[test]
    fn alloc_scans_for_free_slots() {
        let (dev, geo) = setup();
        let table = InodeTable::new(&dev, &geo);
        let a = table.alloc(InodeKind::File).unwrap();
        let b = table.alloc(InodeKind::Dir).unwrap();
        assert_ne!(a, b);
        table.free(a).unwrap();
        let c = table.alloc(InodeKind::File).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn exhaustion_reports_no_inodes() {
        let (dev, geo) = setup();
        let table = InodeTable::new(&dev, &geo);
        for _ in 0..geo.inode_count {
            table.alloc(InodeKind::File).unwrap();
        }
        assert!(matches!(
            table.alloc(InodeKind::File),
            Err(FsError::NoInodes)
        ));
    }

    #[test]
    fn inode_zero_is_invalid() {
        let (dev, geo) = setup();
        let table = InodeTable::new(&dev, &geo);
        assert!(table.read(0).is_err());
        assert!(table.read(geo.inode_count + 1).is_err());
    }
}
