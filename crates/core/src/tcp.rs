//! The TCP cluster: server processes behind real sockets.
//!
//! The paper's deployment is "a set of server processes on several sites" of
//! a network. [`TcpCluster`] is that, minus the machine room: every site is
//! an OS thread owning its replica behind a loopback `TcpListener`, and
//! every protocol exchange is a length-prefixed [`wire`](crate::wire) frame
//! over a real socket — serialization, framing and all. The protocol logic
//! is still the one shared implementation (this type implements
//! [`Backend`](crate::backend::Backend)), so the three runtimes —
//! deterministic, channel-threaded, TCP — are interchangeable and must
//! agree, which the integration tests check.
//!
//! Fail-stop is enforced at the coordination layer (a failed site is not
//! contacted), keeping failure injection deterministic; the site's server
//! keeps its socket and its disk, exactly like a halted machine keeps both.
//! Partitions are not modeled on this transport — the available copy
//! schemes assume none, and the deterministic runtimes cover the
//! partition experiments.

use crate::backend::{
    self, Backend, Gather, ScatterReplies, ScatterReply, ScatterRequest, ScatterSpec, WriteBatch,
};
use crate::locks::{BlockLockTable, LeaseTable};
use crate::replica::Replica;
use crate::wire::{self, WireRequest, WireResponse};
use crate::{protocol, RepairBlocks};
use blockrep_net::{DeliveryMode, FanoutMode, TrafficCounter};
use blockrep_obs::event;
use blockrep_types::{
    BlockData, BlockIndex, DeviceConfig, DeviceResult, SiteId, SiteState, VersionNumber,
    VersionVector,
};
use crossbeam::channel::{bounded, Receiver};
use parking_lot::{Mutex, MutexGuard, RwLock};
use std::collections::{BTreeSet, HashMap};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// In-flight request budget per multiplexed connection (see
/// [`TcpCluster::set_multiplexing`]).
const MUX_WINDOW: usize = 32;

fn serve(
    mut replica: Replica,
    listener: TcpListener,
    latency_ns: Arc<AtomicU64>,
    site: u32,
    legacy: Arc<AtomicBool>,
) {
    // Single-coordinator design: one connection drives the replica at a
    // time, but the coordinator may replace it — after a torn frame it
    // drops the poisoned stream and reconnects — so connections are served
    // in sequence until a Shutdown frame arrives.
    while let Ok((mut conn, _)) = listener.accept() {
        // Request/response over one socket: Nagle + delayed ACK would add
        // ~40ms to every round trip.
        let _ = conn.set_nodelay(true);
        if serve_conn(&mut replica, &mut conn, &latency_ns, site, &legacy) == Served::Shutdown {
            return;
        }
    }
}

/// Why [`serve_conn`] stopped serving a connection.
#[derive(PartialEq, Eq)]
enum Served {
    /// The coordinator hung up or sent garbage; await a reconnect.
    Hangup,
    /// A Shutdown frame arrived; the cluster is going down.
    Shutdown,
}

fn serve_conn(
    replica: &mut Replica,
    conn: &mut TcpStream,
    latency_ns: &AtomicU64,
    site: u32,
    legacy: &AtomicBool,
) -> Served {
    loop {
        let Ok(frame) = wire::read_frame(conn) else {
            return Served::Hangup; // hung up (or reconnected elsewhere)
        };
        let Ok(request) = WireRequest::decode(&frame) else {
            return Served::Hangup; // corrupt peer: drop the connection
        };
        // Unwrap the trace envelope, if any. A peer flagged `legacy`
        // behaves exactly like a build that predates tag 17: the envelope
        // is an unknown tag, i.e. a decode error, i.e. a hangup — which is
        // what the coordinator's fallback path is built to survive.
        let (request, remote_ctx) = match request {
            WireRequest::Traced {
                trace_id,
                parent_span,
                inner,
            } => {
                if legacy.load(Ordering::Relaxed) {
                    return Served::Hangup;
                }
                (*inner, Some((trace_id, parent_span)))
            }
            request => (request, None),
        };
        // Unwrap the multiplexing envelope, if any; the id is echoed on the
        // reply so the coordinator's demux thread can route it.
        let (request, mux_id) = match request {
            WireRequest::Mux { id, inner } => (*inner, Some(id)),
            request => (request, None),
        };
        // Emulated one-way link delay (see `TcpCluster::set_link_latency`).
        // Deliberately outside the remote span: transit time is the
        // coordinator's gather wait, not this site's apply work.
        let delay = latency_ns.load(Ordering::Relaxed);
        if delay > 0 && !matches!(request, WireRequest::Shutdown) {
            std::thread::sleep(Duration::from_nanos(delay));
        }
        let _remote = remote_ctx.map(|(trace_id, parent_span)| {
            blockrep_obs::trace::start_remote(
                trace_id,
                parent_span,
                crate::obs_hooks::phase_remote_apply(),
                site,
            )
        });
        let response = match request {
            WireRequest::Shutdown => return Served::Shutdown,
            WireRequest::Probe => WireResponse::Ack,
            WireRequest::Vote(k) => WireResponse::Version(replica.version(k)),
            WireRequest::Fetch(k) => {
                let (v, data) = replica.versioned(k);
                WireResponse::Block(v, data)
            }
            WireRequest::FetchLease(k) => {
                let (v, data) = replica.versioned(k);
                WireResponse::Block(v, data)
            }
            WireRequest::ApplyWrite(k, v, data) => {
                replica.install(k, data, v);
                WireResponse::Ack
            }
            WireRequest::ReadLocal(k) => WireResponse::Data(replica.data(k)),
            WireRequest::VersionVector => WireResponse::Vector(replica.version_vector()),
            WireRequest::RepairPayload(vv) => {
                let (vv, blocks) = replica.repair_payload(&vv);
                WireResponse::Payload(vv, blocks)
            }
            WireRequest::ApplyRepair(blocks) => {
                replica.apply_repair(blocks);
                WireResponse::Ack
            }
            WireRequest::GetW => WireResponse::W(replica.was_available().clone()),
            WireRequest::SetW(w) => {
                replica.set_was_available(w);
                WireResponse::Ack
            }
            WireRequest::AddW(s) => {
                replica.add_was_available(s);
                WireResponse::Ack
            }
            WireRequest::ApplyWriteFaulty(k, v, data, fault) => {
                replica.install_faulty(k, data, v, fault);
                WireResponse::Ack
            }
            WireRequest::Scrub => WireResponse::Count(replica.scrub().len() as u64),
            WireRequest::VoteMany(ks) => {
                WireResponse::Versions(ks.into_iter().map(|k| replica.version(k)).collect())
            }
            WireRequest::ApplyWriteMany(blocks) => {
                for (k, v, data) in blocks {
                    replica.install(k, data, v);
                }
                WireResponse::Ack
            }
            WireRequest::ReadLocalMany(ks) => {
                WireResponse::DataMany(ks.into_iter().map(|k| replica.data(k)).collect())
            }
            // Decode rejects nested envelopes and the outer ones were
            // already unwrapped above, so these arms are unreachable by
            // construction.
            WireRequest::Traced { .. } | WireRequest::Mux { .. } => return Served::Hangup,
        };
        let response = match mux_id {
            Some(id) => WireResponse::Mux {
                id,
                inner: Box::new(response),
            },
            None => response,
        };
        if wire::write_frame(conn, &response.encode()).is_err() {
            return Served::Hangup;
        }
    }
}

/// A coordinator-side connection to one site's server. A torn frame (I/O or
/// decode error mid-exchange) leaves the stream unsynchronized, so the
/// connection is *poisoned*: the failed exchange reports "no reply" once,
/// and the next checkout replaces the stream with a fresh connection
/// instead of silently desyncing every later RPC (the server accepts the
/// replacement as soon as the old stream drops).
struct SiteConn {
    stream: TcpStream,
    poisoned: bool,
    /// Whether this peer accepts the trace envelope. Starts optimistic;
    /// cleared the first time a traced frame makes the peer hang up, after
    /// which every frame to it goes bare (one flag flip, no negotiation).
    trace_ok: bool,
}

impl SiteConn {
    /// Marks the connection unusable and logs the event.
    fn poison(&mut self, to: SiteId) {
        self.poisoned = true;
        event!("tcp.conn.poisoned", site = to.as_u32());
    }

    /// One request/response exchange. Any failure poisons the connection.
    fn exchange(&mut self, to: SiteId, request: &WireRequest) -> Option<WireResponse> {
        let response = wire::write_frame(&mut self.stream, &request.encode())
            .ok()
            .and_then(|()| wire::read_frame(&mut self.stream).ok())
            .and_then(|frame| WireResponse::decode(&frame).ok());
        if response.is_none() {
            self.poison(to);
        }
        response
    }
}

/// Coordinator half of one multiplexed connection: requests go out under a
/// per-connection id with a bounded in-flight window, and a dedicated
/// reader thread (see [`mux_reader`]) demultiplexes the replies by id, so
/// concurrent operations share the socket without waiting on each other's
/// round trips.
///
/// Lock order within one `MuxConn`: window semaphore → `writer` →
/// `pending`. The reader thread takes only `pending`, so it can never
/// participate in a cycle.
struct MuxConn {
    /// Write half plus the next request id; a frame is written whole under
    /// this lock, so frames from concurrent clients never interleave.
    writer: Mutex<(TcpStream, u64)>,
    /// Reply slots for in-flight requests, keyed by request id.
    pending: Mutex<HashMap<u64, crossbeam::channel::Sender<Option<WireResponse>>>>,
    /// Counting semaphore bounding in-flight requests on this connection:
    /// remaining slots plus the condvar submitters wait on.
    window: (Mutex<usize>, Condvar),
    /// Set by the reader thread when the stream dies; submissions fail fast.
    dead: AtomicBool,
}

impl MuxConn {
    /// Claims one window slot, blocking while the window is full.
    fn acquire_slot(&self) {
        let (slots, cvar) = &self.window;
        let mut slots = slots.lock();
        while *slots == 0 {
            slots = cvar.wait(slots).unwrap_or_else(PoisonError::into_inner);
        }
        *slots -= 1;
    }

    /// Returns one window slot and wakes a waiting submitter.
    fn release_slot(&self) {
        let (slots, cvar) = &self.window;
        *slots.lock() += 1;
        cvar.notify_one();
    }

    /// Sends `request` under a fresh id and returns the channel its reply
    /// will arrive on. The caller owns a window slot until it calls
    /// [`release_slot`](Self::release_slot) (after receiving). `None` means
    /// the connection is dead — the site is unreachable to this frame.
    fn submit(&self, request: WireRequest) -> Option<Receiver<Option<WireResponse>>> {
        if self.dead.load(Ordering::Relaxed) {
            return None;
        }
        self.acquire_slot();
        let (tx, rx) = bounded(1);
        let sent = {
            let mut writer = self.writer.lock();
            let (stream, next_id) = &mut *writer;
            let id = *next_id;
            *next_id += 1;
            // Park the reply slot before the frame hits the wire so the
            // reader can never see a reply to an unknown id.
            self.pending.lock().insert(id, tx);
            let frame = WireRequest::Mux {
                id,
                inner: Box::new(request),
            }
            .encode();
            let ok = wire::write_frame(stream, &frame).is_ok()
                // The reader may have died and drained `pending` before the
                // insert above; in that window the request would never be
                // answered, so check the flag after parking the slot.
                && !self.dead.load(Ordering::Relaxed);
            if !ok {
                self.dead.store(true, Ordering::Relaxed);
                self.pending.lock().remove(&id);
            }
            ok
        };
        if !sent {
            self.release_slot();
            return None;
        }
        Some(rx)
    }
}

/// The demux loop: reads [`WireResponse::Mux`] frames off the socket and
/// routes each inner reply to the submitter that parked its id. Any I/O or
/// framing error kills the connection: every in-flight submitter is handed
/// "no reply", which the protocol treats exactly like an unreachable site.
fn mux_reader(mut stream: TcpStream, conn: &MuxConn) {
    while let Ok(frame) = wire::read_frame(&mut stream) {
        let Ok(WireResponse::Mux { id, inner }) = WireResponse::decode(&frame) else {
            break;
        };
        let Some(tx) = conn.pending.lock().remove(&id) else {
            break; // a reply nobody asked for: the stream is desynced
        };
        let _ = tx.send(Some(*inner));
    }
    conn.dead.store(true, Ordering::Relaxed);
    for (_, tx) in conn.pending.lock().drain() {
        let _ = tx.send(None);
    }
}

/// A cluster of replica servers behind loopback TCP sockets.
///
/// # Examples
///
/// ```
/// use blockrep_core::TcpCluster;
/// use blockrep_net::DeliveryMode;
/// use blockrep_types::{BlockData, BlockIndex, DeviceConfig, Scheme, SiteId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = DeviceConfig::builder(Scheme::NaiveAvailableCopy)
///     .sites(3).num_blocks(4).block_size(16).build()?;
/// let cluster = TcpCluster::spawn(cfg, DeliveryMode::Multicast)?;
/// let k = BlockIndex::new(0);
/// cluster.write(SiteId::new(0), k, BlockData::from(vec![7; 16]))?;
/// cluster.fail_site(SiteId::new(0));
/// assert_eq!(cluster.read(SiteId::new(1), k)?.as_slice(), &[7; 16]);
/// # Ok(())
/// # }
/// ```
pub struct TcpCluster {
    cfg: DeviceConfig,
    states: RwLock<Vec<SiteState>>,
    counter: TrafficCounter,
    mode: DeliveryMode,
    addrs: Vec<SocketAddr>,
    conns: Vec<Mutex<SiteConn>>,
    /// Whether scatters pipeline their frames (write all requests, then
    /// read all replies) instead of one blocking RPC per target.
    parallel: AtomicBool,
    /// Whether vote collection stops building on replies past quorum weight.
    early_quorum: AtomicBool,
    /// Emulated one-way link delay in nanoseconds, shared with the servers.
    latency_ns: Arc<AtomicU64>,
    /// Whether request frames carry the trace envelope when a span context
    /// is live. Off by default — the untraced-peer mode the parity tests
    /// pin — so frames stay byte-identical unless explicitly opted in.
    wire_tracing: AtomicBool,
    /// Per-site "pretend this server predates the trace envelope" flags,
    /// shared with the server threads (mixed-version testing).
    legacy: Vec<Arc<AtomicBool>>,
    /// Per-site multiplexed connections, populated by
    /// [`set_multiplexing`](Self::set_multiplexing).
    mux: Vec<RwLock<Option<Arc<MuxConn>>>>,
    /// Fast path for "is any mux connection live" checks.
    muxed: AtomicBool,
    /// Demux reader threads, joined on drop / un-multiplexing.
    mux_readers: Mutex<Vec<JoinHandle<()>>>,
    /// Per-block lock shards serializing same-block coordinations.
    locks: BlockLockTable,
    /// Read-lease registry for the offload fast path.
    leases: LeaseTable,
    handles: Vec<JoinHandle<()>>,
}

impl TcpCluster {
    /// Binds one loopback listener per site, spawns the server threads, and
    /// connects the coordinator to each.
    ///
    /// # Errors
    ///
    /// I/O errors from binding or connecting the loopback sockets.
    pub fn spawn(cfg: DeviceConfig, mode: DeliveryMode) -> io::Result<TcpCluster> {
        let n = cfg.num_sites();
        let latency_ns = Arc::new(AtomicU64::new(0));
        let mut addrs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        let legacy: Vec<Arc<AtomicBool>> =
            (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect();
        for s in cfg.site_ids() {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            addrs.push(listener.local_addr()?);
            let replica = Replica::new(s, &cfg);
            let latency = Arc::clone(&latency_ns);
            let legacy_flag = Arc::clone(&legacy[s.index()]);
            let site = s.as_u32();
            handles.push(std::thread::spawn(move || {
                serve(replica, listener, latency, site, legacy_flag)
            }));
        }
        let mut conns = Vec::with_capacity(n);
        for addr in &addrs {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            conns.push(Mutex::new(SiteConn {
                stream,
                poisoned: false,
                trace_ok: true,
            }));
        }
        Ok(TcpCluster {
            states: RwLock::new(vec![SiteState::Available; n]),
            counter: TrafficCounter::new(),
            mode,
            addrs,
            conns,
            parallel: AtomicBool::new(true),
            early_quorum: AtomicBool::new(false),
            latency_ns,
            wire_tracing: AtomicBool::new(false),
            legacy,
            mux: (0..n).map(|_| RwLock::new(None)).collect(),
            muxed: AtomicBool::new(false),
            mux_readers: Mutex::new(Vec::new()),
            locks: BlockLockTable::new(),
            leases: LeaseTable::new(),
            handles,
            cfg,
        })
    }

    /// The socket address of site `s`'s server.
    pub fn addr(&self, s: SiteId) -> SocketAddr {
        self.addrs[s.index()]
    }

    /// Reads block `k`, coordinated by site `origin`.
    ///
    /// # Errors
    ///
    /// As for [`Cluster::read`](crate::Cluster::read).
    pub fn read(&self, origin: SiteId, k: BlockIndex) -> DeviceResult<BlockData> {
        protocol::read(self, origin, k)
    }

    /// Writes block `k`, coordinated by site `origin`.
    ///
    /// # Errors
    ///
    /// As for [`Cluster::write`](crate::Cluster::write).
    pub fn write(&self, origin: SiteId, k: BlockIndex, data: BlockData) -> DeviceResult<()> {
        protocol::write(self, origin, k, &data)
    }

    /// Reads a run of distinct blocks in one batched protocol round — one
    /// request frame per site for the whole run.
    ///
    /// # Errors
    ///
    /// As for [`read`](Self::read); the quorum check covers the batch.
    pub fn read_many(&self, origin: SiteId, ks: &[BlockIndex]) -> DeviceResult<Vec<BlockData>> {
        protocol::read_many(self, origin, ks)
    }

    /// Writes a run of distinct blocks in one batched protocol round — one
    /// request frame per site for the whole run.
    ///
    /// # Errors
    ///
    /// As for [`write`](Self::write); the quorum check covers the batch.
    pub fn write_many(
        &self,
        origin: SiteId,
        writes: &[(BlockIndex, BlockData)],
    ) -> DeviceResult<()> {
        protocol::write_many(self, origin, writes)
    }

    /// Fail-stops site `s` (it stops being contacted; its server and disk
    /// survive, like a halted machine).
    pub fn fail_site(&self, s: SiteId) {
        assert!(self.cfg.contains_site(s), "unknown site {s}");
        protocol::fail(self, s);
    }

    /// Restarts site `s` and runs the scheme's recovery.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not currently failed.
    pub fn repair_site(&self, s: SiteId) {
        assert!(self.cfg.contains_site(s), "unknown site {s}");
        assert_eq!(
            self.site_state(s),
            SiteState::Failed,
            "repairing a site that is not failed"
        );
        protocol::repair(self, s);
    }

    /// The state of site `s`.
    pub fn site_state(&self, s: SiteId) -> SiteState {
        self.states.read()[s.index()]
    }

    /// Whether the device is available under the scheme's criterion.
    pub fn is_available(&self) -> bool {
        protocol::is_available(self)
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// The §5 transmission counter.
    pub fn counter(&self) -> &TrafficCounter {
        &self.counter
    }

    /// Selects the fan-out mode for scatter exchanges. The default is
    /// [`FanoutMode::Parallel`] (request frames for the whole batch are
    /// pipelined: all written, then all replies read — one round trip
    /// instead of one per target); [`FanoutMode::Sequential`] restores the
    /// historical blocking per-target loop. The §5 message counts are
    /// identical either way.
    pub fn set_fanout(&self, mode: FanoutMode) {
        self.parallel
            .store(mode == FanoutMode::Parallel, Ordering::Relaxed);
    }

    /// The current fan-out mode.
    pub fn fanout(&self) -> FanoutMode {
        if self.parallel.load(Ordering::Relaxed) {
            FanoutMode::Parallel
        } else {
            FanoutMode::Sequential
        }
    }

    /// Enables or disables early-quorum vote collection. Since a pipelined
    /// batch already costs a single round trip, every reply in the batch is
    /// still read (and charged) synchronously — the toggle only narrows the
    /// voter set the coordinator builds on, exactly as on the other
    /// runtimes.
    pub fn set_early_quorum(&self, on: bool) {
        self.early_quorum.store(on, Ordering::Relaxed);
    }

    /// Emulates a one-way network link delay: every server sleeps `delay`
    /// before serving a frame (Shutdown is exempt). Zero — the default —
    /// disables the emulation. Under a nonzero delay a sequential fan-out
    /// pays one delay per target while a pipelined batch overlaps them on
    /// the servers; message counts are unaffected.
    pub fn set_link_latency(&self, delay: Duration) {
        self.latency_ns.store(
            delay.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }

    /// Enables or disables the wire trace envelope. Off (the default) is
    /// "untraced-peer mode": frames are byte-identical to an untraced
    /// build, which is what the runtime-parity suites pin. On, every
    /// request sent while a span context is live is wrapped in
    /// [`WireRequest::Traced`] so the servers emit child spans into the
    /// same causal tree.
    pub fn set_wire_tracing(&self, on: bool) {
        self.wire_tracing.store(on, Ordering::Relaxed);
    }

    /// Switches the coordinator between one-exchange-at-a-time connections
    /// and multiplexed ones. On, each site's connection is replaced by a
    /// [`MuxConn`]: requests carry per-connection ids under a bounded
    /// in-flight window ([`MUX_WINDOW`]) and a dedicated reader thread
    /// demultiplexes replies, so concurrent clients of one `TcpCluster`
    /// share each socket instead of serializing on it. Off restores the
    /// classic connections (the next RPC per site redials).
    ///
    /// Deadlock-freedom: a scatter submits to targets in ascending site
    /// order, so a client blocked on site `j`'s window only holds slots on
    /// sites `< j` — the wait graph is acyclic, and every held slot is
    /// released once the server (which always replies in order) answers.
    ///
    /// # Errors
    ///
    /// I/O errors from dialing the replacement connections; sites already
    /// multiplexed keep their connection.
    pub fn set_multiplexing(&self, on: bool) -> io::Result<()> {
        if on {
            // Installation walks sites in ascending order — the same
            // discipline every scatter follows — so a concurrent caller
            // taking the same slot locks cannot deadlock against us.
            let mut installed: Vec<usize> = Vec::new();
            for (i, slot) in self.mux.iter().enumerate() {
                debug_assert!(installed.last().is_none_or(|&prev| prev < i));
                installed.push(i);
                let mut slot = slot.write();
                if slot.is_some() {
                    continue;
                }
                // Retire the classic connection: hang it up so the server's
                // read loop falls back to `accept`, and poison it so a later
                // un-multiplexed checkout redials instead of reusing the
                // dead stream.
                {
                    let mut conn = self.conns[i].lock();
                    let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                    conn.poisoned = true;
                }
                let stream = TcpStream::connect(self.addrs[i])?;
                stream.set_nodelay(true)?;
                let read_half = stream.try_clone()?;
                let conn = Arc::new(MuxConn {
                    writer: Mutex::new((stream, 0)),
                    pending: Mutex::new(HashMap::new()),
                    window: (Mutex::new(MUX_WINDOW), Condvar::new()),
                    dead: AtomicBool::new(false),
                });
                let reader_conn = Arc::clone(&conn);
                self.mux_readers.lock().push(std::thread::spawn(move || {
                    mux_reader(read_half, &reader_conn)
                }));
                *slot = Some(conn);
            }
            self.muxed.store(true, Ordering::Relaxed);
        } else {
            self.muxed.store(false, Ordering::Relaxed);
            for slot in &self.mux {
                if let Some(conn) = slot.write().take() {
                    conn.dead.store(true, Ordering::Relaxed);
                    let _ = conn.writer.lock().0.shutdown(std::net::Shutdown::Both);
                }
            }
            for handle in self.mux_readers.lock().drain(..) {
                let _ = handle.join();
            }
        }
        Ok(())
    }

    /// Whether the coordinator's connections are currently multiplexed.
    pub fn multiplexing(&self) -> bool {
        self.muxed.load(Ordering::Relaxed)
    }

    /// Enables or disables coordinator-granted read leases (see
    /// [`crate::locks::LeaseTable`]). Off by default.
    pub fn set_leases(&self, on: bool) {
        self.leases.set_enabled(on);
    }

    /// Makes site `s`'s server behave like a build that predates the trace
    /// envelope: any [`WireRequest::Traced`] frame is treated as a decode
    /// error (hangup). Also resets the coordinator's cached `trace_ok`
    /// verdict for that site so a test can flip the flag both ways.
    pub fn set_untraced_peer(&self, s: SiteId, untraced: bool) {
        self.legacy[s.index()].store(untraced, Ordering::Relaxed);
        self.conns[s.index()].lock().trace_ok = true;
    }

    /// Wraps `request` in the trace envelope when wire tracing is on, the
    /// peer is not known to reject it, and a span context is live.
    fn trace_wrap(&self, conn: &SiteConn, request: WireRequest) -> (WireRequest, bool) {
        if self.wire_tracing.load(Ordering::Relaxed)
            && conn.trace_ok
            && blockrep_obs::enabled()
            && crate::obs_hooks::tracing()
        {
            if let Some(ctx) = blockrep_obs::trace::current() {
                return (
                    WireRequest::Traced {
                        trace_id: ctx.trace_id,
                        parent_span: ctx.span_id,
                        inner: Box::new(request),
                    },
                    true,
                );
            }
        }
        (request, false)
    }

    /// Locks site `to`'s connection, replacing the stream first if a torn
    /// frame poisoned it. Dropping the old stream hangs up the server's
    /// read loop, which then accepts this replacement.
    fn checkout(&self, to: SiteId) -> Option<MutexGuard<'_, SiteConn>> {
        let mut conn = self.conns[to.index()].lock();
        if conn.poisoned {
            let stream = TcpStream::connect(self.addrs[to.index()]).ok()?;
            let _ = stream.set_nodelay(true);
            conn.stream = stream;
            conn.poisoned = false;
            event!("tcp.conn.reopened", site = to.as_u32());
        }
        Some(conn)
    }

    /// One request/response exchange over a multiplexed connection: submit
    /// under a fresh id, block on the demuxed reply, return the window
    /// slot. `None` is "site unreachable", exactly as for a torn classic
    /// exchange.
    fn mux_rpc(&self, conn: &MuxConn, request: WireRequest) -> Option<WireResponse> {
        let rx = conn.submit(request)?;
        let reply = rx.recv().ok().flatten();
        conn.release_slot();
        reply
    }

    fn rpc(&self, to: SiteId, request: WireRequest) -> Option<WireResponse> {
        let _timer = crate::obs_hooks::timer(crate::obs_hooks::tcp_rpc_latency);
        if self.muxed.load(Ordering::Relaxed) {
            // Wire tracing is a classic-connection feature; mux frames go
            // bare (the parity suites pin untraced mode anyway).
            if let Some(conn) = self.mux[to.index()].read().clone() {
                return self.mux_rpc(&conn, request);
            }
        }
        let mut conn = self.checkout(to)?;
        let (framed, traced) = self.trace_wrap(&conn, request.clone());
        if let Some(response) = conn.exchange(to, &framed) {
            return Some(response);
        }
        if !traced {
            return None;
        }
        // The traced attempt died — most likely an untraced peer hanging up
        // on the unknown tag. Remember that and retry once bare; every
        // request sent through here is idempotent, so the replay is safe
        // even if the first frame was actually served.
        conn.trace_ok = false;
        drop(conn);
        event!("tcp.trace.fallback", site = to.as_u32());
        self.checkout(to)?.exchange(to, &request)
    }

    /// Whether the coordinator will contact `to` on behalf of `from`.
    fn reachable(&self, from: SiteId, to: SiteId) -> bool {
        let states = self.states.read();
        from == to || (states[from.index()].is_operational() && states[to.index()].is_operational())
    }

    /// Pipelined scatter: writes one request frame per reachable target —
    /// every request is on the wire before any reply is read — then gathers
    /// the replies in target order. Connections are locked in ascending
    /// site order, so concurrent scatters cannot deadlock. Early-quorum
    /// stragglers are drained synchronously here (a reply left on a socket
    /// would desync the next RPC) and truncated after the fact; the batch
    /// already costs a single round trip, so there is nobody to unblock.
    fn pipelined(
        &self,
        spec: ScatterSpec,
        origin: SiteId,
        targets: &[SiteId],
        request_for: impl Fn(SiteId) -> Option<WireRequest>,
        parse: impl Fn(WireResponse) -> Option<ScatterReply>,
    ) -> ScatterReplies {
        if self.muxed.load(Ordering::Relaxed) {
            return self.pipelined_mux(spec, origin, targets, &request_for, &parse);
        }
        // Satellite hoist: one `enabled()` load decides whether any obs
        // work happens in this batch; the disabled path records nothing.
        let obs_on = blockrep_obs::enabled();
        if obs_on {
            crate::obs_hooks::scatter_batch().record(targets.len() as u64);
        }
        let tracing = obs_on && crate::obs_hooks::tracing();
        // Per in-flight entry: the locked connection plus the bare request
        // kept around iff the frame went out traced (fallback replay).
        type InFlight<'a> = Option<(MutexGuard<'a, SiteConn>, Option<WireRequest>)>;
        let mut in_flight: Vec<(SiteId, InFlight<'_>)> = Vec::with_capacity(targets.len());
        for &t in targets {
            debug_assert!(
                in_flight.last().is_none_or(|&(prev, _)| prev < t),
                "scatter targets must ascend (lock ordering)"
            );
            let conn = if self.reachable(origin, t) {
                request_for(t).and_then(|request| {
                    let send_span = if tracing {
                        blockrep_obs::trace::start_phase(
                            crate::obs_hooks::phase_scatter_send(),
                            t.as_u32(),
                        )
                    } else {
                        None
                    };
                    let mut conn = self.checkout(t)?;
                    // The send span is the wire parent, so the server's
                    // remote_apply span lands under this site's send leg
                    // (a grandchild of the op — attribution sums direct
                    // children only and must not double-count it).
                    let (framed, traced) = match send_span.as_ref().map(|s| s.context()) {
                        Some(ctx) if self.wire_tracing.load(Ordering::Relaxed) && conn.trace_ok => {
                            (
                                WireRequest::Traced {
                                    trace_id: ctx.trace_id,
                                    parent_span: ctx.span_id,
                                    inner: Box::new(request.clone()),
                                },
                                true,
                            )
                        }
                        _ => (request.clone(), false),
                    };
                    if wire::write_frame(&mut conn.stream, &framed.encode()).is_ok() {
                        Some((conn, traced.then_some(request)))
                    } else {
                        conn.poison(t);
                        None
                    }
                })
            } else {
                None
            };
            in_flight.push((t, conn));
        }
        // Gather in target order. A traced frame that dies here is retried
        // bare *after* the loop (all guards released first — re-locking a
        // lower site while holding higher ones would break the ascending
        // lock order that makes concurrent scatters deadlock-free).
        let mut replies: ScatterReplies = Vec::with_capacity(targets.len());
        let mut retries: Vec<(usize, SiteId, WireRequest)> = Vec::new();
        for (i, (t, conn)) in in_flight.into_iter().enumerate() {
            let reply = conn.and_then(|(mut conn, bare)| {
                let gather_span = if tracing {
                    blockrep_obs::trace::start_phase(
                        crate::obs_hooks::phase_gather_wait(),
                        t.as_u32(),
                    )
                } else {
                    None
                };
                let response = wire::read_frame(&mut conn.stream)
                    .ok()
                    .and_then(|frame| WireResponse::decode(&frame).ok());
                drop(gather_span);
                if response.is_none() {
                    conn.poison(t);
                    if let Some(bare) = bare {
                        conn.trace_ok = false;
                        retries.push((i, t, bare));
                    }
                }
                response.and_then(&parse)
            });
            replies.push((t, reply));
        }
        for (i, t, bare) in retries {
            event!("tcp.trace.fallback", site = t.as_u32());
            replies[i].1 = self
                .checkout(t)
                .and_then(|mut conn| conn.exchange(t, &bare))
                .and_then(&parse);
        }
        if let Some(kind) = spec.reply_charge {
            let gathered = replies.iter().filter(|(_, r)| r.is_some()).count() as u64;
            self.counter
                .add_many(spec.op, kind, spec.reply_units, gathered);
        }
        backend::truncate_to_threshold(&self.cfg, &mut replies, spec.gather);
        // On this runtime the whole batch is one round trip, so the "cut"
        // is the post-hoc truncation above; mark where it landed.
        if tracing && matches!(spec.gather, Gather::EarlyQuorum { .. }) {
            blockrep_obs::trace::instant(
                crate::obs_hooks::phase_early_quorum_cut(),
                origin.as_u32(),
            );
        }
        replies
    }

    /// Multiplexed scatter: submits one [`WireRequest::Mux`] frame per
    /// reachable target — acquiring window slots in ascending site order,
    /// the same discipline as [`pipelined`](Self::pipelined)'s connection
    /// locks, so concurrent scatters cannot form a wait cycle — then
    /// gathers the demuxed replies in target order. §5 message counts are
    /// identical to the other fan-out modes.
    fn pipelined_mux(
        &self,
        spec: ScatterSpec,
        origin: SiteId,
        targets: &[SiteId],
        request_for: &dyn Fn(SiteId) -> Option<WireRequest>,
        parse: &dyn Fn(WireResponse) -> Option<ScatterReply>,
    ) -> ScatterReplies {
        if blockrep_obs::enabled() {
            crate::obs_hooks::scatter_batch().record(targets.len() as u64);
        }
        type Slot = Option<(Arc<MuxConn>, Receiver<Option<WireResponse>>)>;
        let mut in_flight: Vec<(SiteId, Slot)> = Vec::with_capacity(targets.len());
        for &t in targets {
            debug_assert!(
                in_flight.last().is_none_or(|(prev, _)| *prev < t),
                "scatter targets must ascend (lock ordering)"
            );
            let slot = if self.reachable(origin, t) {
                request_for(t).and_then(|request| {
                    let conn = self.mux[t.index()].read().clone()?;
                    let rx = conn.submit(request)?;
                    Some((conn, rx))
                })
            } else {
                None
            };
            in_flight.push((t, slot));
        }
        let mut replies: ScatterReplies = Vec::with_capacity(targets.len());
        for (t, slot) in in_flight {
            let reply = slot.and_then(|(conn, rx)| {
                let response = rx.recv().ok().flatten();
                conn.release_slot();
                response.and_then(parse)
            });
            replies.push((t, reply));
        }
        if let Some(kind) = spec.reply_charge {
            let gathered = replies.iter().filter(|(_, r)| r.is_some()).count() as u64;
            self.counter
                .add_many(spec.op, kind, spec.reply_units, gathered);
        }
        backend::truncate_to_threshold(&self.cfg, &mut replies, spec.gather);
        replies
    }
}

impl Backend for TcpCluster {
    fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    fn delivery_mode(&self) -> DeliveryMode {
        self.mode
    }

    fn counter(&self) -> &TrafficCounter {
        &self.counter
    }

    fn early_quorum(&self) -> bool {
        self.early_quorum.load(Ordering::Relaxed)
    }

    fn local_state(&self, s: SiteId) -> SiteState {
        self.states.read()[s.index()]
    }

    fn set_local_state(&self, s: SiteId, state: SiteState) {
        self.states.write()[s.index()] = state;
    }

    fn probe_state(&self, from: SiteId, to: SiteId) -> Option<SiteState> {
        if from != to && !self.reachable(from, to) {
            return None;
        }
        let state = self.states.read()[to.index()];
        state.is_operational().then_some(state)
    }

    fn vote(&self, from: SiteId, to: SiteId, k: BlockIndex) -> Option<VersionNumber> {
        if from != to && !self.reachable(from, to) {
            return None;
        }
        match self.rpc(to, WireRequest::Vote(k))? {
            WireResponse::Version(v) => Some(v),
            _ => None,
        }
    }

    fn fetch_block(
        &self,
        from: SiteId,
        to: SiteId,
        k: BlockIndex,
    ) -> Option<(VersionNumber, BlockData)> {
        if from != to && !self.reachable(from, to) {
            return None;
        }
        match self.rpc(to, WireRequest::Fetch(k))? {
            WireResponse::Block(v, data) => Some((v, data)),
            _ => None,
        }
    }

    fn fetch_lease(
        &self,
        from: SiteId,
        to: SiteId,
        k: BlockIndex,
    ) -> Option<(VersionNumber, BlockData)> {
        if from != to && !self.reachable(from, to) {
            return None;
        }
        match self.rpc(to, WireRequest::FetchLease(k))? {
            WireResponse::Block(v, data) => Some((v, data)),
            _ => None,
        }
    }

    fn block_locks(&self) -> &BlockLockTable {
        &self.locks
    }

    fn leases(&self) -> &LeaseTable {
        &self.leases
    }

    fn apply_write(
        &self,
        from: SiteId,
        to: SiteId,
        k: BlockIndex,
        data: &BlockData,
        v: VersionNumber,
    ) -> bool {
        if from != to && !self.reachable(from, to) {
            return false;
        }
        matches!(
            self.rpc(to, WireRequest::ApplyWrite(k, v, data.clone())),
            Some(WireResponse::Ack)
        )
    }

    fn read_local(&self, s: SiteId, k: BlockIndex) -> BlockData {
        match self.rpc(s, WireRequest::ReadLocal(k)) {
            Some(WireResponse::Data(data)) => data,
            other => unreachable!("a site can always read its own disk (got {other:?})"),
        }
    }

    fn read_local_many(&self, s: SiteId, ks: &[BlockIndex]) -> Vec<BlockData> {
        match self.rpc(s, WireRequest::ReadLocalMany(ks.to_vec())) {
            Some(WireResponse::DataMany(ds)) if ds.len() == ks.len() => ds,
            other => unreachable!("a site can always read its own disk (got {other:?})"),
        }
    }

    fn version_vector(&self, from: SiteId, to: SiteId) -> Option<VersionVector> {
        if from != to && !self.reachable(from, to) {
            return None;
        }
        match self.rpc(to, WireRequest::VersionVector)? {
            WireResponse::Vector(vv) => Some(vv),
            _ => None,
        }
    }

    fn repair_payload(
        &self,
        from: SiteId,
        to: SiteId,
        vv: &VersionVector,
    ) -> Option<(VersionVector, RepairBlocks)> {
        if from != to && !self.reachable(from, to) {
            return None;
        }
        match self.rpc(to, WireRequest::RepairPayload(vv.clone()))? {
            WireResponse::Payload(vv, blocks) => Some((vv, blocks)),
            _ => None,
        }
    }

    fn apply_repair_local(&self, s: SiteId, blocks: RepairBlocks) -> usize {
        let n = blocks.len();
        match self.rpc(s, WireRequest::ApplyRepair(blocks)) {
            Some(WireResponse::Ack) => n,
            _ => 0,
        }
    }

    fn was_available(&self, from: SiteId, to: SiteId) -> Option<BTreeSet<SiteId>> {
        if from != to && !self.reachable(from, to) {
            return None;
        }
        match self.rpc(to, WireRequest::GetW)? {
            WireResponse::W(w) => Some(w),
            _ => None,
        }
    }

    fn set_was_available(&self, from: SiteId, to: SiteId, w: &BTreeSet<SiteId>) -> bool {
        if from != to && !self.reachable(from, to) {
            return false;
        }
        matches!(
            self.rpc(to, WireRequest::SetW(w.clone())),
            Some(WireResponse::Ack)
        )
    }

    fn add_was_available(&self, from: SiteId, to: SiteId, member: SiteId) -> bool {
        if from != to && !self.reachable(from, to) {
            return false;
        }
        matches!(
            self.rpc(to, WireRequest::AddW(member)),
            Some(WireResponse::Ack)
        )
    }

    fn apply_write_faulty(
        &self,
        from: SiteId,
        to: SiteId,
        k: BlockIndex,
        data: &BlockData,
        v: VersionNumber,
        fault: blockrep_storage::StorageFault,
    ) -> bool {
        if from != to && !self.reachable(from, to) {
            return false;
        }
        matches!(
            self.rpc(to, WireRequest::ApplyWriteFaulty(k, v, data.clone(), fault)),
            Some(WireResponse::Ack)
        )
    }

    fn scrub_local(&self, s: SiteId) -> usize {
        match self.rpc(s, WireRequest::Scrub) {
            Some(WireResponse::Count(n)) => n as usize,
            _ => 0,
        }
    }

    fn vote_many(&self, from: SiteId, to: SiteId, ks: &[BlockIndex]) -> Option<Vec<VersionNumber>> {
        if from != to && !self.reachable(from, to) {
            return None;
        }
        match self.rpc(to, WireRequest::VoteMany(ks.to_vec()))? {
            WireResponse::Versions(vs) if vs.len() == ks.len() => Some(vs),
            _ => None,
        }
    }

    fn apply_write_many(&self, from: SiteId, to: SiteId, writes: &WriteBatch) -> bool {
        if from != to && !self.reachable(from, to) {
            return false;
        }
        matches!(
            self.rpc(to, WireRequest::ApplyWriteMany(writes.clone())),
            Some(WireResponse::Ack)
        )
    }

    fn scatter(
        &self,
        spec: ScatterSpec,
        origin: SiteId,
        targets: &[SiteId],
        req: &ScatterRequest,
    ) -> ScatterReplies {
        if !self.parallel.load(Ordering::Relaxed) {
            return backend::scatter_sequential(self, spec, origin, targets, req);
        }
        match req {
            ScatterRequest::Vote(k) => self.pipelined(
                spec,
                origin,
                targets,
                |_| Some(WireRequest::Vote(*k)),
                |resp| match resp {
                    WireResponse::Version(v) => Some(ScatterReply::Version(v)),
                    _ => None,
                },
            ),
            ScatterRequest::VersionVector => self.pipelined(
                spec,
                origin,
                targets,
                |_| Some(WireRequest::VersionVector),
                |resp| match resp {
                    WireResponse::Vector(vv) => Some(ScatterReply::Vector(vv)),
                    _ => None,
                },
            ),
            ScatterRequest::Install { k, v, data } => self.pipelined(
                spec,
                origin,
                targets,
                |_| Some(WireRequest::ApplyWrite(*k, *v, data.clone())),
                |resp| matches!(resp, WireResponse::Ack).then_some(ScatterReply::Delivered),
            ),
            ScatterRequest::InstallIfAvailable { k, v, data } => self.pipelined(
                spec,
                origin,
                targets,
                // The availability probe is a coordination-layer state read
                // (no socket traffic), exactly as in the sequential body.
                |t| {
                    (self.probe_state(origin, t) == Some(SiteState::Available))
                        .then(|| WireRequest::ApplyWrite(*k, *v, data.clone()))
                },
                |resp| matches!(resp, WireResponse::Ack).then_some(ScatterReply::Delivered),
            ),
            ScatterRequest::VoteMany(ks) => self.pipelined(
                spec,
                origin,
                targets,
                |_| Some(WireRequest::VoteMany(ks.clone())),
                |resp| match resp {
                    WireResponse::Versions(vs) if vs.len() == ks.len() => {
                        Some(ScatterReply::Versions(vs))
                    }
                    _ => None,
                },
            ),
            ScatterRequest::InstallMany(writes) => self.pipelined(
                spec,
                origin,
                targets,
                |_| Some(WireRequest::ApplyWriteMany(writes.clone())),
                |resp| matches!(resp, WireResponse::Ack).then_some(ScatterReply::Delivered),
            ),
            ScatterRequest::InstallIfAvailableMany(writes) => self.pipelined(
                spec,
                origin,
                targets,
                // The availability probe is a coordination-layer state read
                // (no socket traffic), exactly as in the sequential body.
                |t| {
                    (self.probe_state(origin, t) == Some(SiteState::Available))
                        .then(|| WireRequest::ApplyWriteMany(writes.clone()))
                },
                |resp| matches!(resp, WireResponse::Ack).then_some(ScatterReply::Delivered),
            ),
            // Pure state probes never touch a socket; the sequential body
            // is already instantaneous.
            ScatterRequest::ProbeState => {
                backend::scatter_sequential(self, spec, origin, targets, req)
            }
        }
    }
}

impl Drop for TcpCluster {
    fn drop(&mut self) {
        // Tear down any mux connections first: their servers fall back to
        // `accept`, and the corresponding classic connections were poisoned
        // when multiplexing came on, so the loop below delivers Shutdown
        // over fresh streams. (The off-path never errors.)
        let _ = self.set_multiplexing(false);
        for (i, conn) in self.conns.iter().enumerate() {
            let mut conn = conn.lock();
            if conn.poisoned {
                // The healthy stream is gone. Hang up the old one so the
                // server falls back to `accept`, then deliver Shutdown over
                // a fresh connection.
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                if let Ok(mut stream) = TcpStream::connect(self.addrs[i]) {
                    let _ = wire::write_frame(&mut stream, &WireRequest::Shutdown.encode());
                }
            } else {
                let _ = wire::write_frame(&mut conn.stream, &WireRequest::Shutdown.encode());
            }
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for TcpCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpCluster")
            .field("sites", &self.cfg.num_sites())
            .field("scheme", &self.cfg.scheme())
            .field("addrs", &self.addrs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockrep_types::Scheme;

    fn sid(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn tcp(scheme: Scheme, n: usize) -> TcpCluster {
        let cfg = DeviceConfig::builder(scheme)
            .sites(n)
            .num_blocks(4)
            .block_size(32)
            .build()
            .unwrap();
        TcpCluster::spawn(cfg, DeliveryMode::Multicast).unwrap()
    }

    #[test]
    fn tcp_write_read_roundtrip_all_schemes() {
        for scheme in Scheme::ALL {
            let c = tcp(scheme, 3);
            let k = BlockIndex::new(1);
            c.write(sid(0), k, BlockData::from(vec![9; 32])).unwrap();
            for i in 0..3 {
                assert_eq!(c.read(sid(i), k).unwrap().as_slice(), &[9; 32], "{scheme}");
            }
        }
    }

    #[test]
    fn tcp_failure_and_recovery() {
        let c = tcp(Scheme::AvailableCopy, 3);
        let k = BlockIndex::new(0);
        c.write(sid(0), k, BlockData::from(vec![1; 32])).unwrap();
        c.fail_site(sid(2));
        c.write(sid(0), k, BlockData::from(vec![2; 32])).unwrap();
        c.repair_site(sid(2));
        assert_eq!(c.site_state(sid(2)), SiteState::Available);
        assert_eq!(c.read(sid(2), k).unwrap().as_slice(), &[2; 32]);
    }

    #[test]
    fn tcp_total_failure_naive_waits_for_all() {
        let c = tcp(Scheme::NaiveAvailableCopy, 3);
        c.write(sid(0), BlockIndex::new(0), BlockData::from(vec![7; 32]))
            .unwrap();
        for i in 0..3 {
            c.fail_site(sid(i));
        }
        c.repair_site(sid(2));
        assert!(!c.is_available());
        c.repair_site(sid(0));
        c.repair_site(sid(1));
        assert!(c.is_available());
        assert_eq!(
            c.read(sid(0), BlockIndex::new(0)).unwrap().as_slice(),
            &[7; 32]
        );
    }

    #[test]
    fn tcp_voting_quorum() {
        let c = tcp(Scheme::Voting, 3);
        c.fail_site(sid(1));
        c.fail_site(sid(2));
        assert!(c.read(sid(0), BlockIndex::new(0)).is_err());
        c.repair_site(sid(1));
        assert!(c.read(sid(0), BlockIndex::new(0)).is_ok());
    }

    #[test]
    fn shutdown_is_clean() {
        let c = tcp(Scheme::Voting, 4);
        c.write(sid(0), BlockIndex::new(0), BlockData::from(vec![1; 32]))
            .unwrap();
        drop(c); // joins all server threads without hanging
    }

    #[test]
    fn addresses_are_distinct_loopback_ports() {
        let c = tcp(Scheme::Voting, 3);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..3 {
            let addr = c.addr(sid(i));
            assert!(addr.ip().is_loopback());
            assert!(seen.insert(addr), "duplicate {addr}");
        }
    }

    #[test]
    fn torn_frame_poisons_the_connection_and_the_next_rpc_reconnects() {
        let c = tcp(Scheme::Voting, 3);
        let k = BlockIndex::new(0);
        c.write(sid(0), k, BlockData::from(vec![3; 32])).unwrap();
        // Corrupt the conversation with site 1: the server rejects the
        // frame and hangs up, so the next exchange on this stream tears.
        wire::write_frame(&mut c.conns[1].lock().stream, &[0xFF]).unwrap();
        assert_eq!(
            c.vote(sid(0), sid(1), k),
            None,
            "the torn exchange must fail fast, not desync"
        );
        assert!(c.conns[1].lock().poisoned);
        // The next exchange replaces the stream and succeeds.
        assert_eq!(c.vote(sid(0), sid(1), k), Some(VersionNumber::new(1)));
        assert!(!c.conns[1].lock().poisoned);
        // End-to-end traffic over the recovered connection still works.
        c.write(sid(2), k, BlockData::from(vec![4; 32])).unwrap();
        assert_eq!(c.read(sid(1), k).unwrap().as_slice(), &[4; 32]);
    }

    #[test]
    fn mux_and_classic_agree_on_results_and_traffic() {
        for scheme in Scheme::ALL {
            let mux = tcp(scheme, 4);
            mux.set_multiplexing(true).unwrap();
            assert!(mux.multiplexing());
            let plain = tcp(scheme, 4);
            for c in [&mux, &plain] {
                let k = BlockIndex::new(2);
                c.write(sid(0), k, BlockData::from(vec![8; 32])).unwrap();
                c.fail_site(sid(1));
                c.write(sid(2), k, BlockData::from(vec![9; 32])).unwrap();
                c.repair_site(sid(1));
                assert_eq!(c.read(sid(1), k).unwrap().as_slice(), &[9; 32], "{scheme}");
            }
            assert_eq!(
                mux.counter().snapshot(),
                plain.counter().snapshot(),
                "{scheme}: multiplexing must not change §5 counts"
            );
        }
    }

    #[test]
    fn mux_survives_toggling_and_concurrent_clients() {
        let c = Arc::new(tcp(Scheme::Voting, 3));
        let k = BlockIndex::new(0);
        c.write(sid(0), k, BlockData::from(vec![1; 32])).unwrap();
        c.set_multiplexing(true).unwrap();
        // Many clients share the multiplexed sockets; every read must see a
        // committed value (one of the concurrently written ones).
        let writers: Vec<_> = (0..4u8)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for round in 0..8u8 {
                        let k = BlockIndex::new(u64::from(i % 4));
                        let fill = i.wrapping_mul(16).wrapping_add(round);
                        c.write(sid(u32::from(i) % 3), k, BlockData::from(vec![fill; 32]))
                            .unwrap();
                        let got = c.read(sid((u32::from(i) + 1) % 3), k).unwrap();
                        assert_eq!(got.len(), 32);
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        // Back to classic connections: the coordinator redials per site and
        // traffic keeps flowing.
        c.set_multiplexing(false).unwrap();
        assert!(!c.multiplexing());
        c.write(sid(1), k, BlockData::from(vec![5; 32])).unwrap();
        assert_eq!(c.read(sid(2), k).unwrap().as_slice(), &[5; 32]);
    }

    #[test]
    fn parallel_and_sequential_fanout_agree_on_results_and_traffic() {
        for scheme in Scheme::ALL {
            let par = tcp(scheme, 4);
            let seq = tcp(scheme, 4);
            seq.set_fanout(FanoutMode::Sequential);
            assert_eq!(par.fanout(), FanoutMode::Parallel);
            for c in [&par, &seq] {
                let k = BlockIndex::new(2);
                c.write(sid(0), k, BlockData::from(vec![8; 32])).unwrap();
                c.fail_site(sid(1));
                c.write(sid(2), k, BlockData::from(vec![9; 32])).unwrap();
                c.repair_site(sid(1));
                assert_eq!(c.read(sid(1), k).unwrap().as_slice(), &[9; 32], "{scheme}");
            }
            assert_eq!(
                par.counter().snapshot(),
                seq.counter().snapshot(),
                "{scheme}: fan-out mode must not change §5 counts"
            );
        }
    }
}
