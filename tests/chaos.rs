//! Chaos suite: seeded fault schedules replayed on all three runtimes
//! (`cargo test -q chaos` selects everything here).
//!
//! Each seed generates one script — workload plus per-exchange faults —
//! and `chaos::run_seed` replays it on the deterministic, live-threaded
//! and TCP clusters, checking the one-copy oracle on every read and
//! byte-identical outcome parity across the runtimes. A failure prints the
//! seed and the shrunk minimal schedule.

use blockrep::core::backend::Backend;
use blockrep::core::chaos::{self, ChaosStep};
use blockrep::core::fault::FaultKind;
use blockrep::core::scenario::Action;
use blockrep::core::{Cluster, ClusterOptions};
use blockrep::types::{BlockData, BlockIndex, Scheme, SiteId, SiteState};

fn sid(i: u32) -> SiteId {
    SiteId::new(i)
}

fn blk(i: u64) -> BlockIndex {
    BlockIndex::new(i)
}

/// Seeds per scheme; CI runs the same matrix via `blockrep chaos`.
const SEEDS: u64 = 8;
const STEPS: usize = 40;

fn run_matrix(scheme: Scheme) {
    for seed in 0..SEEDS {
        if let Err(failure) = chaos::run_seed(seed, scheme, STEPS) {
            panic!("{failure}");
        }
    }
}

#[test]
fn chaos_voting_seed_matrix() {
    run_matrix(Scheme::Voting);
}

#[test]
fn chaos_available_copy_seed_matrix() {
    run_matrix(Scheme::AvailableCopy);
}

#[test]
fn chaos_naive_seed_matrix() {
    run_matrix(Scheme::NaiveAvailableCopy);
}

/// The journaled seed matrix: the same schedules, but every site runs a
/// write-ahead journal, and the oracle tightens to durable-by-§3.2 —
/// a restart scrub replays acknowledged installs instead of zeroing them,
/// so a block that once reached full agreement may never revert.
#[test]
fn chaos_journaled_seed_matrix() {
    for scheme in Scheme::ALL {
        for seed in 0..SEEDS {
            if let Err(failure) = chaos::run_seed_with(seed, scheme, STEPS, true) {
                panic!("{failure}");
            }
        }
    }
}

/// The leased seed matrix — the one-copy oracle with Harmonia-style read
/// offload switched on across all three runtimes. Leases change how many
/// messages a read costs, never what it may return, so the identical
/// oracle must hold; the leased generator additionally schedules
/// `StaleLease` faults that the lease path's version check must catch.
#[test]
fn chaos_leased_seed_matrix() {
    for scheme in Scheme::ALL {
        for seed in 0..SEEDS {
            if let Err(failure) = chaos::run_seed_opts(seed, scheme, STEPS, false, true) {
                panic!("{failure}");
            }
        }
    }
}

/// The lease flag must not change the generated workload shape: with
/// leases off the output is bit-identical to `generate`, and with leases
/// on only fault *kinds* may differ (same actions, same fault addresses) —
/// that is what makes a leased/unleased A-B comparison of a seed honest.
#[test]
fn chaos_leased_generation_only_relabels_fault_kinds() {
    for scheme in Scheme::ALL {
        let plain = chaos::generate(7, scheme, STEPS);
        let off = chaos::generate_with(7, scheme, STEPS, false);
        assert_eq!(
            plain.steps, off.steps,
            "{scheme}: leases=false must be identity"
        );
        let on = chaos::generate_with(7, scheme, STEPS, true);
        assert_eq!(plain.steps.len(), on.steps.len());
        for (a, b) in plain.steps.iter().zip(&on.steps) {
            assert_eq!(a.action, b.action, "{scheme}: workload shape changed");
            let addrs = |s: &ChaosStep| s.faults.iter().map(|&(x, _)| x).collect::<Vec<_>>();
            assert_eq!(addrs(a), addrs(b), "{scheme}: fault addresses changed");
        }
    }
}

/// A hand-written stale-lease schedule: a clean voting write grants the
/// block's lease to every replica; the next read routes its one-round
/// offload to a remote holder whose answer the `StaleLease` fault rewinds
/// to the pre-write version. The version check must revoke the lease and
/// fall back to the quorum path, so the read still returns the current
/// value — on all three runtimes, leases on.
#[test]
fn chaos_stale_lease_holder_is_caught_and_quorum_prevails() {
    let cfg = blockrep::types::DeviceConfig::builder(Scheme::Voting)
        .sites(3)
        .num_blocks(2)
        .block_size(8)
        .build()
        .unwrap();
    let script = vec![
        ChaosStep {
            action: Action::Write {
                origin: sid(0),
                block: blk(1),
                fill: 0x11,
            },
            faults: vec![],
        },
        ChaosStep {
            // Holders of block 1's lease are {0, 1, 2}; origin 0 routes the
            // offloaded read to holder (0 + 1) % 3 = site 1, so exchange 0
            // is the lease fetch — rewind its reported version.
            action: Action::Read {
                origin: sid(0),
                block: blk(1),
            },
            faults: vec![(0, FaultKind::StaleLease)],
        },
        ChaosStep {
            action: Action::Read {
                origin: sid(2),
                block: blk(1),
            },
            faults: vec![],
        },
    ];
    chaos::check_with(&cfg, &script, true).unwrap();
    // Pin the endgame on the deterministic runtime: the stale answer was
    // discarded and the quorum fallback served the current value.
    let rt = Cluster::new(cfg, ClusterOptions::default());
    rt.set_leases(true);
    chaos::run_on(&rt, &script).unwrap();
    assert_eq!(rt.read(sid(0), blk(1)).unwrap().as_slice(), &[0x11; 8]);
}

/// The same seed must generate the same script, bit for bit — otherwise a
/// printed failing seed is not replayable.
#[test]
fn chaos_generation_is_deterministic() {
    for scheme in Scheme::ALL {
        let a = chaos::generate(42, scheme, STEPS);
        let b = chaos::generate(42, scheme, STEPS);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.cfg.num_sites(), b.cfg.num_sites());
    }
}

/// A hand-written crash-mid-write schedule: the coordinator of a voting
/// write crashes after reaching only part of its fan-out. Quorum reads must
/// then settle on *one* of old/new — every surviving reader sees the same
/// uniform value, never a byte-mix — which is exactly the §3.1 quorum
/// intersection argument under an interrupted write.
#[test]
fn chaos_crash_mid_write_reads_old_or_new_never_a_mix() {
    for crash_exchange in 0..8 {
        let script = vec![
            ChaosStep {
                action: Action::Write {
                    origin: sid(0),
                    block: blk(0),
                    fill: 0x11,
                },
                faults: vec![],
            },
            ChaosStep {
                // The coordinator dies `crash_exchange` exchanges into the
                // write of 0x22 (vote collection, then update fan-out).
                action: Action::Write {
                    origin: sid(0),
                    block: blk(0),
                    fill: 0x22,
                },
                faults: vec![(crash_exchange, FaultKind::CrashCoordinator)],
            },
            ChaosStep {
                action: Action::Read {
                    origin: sid(1),
                    block: blk(0),
                },
                faults: vec![],
            },
            ChaosStep {
                action: Action::Read {
                    origin: sid(2),
                    block: blk(0),
                },
                faults: vec![],
            },
        ];
        let cfg = blockrep::types::DeviceConfig::builder(Scheme::Voting)
            .sites(3)
            .num_blocks(1)
            .block_size(8)
            .build()
            .unwrap();
        // The generic harness checks uniformity and history membership…
        chaos::check(&cfg, &script).unwrap_or_else(|e| panic!("x{crash_exchange}: {e}"));
        // …and on the deterministic runtime we additionally pin down that
        // the two surviving quorum readers agree with each other.
        let rt = Cluster::new(cfg, ClusterOptions::default());
        let outcome = chaos::run_on(&rt, &script).unwrap();
        let r1 = rt.read(sid(1), blk(0)).unwrap();
        let r2 = rt.read(sid(2), blk(0)).unwrap();
        assert_eq!(
            r1.as_slice(),
            r2.as_slice(),
            "x{crash_exchange}: quorum readers disagree after crash-mid-write\n{}",
            outcome.log.join("\n")
        );
        assert!(
            r1.as_slice() == [0x11; 8] || r1.as_slice() == [0x22; 8],
            "x{crash_exchange}: read returned neither old nor new: {:02x?}",
            r1.as_slice()
        );
    }
}

/// Regression for scatter-time exchange pinning: the live and TCP runtimes
/// fan writes out concurrently by default, but `FaultyBackend` inherits the
/// sequential `Backend::scatter` body, so a `(op, exchange)` drop lands on
/// the *same* vote on every runtime. Exchange 1 of a 4-site voting write is
/// always site 2's vote request — dropping it shrinks the install fan-out
/// identically everywhere, and `chaos::check` asserts byte-identical
/// outcome parity across all three runtimes (spawned in their default,
/// parallel fan-out mode).
#[test]
fn chaos_dropped_vote_in_parallel_fanout_is_pinned_across_runtimes() {
    let cfg = blockrep::types::DeviceConfig::builder(Scheme::Voting)
        .sites(4)
        .num_blocks(1)
        .block_size(8)
        .build()
        .unwrap();
    let script = vec![
        ChaosStep {
            action: Action::Write {
                origin: sid(0),
                block: blk(0),
                fill: 0x55,
            },
            faults: vec![],
        },
        ChaosStep {
            // Votes to s1/s2/s3 are exchanges 0/1/2; drop s2's.
            action: Action::Write {
                origin: sid(0),
                block: blk(0),
                fill: 0x66,
            },
            faults: vec![(1, FaultKind::DropMessage)],
        },
        ChaosStep {
            // s2 missed the install; its quorum read must still settle on
            // the current value via v_max.
            action: Action::Read {
                origin: sid(2),
                block: blk(0),
            },
            faults: vec![],
        },
        ChaosStep {
            action: Action::Read {
                origin: sid(1),
                block: blk(0),
            },
            faults: vec![],
        },
    ];
    chaos::check(&cfg, &script).unwrap();
    let rt = Cluster::new(cfg, ClusterOptions::default());
    chaos::run_on(&rt, &script).unwrap();
    assert_eq!(rt.read(sid(2), blk(0)).unwrap().as_slice(), &[0x66; 8]);
}

/// §3 recovery contrast after a **total** failure: available copy is back
/// as soon as the closure `C*(W_s)` has recovered — here the last two
/// sites to fail — while naive available copy stays down until *every*
/// site has returned.
#[test]
fn chaos_total_failure_ac_closure_recovers_before_nac() {
    let build = |scheme| {
        let cfg = blockrep::types::DeviceConfig::builder(scheme)
            .sites(4)
            .num_blocks(2)
            .block_size(8)
            .build()
            .unwrap();
        Cluster::new(cfg, ClusterOptions::default())
    };
    let drive = |c: &Cluster| {
        c.write(sid(0), blk(0), BlockData::from(vec![1; 8]))
            .unwrap();
        c.fail_site(sid(3)); // survivors {0,1,2} refresh W
        c.fail_site(sid(2)); // survivors {0,1} refresh W
        c.write(sid(0), blk(0), BlockData::from(vec![2; 8]))
            .unwrap();
        c.fail_site(sid(1));
        c.fail_site(sid(0)); // total failure; last writers were {0,1}
    };

    let ac = build(Scheme::AvailableCopy);
    drive(&ac);
    // Failure tracking shrank W to the survivors at each crash, so site 1's
    // closure C*(W_1) = {0, 1} — site 1 alone must keep waiting…
    ac.repair_site(sid(1));
    assert!(
        !ac.is_available(),
        "site 1's closure includes the last site to fail — not yet"
    );
    assert_eq!(ac.site_state(sid(1)), SiteState::Comatose);
    // …but site 0 was the *last* to fail: C*(W_0) = {0}, so it restarts
    // service single-handedly, and the sweep then pulls site 1 back in.
    ac.repair_site(sid(0));
    assert!(
        ac.is_available(),
        "closure C*(W) recovered — available copy must be back"
    );
    assert_eq!(ac.read(sid(0), blk(0)).unwrap().as_slice(), &[2; 8]);
    assert_eq!(ac.read(sid(1), blk(0)).unwrap().as_slice(), &[2; 8]);
    // …while sites 2 and 3 are still down.
    assert_eq!(ac.site_state(sid(2)), SiteState::Failed);
    assert_eq!(ac.site_state(sid(3)), SiteState::Failed);

    let nac = build(Scheme::NaiveAvailableCopy);
    drive(&nac);
    nac.repair_site(sid(0));
    nac.repair_site(sid(1));
    assert!(
        !nac.is_available(),
        "naive cannot certify the last site to fail — must stay comatose"
    );
    assert_eq!(nac.site_state(sid(0)), SiteState::Comatose);
    nac.repair_site(sid(2));
    assert!(!nac.is_available());
    nac.repair_site(sid(3)); // the last absentee returns
    assert!(nac.is_available());
    assert_eq!(nac.read(sid(1), blk(0)).unwrap().as_slice(), &[2; 8]);
}

/// Storage faults surface in the schedule runner: a torn write crashes the
/// target, the restart scrub wipes the broken block, and repair restores
/// the current value — end to end over all three runtimes.
#[test]
fn chaos_torn_write_is_scrubbed_and_repaired() {
    let cfg = blockrep::types::DeviceConfig::builder(Scheme::AvailableCopy)
        .sites(3)
        .num_blocks(1)
        .block_size(8)
        .build()
        .unwrap();
    let script = vec![
        ChaosStep {
            action: Action::Write {
                origin: sid(0),
                block: blk(0),
                fill: 0x33,
            },
            faults: vec![],
        },
        ChaosStep {
            // Exchange 1 is the write update to site 1: its disk tears
            // half-way through the install and it crashes.
            action: Action::Write {
                origin: sid(0),
                block: blk(0),
                fill: 0x44,
            },
            faults: vec![(1, FaultKind::TornWrite { keep: 4 })],
        },
        ChaosStep {
            action: Action::Repair(sid(1)),
            faults: vec![],
        },
        ChaosStep {
            action: Action::Read {
                origin: sid(1),
                block: blk(0),
            },
            faults: vec![],
        },
    ];
    chaos::check(&cfg, &script).unwrap();
    // Pin the endgame on the deterministic runtime: the repaired site holds
    // the current value, not the torn bytes.
    let rt = Cluster::new(cfg, ClusterOptions::default());
    chaos::run_on(&rt, &script).unwrap();
    assert_eq!(rt.read(sid(1), blk(0)).unwrap().as_slice(), &[0x44; 8]);
}

/// Restart-mid-flush with a write-ahead journal: site 1's disk tears in the
/// middle of installing an acknowledged write and the site crashes — but
/// the record reached its journal before the device did, so the restart
/// scrub replays it. The write is back **before** any peer repair runs.
/// Without the journal the same schedule zeroes the block and only the §3.2
/// repair exchange can restore the value.
#[test]
fn chaos_journaled_restart_mid_flush_replays_acknowledged_install() {
    let build = |journaled: bool| {
        blockrep::types::DeviceConfig::builder(Scheme::AvailableCopy)
            .sites(3)
            .num_blocks(1)
            .block_size(8)
            .journaled(journaled)
            .build()
            .unwrap()
    };
    let script = vec![
        ChaosStep {
            action: Action::Write {
                origin: sid(0),
                block: blk(0),
                fill: 0x33,
            },
            faults: vec![],
        },
        ChaosStep {
            // Exchange 1 is the install fan-out to site 1: its disk tears
            // mid-flush and the site crashes.
            action: Action::Write {
                origin: sid(0),
                block: blk(0),
                fill: 0x44,
            },
            faults: vec![(1, FaultKind::TornWrite { keep: 4 })],
        },
        ChaosStep {
            action: Action::Repair(sid(1)),
            faults: vec![],
        },
        ChaosStep {
            action: Action::Read {
                origin: sid(1),
                block: blk(0),
            },
            faults: vec![],
        },
    ];
    // Oracle and three-runtime parity under the tightened journaled oracle.
    chaos::check(&build(true), &script).unwrap();

    // Pin the mechanism on the deterministic runtime, stopping *before* the
    // repair step: the restart scrub alone restores the acknowledged write.
    let rt = Cluster::new(build(true), ClusterOptions::default());
    chaos::run_on(&rt, &script[..2]).unwrap();
    assert_ne!(
        rt.data_of(sid(1), blk(0)).as_slice(),
        &[0x44; 8],
        "the crash left the install incomplete on disk"
    );
    assert_eq!(
        rt.scrub_local(sid(1)),
        1,
        "checksum damage is still reported"
    );
    assert_eq!(
        rt.data_of(sid(1), blk(0)).as_slice(),
        &[0x44; 8],
        "journal replay must reinstate the acknowledged install"
    );

    // Contrast run: without the journal the torn install is simply gone.
    let rt = Cluster::new(build(false), ClusterOptions::default());
    chaos::run_on(&rt, &script[..2]).unwrap();
    assert_eq!(rt.scrub_local(sid(1)), 1);
    assert!(
        rt.data_of(sid(1), blk(0)).is_zeroed(),
        "unjournaled scrub resets the block to the formatted state"
    );
}
