//! Seeded violation: `seq` mixes Relaxed and Acquire orderings across the
//! file, so every pure-Relaxed access needs a fence in its function.
//! `begin_write` lacks one (the seeded bug); `end_write` has it; `probe`
//! is deliberately suppressed with an inline marker.

impl SeqLock {
    fn begin_write(&self) {
        self.seq.fetch_add(1, Ordering::Relaxed);
    }

    fn end_write(&self) {
        std::sync::atomic::fence(Ordering::Release);
        self.seq.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    fn probe(&self) -> u64 {
        // lint: allow(atomics, monotonicity probe for stats only; stale reads are fine)
        self.seq.load(Ordering::Relaxed)
    }
}
