//! The workspace must be clean under its own linter and the committed
//! baseline — this is the same gate CI's `lint` job enforces, run as a
//! plain test so `cargo test` catches regressions locally too.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_clean_under_baseline() {
    let report = blockrep_lint::run(&blockrep_lint::Config::new(workspace_root()))
        .expect("lint run succeeds");
    assert!(report.files > 20, "workspace walk found too few files");
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{}",
        report.render()
    );
}

#[test]
fn key_invariants_are_positively_verified() {
    let report = blockrep_lint::run(&blockrep_lint::Config::new(workspace_root()))
        .expect("lint run succeeds");
    // The ascending-conn-lock-order discipline in TcpCluster::pipelined
    // must be machine-verified, not merely "no finding".
    assert!(
        report
            .verified
            .iter()
            .any(|v| v.contains("tcp.rs") && v.contains("ascending")),
        "conn-lock ascending-order discipline not verified:\n{:#?}",
        report.verified
    );
    // Likewise the sharded block-lock table: both multi-guard paths must
    // carry the ascending-shard-index assertion.
    for f in ["read_guard_many", "write_guard_many"] {
        assert!(
            report
                .verified
                .iter()
                .any(|v| v.contains("locks.rs") && v.contains(f) && v.contains("ascending")),
            "block-shard ascending-order discipline not verified for {f}:\n{:#?}",
            report.verified
        );
    }
    // And the cross-shard fan-out of the sharded virtual device: the
    // per-shard admission gates are taken in ascending shard index.
    assert!(
        report
            .verified
            .iter()
            .any(|v| v.contains("shard.rs") && v.contains("`fan_out`") && v.contains("ascending")),
        "cross-shard fan-out ascending-order discipline not verified:\n{:#?}",
        report.verified
    );
    // Both wire enums must have their tag bijection confirmed.
    for ty in ["WireRequest", "WireResponse"] {
        assert!(
            report
                .verified
                .iter()
                .any(|v| v.contains("wire.rs") && v.contains(ty)),
            "wire-tag coverage for {ty} not verified:\n{:#?}",
            report.verified
        );
    }
}
