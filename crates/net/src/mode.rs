//! Multicast vs. unique addressing.

use core::fmt;

/// The two network environments of §5.
///
/// The schemes keep their relative ordering in both environments, but the
/// differences are "amplified in a single destination network" — which the
/// Figure 11 vs. Figure 12 benches reproduce.
///
/// # Examples
///
/// ```
/// use blockrep_net::DeliveryMode;
///
/// // Updating four remote replicas:
/// assert_eq!(DeliveryMode::Multicast.fanout_cost(4), 1);
/// assert_eq!(DeliveryMode::Unicast.fanout_cost(4), 4);
/// // Replies are always individual transmissions:
/// assert_eq!(DeliveryMode::Multicast.fanout_cost(0), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeliveryMode {
    /// A single transmission may be received by several sites (§5.1).
    #[default]
    Multicast,
    /// Each transmission must be addressed to an individual site (§5.2).
    Unicast,
}

impl DeliveryMode {
    /// Both environments, in the order the paper treats them.
    pub const ALL: [DeliveryMode; 2] = [DeliveryMode::Multicast, DeliveryMode::Unicast];

    /// Number of high-level transmissions needed to deliver one logical
    /// message to `targets` destinations: one multicast regardless of
    /// fan-out, or one unicast per destination. Zero targets cost nothing in
    /// either mode.
    pub const fn fanout_cost(self, targets: u64) -> u64 {
        match self {
            DeliveryMode::Multicast => {
                if targets == 0 {
                    0
                } else {
                    1
                }
            }
            DeliveryMode::Unicast => targets,
        }
    }

    /// Short label used in tables and benches.
    pub const fn label(self) -> &'static str {
        match self {
            DeliveryMode::Multicast => "multicast",
            DeliveryMode::Unicast => "unicast",
        }
    }
}

impl fmt::Display for DeliveryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How a coordinator spreads one logical fan-out over *time*: one exchange
/// strictly after another, or every request in flight before any reply is
/// awaited.
///
/// Orthogonal to [`DeliveryMode`], which is the §5 *accounting* rule:
/// changing the fan-out mode changes latency, never the number of
/// high-level transmissions (`tests/runtime_parity.rs` pins this down).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FanoutMode {
    /// The historical blocking loop: request, await reply, next target.
    Sequential,
    /// Scatter-gather: dispatch to every target, then collect the replies.
    #[default]
    Parallel,
}

impl FanoutMode {
    /// Both modes, sequential baseline first.
    pub const ALL: [FanoutMode; 2] = [FanoutMode::Sequential, FanoutMode::Parallel];

    /// Short label used in benches and reports.
    pub const fn label(self) -> &'static str {
        match self {
            FanoutMode::Sequential => "sequential",
            FanoutMode::Parallel => "parallel",
        }
    }
}

impl fmt::Display for FanoutMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multicast_is_flat_rate() {
        for n in 1..100 {
            assert_eq!(DeliveryMode::Multicast.fanout_cost(n), 1);
        }
    }

    #[test]
    fn unicast_is_linear() {
        for n in 0..100 {
            assert_eq!(DeliveryMode::Unicast.fanout_cost(n), n);
        }
    }

    #[test]
    fn zero_targets_is_free() {
        assert_eq!(DeliveryMode::Multicast.fanout_cost(0), 0);
        assert_eq!(DeliveryMode::Unicast.fanout_cost(0), 0);
    }

    #[test]
    fn labels() {
        assert_eq!(DeliveryMode::Multicast.to_string(), "multicast");
        assert_eq!(DeliveryMode::Unicast.to_string(), "unicast");
    }

    #[test]
    fn fanout_mode_defaults_to_parallel() {
        assert_eq!(FanoutMode::default(), FanoutMode::Parallel);
        assert_eq!(FanoutMode::Sequential.to_string(), "sequential");
        assert_eq!(FanoutMode::ALL[0], FanoutMode::Sequential);
    }
}
