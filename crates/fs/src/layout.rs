//! On-disk layout: the superblock and derived geometry.

use crate::{FsError, FsResult};
use bytes::{Buf, BufMut};

/// Magic bytes identifying a blockrep file system.
pub const MAGIC: [u8; 4] = *b"BRFS";
/// On-disk format version.
pub const VERSION: u32 = 1;
/// Size of one inode record on disk.
pub const INODE_SIZE: usize = 64;
/// Number of direct block pointers per inode.
pub const DIRECT_POINTERS: usize = 12;
/// Size of one directory entry on disk.
pub const DIRENT_SIZE: usize = 32;
/// Maximum file-name length (fits a directory entry).
pub const MAX_NAME: usize = 27;
/// The root directory's inode number (inode 0 is reserved as "none").
pub const ROOT_INO: u32 = 1;

/// The file system's geometry: where each on-disk region lives. Derived
/// from the device size at format time, persisted in the superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsGeometry {
    /// Size of each block in bytes.
    pub block_size: u32,
    /// Total device blocks.
    pub num_blocks: u64,
    /// Number of inodes in the table.
    pub inode_count: u32,
    /// First block of the allocation bitmap.
    pub bitmap_start: u64,
    /// Blocks occupied by the bitmap.
    pub bitmap_blocks: u64,
    /// First block of the inode table.
    pub inode_start: u64,
    /// Blocks occupied by the inode table.
    pub inode_blocks: u64,
    /// First data block.
    pub data_start: u64,
}

impl FsGeometry {
    /// Plans the layout for a device of `num_blocks` blocks of `block_size`
    /// bytes: one inode per four data-ish blocks (at least 16), a bitmap
    /// bit per device block.
    ///
    /// # Errors
    ///
    /// [`FsError::DeviceTooSmall`] when the metadata would not leave at
    /// least one data block, and [`FsError::BadSuperblock`] if the block
    /// size cannot hold the superblock or even one directory entry.
    pub fn plan(num_blocks: u64, block_size: usize) -> FsResult<FsGeometry> {
        if block_size < 64 {
            return Err(FsError::BadSuperblock(format!(
                "block size {block_size} too small (need >= 64)"
            )));
        }
        let bits_per_block = (block_size * 8) as u64;
        let bitmap_blocks = num_blocks.div_ceil(bits_per_block);
        let inode_count = (num_blocks / 4).clamp(16, u32::MAX as u64) as u32;
        let inodes_per_block = (block_size / INODE_SIZE) as u64;
        let inode_blocks = (inode_count as u64).div_ceil(inodes_per_block);
        let data_start = 1 + bitmap_blocks + inode_blocks;
        if data_start + 1 > num_blocks {
            return Err(FsError::DeviceTooSmall);
        }
        Ok(FsGeometry {
            block_size: block_size as u32,
            num_blocks,
            inode_count,
            bitmap_start: 1,
            bitmap_blocks,
            inode_start: 1 + bitmap_blocks,
            inode_blocks,
            data_start,
        })
    }

    /// Maximum file size: 12 direct pointers plus one indirect block of
    /// 4-byte pointers.
    pub fn max_file_size(&self) -> u64 {
        let bs = self.block_size as u64;
        (DIRECT_POINTERS as u64 + bs / 4) * bs
    }

    /// Directory entries per block.
    pub fn dirents_per_block(&self) -> usize {
        self.block_size as usize / DIRENT_SIZE
    }

    /// Serializes the superblock into a zero-padded block image.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.block_size as usize);
        buf.put_slice(&MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(self.block_size);
        buf.put_u64_le(self.num_blocks);
        buf.put_u32_le(self.inode_count);
        buf.put_u64_le(self.bitmap_start);
        buf.put_u64_le(self.bitmap_blocks);
        buf.put_u64_le(self.inode_start);
        buf.put_u64_le(self.inode_blocks);
        buf.put_u64_le(self.data_start);
        buf.resize(self.block_size as usize, 0);
        buf
    }

    /// Parses a superblock image.
    ///
    /// # Errors
    ///
    /// [`FsError::BadSuperblock`] on a wrong magic, version, or geometry
    /// that does not match the device.
    pub fn decode(
        mut raw: &[u8],
        device_blocks: u64,
        device_block_size: usize,
    ) -> FsResult<FsGeometry> {
        if raw.len() < 56 {
            return Err(FsError::BadSuperblock("superblock truncated".into()));
        }
        let mut magic = [0u8; 4];
        raw.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(FsError::BadSuperblock(
                "wrong magic — device not formatted".into(),
            ));
        }
        let version = raw.get_u32_le();
        if version != VERSION {
            return Err(FsError::BadSuperblock(format!(
                "unsupported version {version}"
            )));
        }
        let geo = FsGeometry {
            block_size: raw.get_u32_le(),
            num_blocks: raw.get_u64_le(),
            inode_count: raw.get_u32_le(),
            bitmap_start: raw.get_u64_le(),
            bitmap_blocks: raw.get_u64_le(),
            inode_start: raw.get_u64_le(),
            inode_blocks: raw.get_u64_le(),
            data_start: raw.get_u64_le(),
        };
        if geo.block_size as usize != device_block_size || geo.num_blocks != device_blocks {
            return Err(FsError::BadSuperblock(format!(
                "geometry mismatch: superblock says {}x{}, device is {}x{}",
                geo.num_blocks, geo.block_size, device_blocks, device_block_size
            )));
        }
        Ok(geo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_leaves_data_blocks() {
        let geo = FsGeometry::plan(128, 512).unwrap();
        assert_eq!(geo.bitmap_start, 1);
        assert!(geo.data_start < 128);
        assert!(geo.inode_count >= 16);
        // Regions are ordered and non-overlapping.
        assert_eq!(geo.inode_start, geo.bitmap_start + geo.bitmap_blocks);
        assert_eq!(geo.data_start, geo.inode_start + geo.inode_blocks);
    }

    #[test]
    fn plan_rejects_tiny_devices() {
        assert!(matches!(
            FsGeometry::plan(2, 512),
            Err(FsError::DeviceTooSmall)
        ));
        assert!(FsGeometry::plan(128, 32).is_err());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let geo = FsGeometry::plan(256, 512).unwrap();
        let raw = geo.encode();
        assert_eq!(raw.len(), 512);
        let back = FsGeometry::decode(&raw, 256, 512).unwrap();
        assert_eq!(back, geo);
    }

    #[test]
    fn decode_rejects_wrong_magic() {
        let mut raw = FsGeometry::plan(256, 512).unwrap().encode();
        raw[0] = b'X';
        assert!(matches!(
            FsGeometry::decode(&raw, 256, 512),
            Err(FsError::BadSuperblock(_))
        ));
    }

    #[test]
    fn decode_rejects_geometry_mismatch() {
        let raw = FsGeometry::plan(256, 512).unwrap().encode();
        assert!(FsGeometry::decode(&raw, 128, 512).is_err());
        assert!(FsGeometry::decode(&raw, 256, 1024).is_err());
    }

    #[test]
    fn max_file_size_matches_pointer_arithmetic() {
        let geo = FsGeometry::plan(1024, 512).unwrap();
        assert_eq!(geo.max_file_size(), (12 + 128) * 512);
        assert_eq!(geo.dirents_per_block(), 16);
    }
}
