//! `blockrep-lint` — dependency-free static analysis for the blockrep
//! workspace's concurrency and wire-format invariants.
//!
//! The paper's one-copy guarantees lean on conventions the compiler cannot
//! see: ascending-site-order connection locks in `TcpCluster::pipelined`,
//! the fence pairing of the flight recorder's seqlock, hoisted
//! `enabled()` checks on the protocol hot path, and a bijective wire-tag
//! space. This crate machine-checks them. It hand-rolls a small Rust
//! lexer and a brace-matched item scanner (no `syn`, no proc-macros — the
//! registry is vendored stubs, same spirit as the hand-rolled JSON parser
//! in `blockrep-bench`), builds a per-function token model with an
//! approximate same-file call graph, and runs four passes over it:
//!
//! | pass           | invariant                                             |
//! |----------------|-------------------------------------------------------|
//! | `lock-order`   | acquisition graph is acyclic; no re-entry on a held   |
//! |                | lock; loop-accumulated indexed guards assert ascent   |
//! | `atomics`      | mixed Relaxed/acquire-release fields pair each        |
//! |                | Relaxed access with a `fence(..)` in-function         |
//! | `obs-hot-path` | `event!`/`span!`/tracer calls in protocol, backend    |
//! |                | and WAL code sit behind a hoisted enabled-check       |
//! | `wire-tags`    | encode and decode claim identical tag sets, no dupes  |
//!
//! Being token-level, the analysis is deliberately approximate: it
//! under-claims where it cannot be sure (e.g. `if let` scrutinee guard
//! lifetimes) and favours the idioms this workspace actually uses.
//! Suppressions go through `// lint: allow(pass, reason)` inline markers
//! or the checked-in [`lint.allow` baseline](crate::run), both of which
//! require a written reason.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allow;
mod lexer;
mod model;
mod passes;

use std::fmt;
use std::path::PathBuf;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational (e.g. an unused baseline entry).
    Note,
    /// Worth fixing; does not break an invariant outright.
    Warning,
    /// An invariant violation — a latent bug.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The pass that produced it (`lock-order`, `atomics`, ...).
    pub pass: &'static str,
    /// Path relative to the scanned root.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Severity.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    pub(crate) fn new(
        pass: &'static str,
        file: &str,
        line: u32,
        severity: Severity,
        message: String,
    ) -> Finding {
        Finding {
            pass,
            file: file.to_string(),
            line,
            severity,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}: {}",
            self.file, self.line, self.pass, self.severity, self.message
        )
    }
}

/// What to analyze.
pub struct Config {
    /// Root directory containing `crates/` (usually the workspace root).
    pub root: PathBuf,
    /// Baseline file; defaults to `<root>/lint.allow` when present.
    pub allow_file: Option<PathBuf>,
}

impl Config {
    /// A config for `root` with the default baseline location.
    pub fn new(root: impl Into<PathBuf>) -> Config {
        Config {
            root: root.into(),
            allow_file: None,
        }
    }
}

/// A completed lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived suppression, sorted by file and line.
    pub findings: Vec<Finding>,
    /// Findings removed by inline markers or the baseline.
    pub suppressed: usize,
    /// Invariants the passes positively confirmed.
    pub verified: Vec<String>,
    /// Files scanned.
    pub files: usize,
    /// Functions scanned.
    pub functions: usize,
}

impl Report {
    /// Whether the run found nothing to fix (notes don't count as dirty).
    pub fn is_clean(&self) -> bool {
        !self.findings.iter().any(|f| f.severity > Severity::Note)
    }

    /// Renders diagnostics plus a summary, ready for stdout or a report
    /// artifact.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        if !self.findings.is_empty() {
            out.push('\n');
        }
        for v in &self.verified {
            out.push_str(&format!("verified: {v}\n"));
        }
        let errors = self
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count();
        let warnings = self
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count();
        out.push_str(&format!(
            "lint: {} file(s), {} function(s): {errors} error(s), {warnings} warning(s), \
             {} suppressed\n",
            self.files, self.functions, self.suppressed
        ));
        out
    }
}

/// A failed run (I/O trouble or a malformed baseline) — distinct from a
/// run that produced findings.
#[derive(Debug)]
pub struct LintError(pub String);

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for LintError {}

/// Runs every pass over `config.root` and applies suppressions.
///
/// # Errors
///
/// [`LintError`] when the tree cannot be read or the baseline file is
/// malformed (including any entry without a reason).
pub fn run(config: &Config) -> Result<Report, LintError> {
    let ws = model::Workspace::load(&config.root)
        .map_err(|e| LintError(format!("{}: {e}", config.root.display())))?;
    let raw = passes::run_all(&ws);
    let mut report = Report {
        files: ws.files.len(),
        functions: ws.files.iter().map(|f| f.functions.len()).sum(),
        verified: raw.verified,
        ..Report::default()
    };

    // Inline `// lint: allow(pass, reason)` markers. A marker suppresses
    // findings of its pass on its own line and the line below, so both
    // trailing and preceding-line placement work; a marker without a
    // reason is itself a finding.
    let mut findings = raw.findings;
    for file in &ws.files {
        for marker in &file.lexed.allows {
            if marker.reason.is_empty() {
                findings.push(Finding::new(
                    "allow",
                    &file.rel,
                    marker.line,
                    Severity::Error,
                    format!(
                        "inline `lint: allow({})` marker has no reason; write why \
                         the suppression is sound",
                        marker.pass
                    ),
                ));
                continue;
            }
            let before = findings.len();
            findings.retain(|f| {
                !(f.file == file.rel
                    && f.pass == marker.pass
                    && (f.line == marker.line || f.line == marker.line + 1))
            });
            report.suppressed += before - findings.len();
        }
    }

    // The checked-in baseline.
    let allow_path = config
        .allow_file
        .clone()
        .unwrap_or_else(|| config.root.join("lint.allow"));
    if allow_path.is_file() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| LintError(format!("{}: {e}", allow_path.display())))?;
        let mut entries = allow::parse(&text).map_err(|e| LintError(e.to_string()))?;
        let before = findings.len();
        findings.retain(|f| {
            let hit = entries
                .iter_mut()
                .find(|e| e.matches(f.pass, &f.file, f.line));
            if let Some(e) = hit {
                e.used = true;
                false
            } else {
                true
            }
        });
        report.suppressed += before - findings.len();
        for e in entries.iter().filter(|e| !e.used) {
            findings.push(Finding::new(
                "allow",
                "lint.allow",
                e.source_line as u32,
                Severity::Note,
                format!(
                    "baseline entry `{} {}` matched nothing — the finding is gone; \
                     drop the entry",
                    e.pass, e.file
                ),
            ));
        }
    }

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.pass).cmp(&(b.file.as_str(), b.line, b.pass)));
    report.findings = findings;
    Ok(report)
}
