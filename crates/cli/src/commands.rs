//! Subcommand dispatch for the `blockrep` binary.

use crate::args::{Parsed, UsageError};
use crate::shell::{self, ShellConfig};
use blockrep_core::simulate::availability::{estimate, AvailabilityConfig};
use blockrep_core::simulate::lifetimes::{measure as measure_lifetimes, LifetimeConfig};
use blockrep_core::simulate::traffic::{measure as measure_traffic, TrafficConfig};
use blockrep_net::DeliveryMode;
use blockrep_types::Scheme;

/// Top-level usage text.
pub const USAGE: &str =
    "blockrep — reliable replicated block devices (Carroll, Long & Pâris, ICDCS 1987)

usage:
  blockrep tables                          equation tables E1–E6
  blockrep fig <9|10|11|12>                regenerate an evaluation figure
  blockrep simulate availability [flags]   measure availability by DES
      --scheme S --sites N --rho R --horizon T --seed X
  blockrep simulate traffic [flags]        measure per-op transmissions
      --scheme S --sites N --rho R --net multicast|unicast --ops K --ratio X
  blockrep simulate lifetimes [flags]      measure MTTF / MTTR
      --scheme S --sites N --rho R --episodes E
  blockrep shell [flags]                   interactive cluster console
      --scheme S --sites N --blocks B --net multicast|unicast
  blockrep chaos [flags]                   seeded fault-injection runs on all
      --seed N --seeds K --steps L         three runtimes; fails with the
      --scheme mcv|ac|nac                  shrunk schedule and its seed, and
      --trace-out PATH --journaled         always prints a metrics snapshot
      --leases                             at exit; --trace-out writes a
                                           flight-recorder dump (Chrome
                                           trace JSON) of the last schedule
                                           (the shrunk one on failure);
                                           --journaled runs every site on a
                                           write-ahead journal and checks
                                           the stricter durability oracle;
                                           --leases enables read offload and
                                           schedules stale-lease faults;
                                           --shards N replays the scripted
                                           shard-fault scenarios (shard
                                           blackout, torn cross-shard
                                           batch) on an N-shard device
                                           instead of seeded schedules
  blockrep bench [flags]                   protocol throughput/latency suite
      --scheme S --sites N --blocks B      over all runtimes and fan-out
      --block-size Z --ops K               modes; writes BENCH_protocol.json
      --net multicast|unicast --out PATH   with --out
      --latency-us D                       emulated one-way link delay
  blockrep bench --suite fs [flags]        fs workloads (seq-read, seq-write,
      --sites N --file-blocks B            fsync-heavy) over every runtime
      --block-size Z --ops K               and scheme, batched vs per-block
      --net multicast|unicast --out PATH   device I/O; writes BENCH_fs.json
      --latency-us D                       with --out
  blockrep bench --suite storage [flags]   journaled-device durability suite:
      --data-blocks N --block-size Z       installs through a file-backed WAL
      --writes K --out PATH                at several group-commit windows vs
                                           the per-install-fsync baseline;
                                           writes BENCH_storage.json with --out
  blockrep bench --suite trace [flags]     per-phase latency attribution
      --sites N --blocks B                 matrix (scheme x runtime x io)
      --block-size Z                       from the causal tracer; writes
      --net multicast|unicast --out PATH   BENCH_trace.json with --out
      --latency-us D
  blockrep bench --suite load [flags]      closed-loop concurrent-client fleet
      --scheme S --sites N --blocks B      (uniform + zipfian keys) on the
      --block-size Z --ops K               live and mux-TCP runtimes, leases
      --clients 1,4,16,64,256              off/on: throughput-scaling curves
      --write-every W --out PATH           and p99 under contention; writes
      --net multicast|unicast              BENCH_load.json with --out
      --latency-us D
  blockrep bench --suite shard [flags]     sharded-device scaling sweep:
      --scheme S --shards 1,2,4,8          aggregate vectored throughput of
      --groups G --group-size Z            a closed-loop fleet of 64-block
      --block-size B --clients C           batches at each shard count, on
      --batches K --journaled              the live and mux-TCP runtimes;
      --net multicast|unicast              writes BENCH_shard.json with --out
      --latency-us D --out PATH
  blockrep bench [--suite S] --check PATH  validate an emitted report
  blockrep trace [flags]                   run one traced workload; print its
      --scheme S --runtime R --io M        per-phase attribution table and
      --sites N --blocks B --block-size Z  emit the causal trace as Chrome
      --net multicast|unicast              trace-event JSON to --out PATH
      --latency-us D --out PATH            (stdout without --out)
  blockrep trace --check PATH              validate a Chrome trace JSON dump
  blockrep mkfs <image-file> [flags]       format a file-backed device;
      --blocks N --block-size B            --shards S formats one image per
      --shards S --group-size Z            shard replica group and prints
                                           the placement manifest
  blockrep fsck <image-file> [flags]       consistency-check an image
      --block-size B --journal             (--journal first replays committed
                                           records from <image-file>.wal,
                                           discarding any torn tail)
  blockrep lint [flags]                    static analysis of the workspace
      --root DIR --deny                    sources: lock-order cycles, atomics
      --allow PATH --out PATH              fence discipline, hot-path obs
                                           guards, wire-tag exhaustiveness;
                                           --deny exits nonzero on findings,
                                           --allow names a baseline file
                                           (default <root>/lint.allow), --out
                                           also writes the report to a file

observability (any subcommand):
  --stats    collect metrics; print a table and a JSON snapshot at exit
  --trace    stream structured protocol events to stderr (implies --stats)

schemes: voting (v), available-copy (ac), naive-available-copy (naive, nac)";

/// Runs a parsed command line; returns the process exit code.
///
/// # Errors
///
/// [`UsageError`] for malformed arguments (the caller prints usage).
pub fn run(parsed: &Parsed) -> Result<(), UsageError> {
    let stats = parsed.flag_bool("stats");
    let trace = parsed.flag_bool("trace");
    if trace {
        blockrep_obs::set_observer(std::sync::Arc::new(blockrep_obs::StderrObserver::new()));
    } else if stats {
        blockrep_obs::enable();
    }
    let result = dispatch(parsed);
    if stats || trace {
        let snapshot = blockrep_obs::metrics::global().snapshot();
        if !snapshot.is_empty() {
            println!("\nmetrics:\n{}", snapshot.to_table());
            println!("{}", snapshot.to_json());
        }
    }
    result
}

fn dispatch(parsed: &Parsed) -> Result<(), UsageError> {
    match parsed.positional(0) {
        None | Some("help") | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            Ok(())
        }
        Some("tables") => {
            blockrep_bench::report::tables();
            Ok(())
        }
        Some("fig") => run_fig(parsed),
        Some("simulate") => run_simulate(parsed),
        Some("chaos") => run_chaos(parsed),
        Some("bench") => run_bench(parsed),
        Some("trace") => run_trace(parsed),
        Some("shell") => run_shell(parsed),
        Some("mkfs") => run_mkfs(parsed),
        Some("fsck") => run_fsck(parsed),
        Some("lint") => run_lint(parsed),
        Some(other) => Err(UsageError(format!("unknown subcommand {other:?}"))),
    }
}

fn run_fig(parsed: &Parsed) -> Result<(), UsageError> {
    let horizon = parsed.flag_f64("horizon", 100_000.0)?;
    let ops = parsed.flag_u64("ops", 30_000)?;
    match parsed.positional(1) {
        Some("9") => blockrep_bench::report::fig09(horizon),
        Some("10") => blockrep_bench::report::fig10(horizon),
        Some("11") => blockrep_bench::report::fig11(ops),
        Some("12") => blockrep_bench::report::fig12(ops),
        other => {
            return Err(UsageError(format!(
                "usage: blockrep fig <9|10|11|12> (got {other:?})"
            )))
        }
    }
    Ok(())
}

fn run_simulate(parsed: &Parsed) -> Result<(), UsageError> {
    let scheme = parsed.flag_scheme("scheme", Scheme::NaiveAvailableCopy)?;
    let sites = parsed.flag_usize("sites", 3)?;
    let rho = parsed.flag_f64("rho", 0.05)?;
    match parsed.positional(1) {
        Some("availability") => {
            let mut cfg = AvailabilityConfig::new(scheme, sites, rho);
            cfg.horizon = parsed.flag_f64("horizon", 100_000.0)?;
            cfg.seed = parsed.flag_u64("seed", cfg.seed)?;
            let est = estimate(&cfg);
            println!("scheme {scheme}, n = {sites}, rho = {rho}");
            println!("analytic availability  {:.8}", est.analytic);
            println!("simulated availability {:.8}", est.availability);
            println!(
                "error {:.2e} over {} events / {:.0} time units",
                est.error(),
                est.events,
                est.sim_time
            );
            Ok(())
        }
        Some("traffic") => {
            let mode = parsed.flag_mode("net", DeliveryMode::Multicast)?;
            let mut cfg = TrafficConfig::new(scheme, sites, mode);
            cfg.rho = rho;
            cfg.ops = parsed.flag_u64("ops", cfg.ops)?;
            cfg.reads_per_write = parsed.flag_f64("ratio", cfg.reads_per_write)?;
            cfg.seed = parsed.flag_u64("seed", cfg.seed)?;
            let est = measure_traffic(&cfg);
            if blockrep_obs::enabled() {
                // Mirror the run's traffic counters into the metrics
                // registry so --stats reports per-class message counts.
                est.traffic.export_to(blockrep_obs::metrics::global());
            }
            println!("scheme {scheme}, n = {sites}, rho = {rho}, {mode}");
            println!(
                "per read:     measured {:.3}  model {:.3}",
                est.per_read, est.model.read
            );
            println!(
                "per write:    measured {:.3}  model {:.3}",
                est.per_write, est.model.write
            );
            println!(
                "per recovery: measured {:.3}  model {:.3}",
                est.per_recovery, est.model.recovery
            );
            println!(
                "({} reads, {} writes, {} recoveries)",
                est.reads, est.writes, est.recoveries
            );
            Ok(())
        }
        Some("lifetimes") => {
            let mut cfg = LifetimeConfig::new(scheme, sites, rho);
            cfg.episodes = parsed.flag_u64("episodes", cfg.episodes as u64)? as u32;
            cfg.seed = parsed.flag_u64("seed", cfg.seed)?;
            let mut est = measure_lifetimes(&cfg);
            println!(
                "scheme {scheme}, n = {sites}, rho = {rho} ({} episodes)",
                cfg.episodes
            );
            println!(
                "MTTF measured {:.3}  analytic {:.3}",
                est.mttf.mean(),
                est.analytic_mttf
            );
            match est.analytic_mttr {
                Some(analytic) => println!(
                    "MTTR measured {:.3}  analytic {:.3}",
                    est.mttr.mean(),
                    analytic
                ),
                None => println!(
                    "MTTR measured {:.3}  (no closed form for voting)",
                    est.mttr.mean()
                ),
            }
            println!(
                "MTTR distribution: p50 {:.3}  p90 {:.3}  p99 {:.3}  max {:.3}",
                est.mttr_samples.percentile(50.0),
                est.mttr_samples.percentile(90.0),
                est.mttr_samples.percentile(99.0),
                est.mttr_samples.max(),
            );
            Ok(())
        }
        other => Err(UsageError(format!(
            "usage: blockrep simulate <availability|traffic|lifetimes> (got {other:?})"
        ))),
    }
}

fn run_chaos(parsed: &Parsed) -> Result<(), UsageError> {
    use blockrep_core::chaos;
    let first_seed = parsed.flag_u64("seed", 0)?;
    let seeds = parsed.flag_u64("seeds", 1)?;
    let steps = parsed.flag_usize("steps", 40)?;
    let journaled = parsed.flag_bool("journaled");
    let leases = parsed.flag_bool("leases");
    let trace_out = parsed.flag("trace-out").map(str::to_string);
    let schemes: Vec<Scheme> = match parsed.flag("scheme") {
        None => Scheme::ALL.to_vec(),
        Some(raw) => vec![crate::args::parse_scheme(raw)?],
    };
    // Shard mode: replay the scripted shard-fault scenarios (blackout of
    // one shard's sites, torn write mid cross-shard batch) instead of
    // seeded schedules, with the one-copy oracle checked per shard and
    // cross-runtime parity enforced on the step logs.
    if parsed.flag("shards").is_some() {
        let shards = parsed.flag_usize("shards", 2)?;
        let tag = if journaled { " journaled" } else { "" };
        for scheme in schemes {
            match chaos::check_shards(scheme, shards, journaled) {
                Ok(report) => println!(
                    "shards {shards} {scheme}{tag}: ok ({} log lines, {} reads checked)",
                    report.steps, report.reads_checked
                ),
                Err(e) => return Err(UsageError(format!("chaos --shards {shards}: {e}"))),
            }
        }
        return Ok(());
    }
    // The chaos runner always collects metrics: the final snapshot is part
    // of the post-mortem record, so `--stats` is implied. When the user
    // passed --stats/--trace themselves, `run` already enabled collection
    // and prints the snapshot; otherwise we do both here.
    let print_stats = !(parsed.flag_bool("stats") || parsed.flag_bool("trace"));
    let was_obs = blockrep_obs::enabled();
    blockrep_obs::enable();
    let mut last: Option<(u64, Scheme)> = None;
    let mut outcome = Ok(());
    'all: for scheme in schemes {
        for seed in first_seed..first_seed + seeds {
            match chaos::run_seed_opts(seed, scheme, steps, journaled, leases) {
                Ok(report) => {
                    let mut tag = String::new();
                    if journaled {
                        tag.push_str(" journaled");
                    }
                    if leases {
                        tag.push_str(" leased");
                    }
                    println!(
                        "seed {seed} {scheme}{tag}: ok ({} steps, {} faults fired, {} reads checked)",
                        report.steps, report.faults_fired, report.reads_checked
                    );
                    last = Some((seed, scheme));
                }
                Err(failure) => {
                    if let Some(path) = &trace_out {
                        let dump = chaos::trace_failure(&failure);
                        std::fs::write(path, dump)
                            .map_err(|e| UsageError(format!("chaos: {path}: {e}")))?;
                        println!("wrote flight-recorder dump {path}");
                    }
                    // The failure carries the seed and the shrunk schedule —
                    // everything needed to replay it.
                    outcome = Err(UsageError(format!("{failure}")));
                    break 'all;
                }
            }
        }
    }
    if outcome.is_ok() {
        if let (Some(path), Some((seed, scheme))) = (&trace_out, last) {
            let mut script = chaos::generate_with(seed, scheme, steps, leases);
            script.cfg.set_journaled(journaled);
            let dump = chaos::trace_schedule_with(&script.cfg, &script.steps, leases);
            std::fs::write(path, dump).map_err(|e| UsageError(format!("chaos: {path}: {e}")))?;
            println!("wrote flight-recorder trace {path}");
        }
    }
    if print_stats {
        let snapshot = blockrep_obs::metrics::global().snapshot();
        if !snapshot.is_empty() {
            println!("\nmetrics:\n{}", snapshot.to_table());
            println!("{}", snapshot.to_json());
        }
    }
    if !was_obs {
        blockrep_obs::disable();
    }
    outcome
}

fn run_bench(parsed: &Parsed) -> Result<(), UsageError> {
    match parsed.flag("suite") {
        None | Some("protocol") => run_bench_protocol(parsed),
        Some("fs") => run_bench_fs(parsed),
        Some("storage") => run_bench_storage(parsed),
        Some("trace") => run_bench_trace(parsed),
        Some("load") => run_bench_load(parsed),
        Some("shard") => run_bench_shard(parsed),
        Some(other) => Err(UsageError(format!(
            "--suite: expected protocol, fs, storage, trace, load or shard, got {other:?}"
        ))),
    }
}

fn run_bench_protocol(parsed: &Parsed) -> Result<(), UsageError> {
    use blockrep_bench::protocol_bench::{self, ProtocolBenchConfig};
    if let Some(path) = parsed.flag("check") {
        let text =
            std::fs::read_to_string(path).map_err(|e| UsageError(format!("bench: {path}: {e}")))?;
        protocol_bench::validate(&text)
            .map_err(|e| UsageError(format!("bench: {path}: invalid report: {e}")))?;
        println!("{path}: valid {}", protocol_bench::SCHEMA);
        return Ok(());
    }
    let mut cfg = ProtocolBenchConfig::new(parsed.flag_scheme("scheme", Scheme::Voting)?);
    cfg.sites = parsed.flag_usize("sites", cfg.sites)?;
    cfg.blocks = parsed.flag_u64("blocks", cfg.blocks)?;
    cfg.block_size = parsed.flag_usize("block-size", cfg.block_size)?;
    cfg.ops = parsed.flag_u64("ops", cfg.ops)?;
    cfg.mode = parsed.flag_mode("net", cfg.mode)?;
    cfg.link_latency_us = parsed.flag_u64("latency-us", cfg.link_latency_us)?;
    println!(
        "bench: scheme {}, n = {}, {} blocks x {} B, {} ops/case, {}, link delay {} us",
        cfg.scheme, cfg.sites, cfg.blocks, cfg.block_size, cfg.ops, cfg.mode, cfg.link_latency_us
    );
    let report = protocol_bench::run_suite(&cfg);
    print!("{}", report.to_table());
    if let Some(path) = parsed.flag("out") {
        let json = report.to_json();
        // Never emit a report the --check path would reject.
        protocol_bench::validate(&json)
            .map_err(|e| UsageError(format!("bench: emitted report invalid: {e}")))?;
        std::fs::write(path, &json).map_err(|e| UsageError(format!("bench: {path}: {e}")))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn run_bench_load(parsed: &Parsed) -> Result<(), UsageError> {
    use blockrep_bench::load_bench::{self, LoadBenchConfig};
    if let Some(path) = parsed.flag("check") {
        let text =
            std::fs::read_to_string(path).map_err(|e| UsageError(format!("bench: {path}: {e}")))?;
        load_bench::validate(&text)
            .map_err(|e| UsageError(format!("bench: {path}: invalid report: {e}")))?;
        println!("{path}: valid {}", load_bench::SCHEMA);
        return Ok(());
    }
    let mut cfg = LoadBenchConfig::new(parsed.flag_scheme("scheme", Scheme::Voting)?);
    cfg.sites = parsed.flag_usize("sites", cfg.sites)?;
    cfg.blocks = parsed.flag_u64("blocks", cfg.blocks)?;
    cfg.block_size = parsed.flag_usize("block-size", cfg.block_size)?;
    cfg.total_ops = parsed.flag_u64("ops", cfg.total_ops)?;
    cfg.write_every = parsed.flag_u64("write-every", cfg.write_every)?;
    cfg.mode = parsed.flag_mode("net", cfg.mode)?;
    cfg.link_latency_us = parsed.flag_u64("latency-us", cfg.link_latency_us)?;
    cfg.journaled = parsed.flag_bool("journaled");
    if let Some(raw) = parsed.flag("clients") {
        cfg.clients = raw
            .split(',')
            .map(|p| {
                p.trim()
                    .parse::<usize>()
                    .map_err(|_| UsageError(format!("--clients: expected integers, got {p:?}")))
            })
            .collect::<Result<Vec<usize>, UsageError>>()?;
        if cfg.clients.is_empty() {
            return Err(UsageError("--clients: empty list".into()));
        }
    }
    println!(
        "bench load: scheme {}, n = {}, {} blocks x {} B, ~{} ops/case over clients {:?}, \
         {}, link delay {} us{}",
        cfg.scheme,
        cfg.sites,
        cfg.blocks,
        cfg.block_size,
        cfg.total_ops,
        cfg.clients,
        cfg.mode,
        cfg.link_latency_us,
        if cfg.journaled { ", journaled" } else { "" }
    );
    let report = load_bench::run_suite(&cfg);
    print!("{}", report.to_table());
    if let Some(path) = parsed.flag("out") {
        let json = report.to_json();
        // Never emit a report the --check path would reject.
        load_bench::validate(&json)
            .map_err(|e| UsageError(format!("bench: emitted report invalid: {e}")))?;
        std::fs::write(path, &json).map_err(|e| UsageError(format!("bench: {path}: {e}")))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn run_bench_shard(parsed: &Parsed) -> Result<(), UsageError> {
    use blockrep_bench::shard_bench::{self, ShardBenchConfig};
    if let Some(path) = parsed.flag("check") {
        let text =
            std::fs::read_to_string(path).map_err(|e| UsageError(format!("bench: {path}: {e}")))?;
        shard_bench::validate(&text)
            .map_err(|e| UsageError(format!("bench: {path}: invalid report: {e}")))?;
        println!("{path}: valid {}", shard_bench::SCHEMA);
        return Ok(());
    }
    let mut cfg = ShardBenchConfig::new(parsed.flag_scheme("scheme", Scheme::Voting)?);
    if let Some(raw) = parsed.flag("shards") {
        cfg.shards = raw
            .split(',')
            .map(|p| {
                p.trim()
                    .parse::<usize>()
                    .map_err(|_| UsageError(format!("--shards: expected integers, got {p:?}")))
            })
            .collect::<Result<Vec<usize>, UsageError>>()?;
        if cfg.shards.is_empty() || cfg.shards.contains(&0) {
            return Err(UsageError(
                "--shards: expected positive shard counts".into(),
            ));
        }
    }
    cfg.groups = parsed.flag_u64("groups", cfg.groups)?;
    cfg.group_size = parsed.flag_u64("group-size", cfg.group_size)?;
    cfg.block_size = parsed.flag_usize("block-size", cfg.block_size)?;
    cfg.clients = parsed.flag_usize("clients", cfg.clients)?;
    cfg.batches_per_client = parsed.flag_u64("batches", cfg.batches_per_client)?;
    cfg.mode = parsed.flag_mode("net", cfg.mode)?;
    cfg.link_latency_us = parsed.flag_u64("latency-us", cfg.link_latency_us)?;
    cfg.journaled = parsed.flag_bool("journaled");
    if cfg.group_size == 0 || cfg.groups == 0 || cfg.clients == 0 {
        return Err(UsageError(
            "bench shard: --groups, --group-size and --clients must be positive".into(),
        ));
    }
    println!(
        "bench shard: scheme {}, shards {:?} x {} sites, {} groups x {} blocks x {} B, \
         {} clients x {} batches, {}, link delay {} us{}",
        cfg.scheme,
        cfg.shards,
        cfg.sites_per_shard,
        cfg.groups,
        cfg.group_size,
        cfg.block_size,
        cfg.clients,
        cfg.batches_per_client,
        cfg.mode,
        cfg.link_latency_us,
        if cfg.journaled { ", journaled" } else { "" }
    );
    let report = shard_bench::run_suite(&cfg);
    print!("{}", report.to_table());
    if let Some(path) = parsed.flag("out") {
        let json = report.to_json();
        // Never emit a report the --check path would reject.
        shard_bench::validate(&json)
            .map_err(|e| UsageError(format!("bench: emitted report invalid: {e}")))?;
        std::fs::write(path, &json).map_err(|e| UsageError(format!("bench: {path}: {e}")))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn run_bench_fs(parsed: &Parsed) -> Result<(), UsageError> {
    use blockrep_bench::fs_bench::{self, FsBenchConfig};
    if let Some(path) = parsed.flag("check") {
        let text =
            std::fs::read_to_string(path).map_err(|e| UsageError(format!("bench: {path}: {e}")))?;
        fs_bench::validate(&text)
            .map_err(|e| UsageError(format!("bench: {path}: invalid report: {e}")))?;
        println!("{path}: valid {}", fs_bench::SCHEMA);
        return Ok(());
    }
    let mut cfg = FsBenchConfig::new();
    cfg.sites = parsed.flag_usize("sites", cfg.sites)?;
    cfg.file_blocks = parsed.flag_u64("file-blocks", cfg.file_blocks)?;
    cfg.block_size = parsed.flag_usize("block-size", cfg.block_size)?;
    cfg.ops = parsed.flag_u64("ops", cfg.ops)?;
    cfg.mode = parsed.flag_mode("net", cfg.mode)?;
    cfg.link_latency_us = parsed.flag_u64("latency-us", cfg.link_latency_us)?;
    println!(
        "bench fs: n = {}, {}-block file x {} B, {} ops/case, {}, link delay {} us",
        cfg.sites, cfg.file_blocks, cfg.block_size, cfg.ops, cfg.mode, cfg.link_latency_us
    );
    let report = fs_bench::run_suite(&cfg);
    print!("{}", report.to_table());
    if let Some(path) = parsed.flag("out") {
        let json = report.to_json();
        // Never emit a report the --check path would reject.
        fs_bench::validate(&json)
            .map_err(|e| UsageError(format!("bench: emitted report invalid: {e}")))?;
        std::fs::write(path, &json).map_err(|e| UsageError(format!("bench: {path}: {e}")))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn run_bench_storage(parsed: &Parsed) -> Result<(), UsageError> {
    use blockrep_bench::storage_bench::{self, StorageBenchConfig};
    if let Some(path) = parsed.flag("check") {
        let text =
            std::fs::read_to_string(path).map_err(|e| UsageError(format!("bench: {path}: {e}")))?;
        storage_bench::validate(&text)
            .map_err(|e| UsageError(format!("bench: {path}: invalid report: {e}")))?;
        println!("{path}: valid {}", storage_bench::SCHEMA);
        return Ok(());
    }
    let mut cfg = StorageBenchConfig::new();
    cfg.data_blocks = parsed.flag_u64("data-blocks", cfg.data_blocks)?;
    cfg.block_size = parsed.flag_usize("block-size", cfg.block_size)?;
    cfg.writes = parsed.flag_u64("writes", cfg.writes)?;
    println!(
        "bench storage: {} blocks x {} B, {} installs/window, windows {:?}",
        cfg.data_blocks,
        cfg.block_size,
        cfg.writes,
        storage_bench::WINDOWS
    );
    let report = storage_bench::run_suite(&cfg);
    print!("{}", report.to_table());
    if let Some(path) = parsed.flag("out") {
        let json = report.to_json();
        // Never emit a report the --check path would reject.
        storage_bench::validate(&json)
            .map_err(|e| UsageError(format!("bench: emitted report invalid: {e}")))?;
        std::fs::write(path, &json).map_err(|e| UsageError(format!("bench: {path}: {e}")))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn run_bench_trace(parsed: &Parsed) -> Result<(), UsageError> {
    use blockrep_bench::trace_bench::{self, TraceBenchConfig};
    if let Some(path) = parsed.flag("check") {
        let text =
            std::fs::read_to_string(path).map_err(|e| UsageError(format!("bench: {path}: {e}")))?;
        trace_bench::validate(&text)
            .map_err(|e| UsageError(format!("bench: {path}: invalid report: {e}")))?;
        println!("{path}: valid {}", trace_bench::SCHEMA);
        return Ok(());
    }
    let mut cfg = TraceBenchConfig::new();
    cfg.sites = parsed.flag_usize("sites", cfg.sites)?;
    cfg.blocks = parsed.flag_u64("blocks", cfg.blocks)?;
    cfg.block_size = parsed.flag_usize("block-size", cfg.block_size)?;
    cfg.mode = parsed.flag_mode("net", cfg.mode)?;
    cfg.link_latency_us = parsed.flag_u64("latency-us", cfg.link_latency_us)?;
    println!(
        "bench trace: n = {}, {} blocks x {} B, {}, link delay {} us",
        cfg.sites, cfg.blocks, cfg.block_size, cfg.mode, cfg.link_latency_us
    );
    let report = trace_bench::run_suite(&cfg);
    print!("{}", report.to_table());
    if let Some(path) = parsed.flag("out") {
        let json = report.to_json();
        // Never emit a report the --check path would reject.
        trace_bench::validate(&json)
            .map_err(|e| UsageError(format!("bench: emitted report invalid: {e}")))?;
        std::fs::write(path, &json).map_err(|e| UsageError(format!("bench: {path}: {e}")))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn run_trace(parsed: &Parsed) -> Result<(), UsageError> {
    use blockrep_bench::protocol_bench::BenchRuntime;
    use blockrep_bench::trace_bench::{self, TraceBenchConfig, TraceIoMode};
    if let Some(path) = parsed.flag("check") {
        let text =
            std::fs::read_to_string(path).map_err(|e| UsageError(format!("trace: {path}: {e}")))?;
        trace_bench::validate_chrome_trace(&text)
            .map_err(|e| UsageError(format!("trace: {path}: invalid trace: {e}")))?;
        println!("{path}: valid Chrome trace-event JSON");
        return Ok(());
    }
    let scheme = parsed.flag_scheme("scheme", Scheme::Voting)?;
    let runtime = match parsed.flag("runtime") {
        None | Some("tcp") => BenchRuntime::Tcp,
        Some("live") => BenchRuntime::Live,
        Some("deterministic") | Some("det") => BenchRuntime::Deterministic,
        Some(other) => {
            return Err(UsageError(format!(
                "--runtime: expected deterministic, live or tcp, got {other:?}"
            )))
        }
    };
    let io = match parsed.flag("io") {
        None | Some("batched") => TraceIoMode::Batched,
        Some("per_block") | Some("per-block") => TraceIoMode::PerBlock,
        Some(other) => {
            return Err(UsageError(format!(
                "--io: expected batched or per_block, got {other:?}"
            )))
        }
    };
    let mut cfg = TraceBenchConfig::new();
    cfg.sites = parsed.flag_usize("sites", cfg.sites)?;
    cfg.blocks = parsed.flag_u64("blocks", cfg.blocks)?;
    cfg.block_size = parsed.flag_usize("block-size", cfg.block_size)?;
    cfg.mode = parsed.flag_mode("net", cfg.mode)?;
    cfg.link_latency_us = parsed.flag_u64("latency-us", cfg.link_latency_us)?;
    println!(
        "trace: scheme {scheme}, runtime {}, io {}, n = {}, {} blocks x {} B, {}, link delay {} us",
        runtime.label(),
        io.label(),
        cfg.sites,
        cfg.blocks,
        cfg.block_size,
        cfg.mode,
        cfg.link_latency_us
    );
    let (records, case) = trace_bench::capture(&cfg, runtime, scheme, io);
    println!(
        "{} op(s), {:.3} ms op time, {} spans, {:.1}% attributed to phases",
        case.ops,
        case.op_us / 1_000.0,
        case.spans,
        case.attributed_fraction * 100.0
    );
    if !case.phases.is_empty() {
        println!("| phase | spans | total ms |");
        println!("|---|---:|---:|");
        for p in &case.phases {
            println!(
                "| {} | {} | {:.3} |",
                p.phase,
                p.count,
                p.total_us / 1_000.0
            );
        }
    }
    let json = blockrep_obs::trace::chrome_trace_json(&records);
    // Never emit a dump the --check path (or the Chrome viewer) rejects.
    trace_bench::validate_chrome_trace(&json)
        .map_err(|e| UsageError(format!("trace: emitted dump invalid: {e}")))?;
    match parsed.flag("out") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| UsageError(format!("trace: {path}: {e}")))?;
            println!("wrote {path}");
        }
        None => print!("{json}"),
    }
    Ok(())
}

fn run_mkfs(parsed: &Parsed) -> Result<(), UsageError> {
    let path = parsed.positional(1).ok_or_else(|| {
        UsageError("usage: blockrep mkfs <image-file> [--blocks N --block-size B]".into())
    })?;
    let blocks = parsed.flag_u64("blocks", 1024)?;
    let block_size = parsed.flag_usize("block-size", 512)?;
    if parsed.flag("shards").is_some() {
        // Sharded format: one image per shard replica group (each holds
        // the full address space, per the manifest's no-translation rule)
        // plus the placement manifest that routes block groups to them.
        let shards = parsed.flag_usize("shards", 2)?;
        let group_size = parsed.flag_u64("group-size", 64)?;
        let pool: Vec<blockrep_types::SiteId> = blockrep_types::SiteId::all(shards * 3).collect();
        let manifest = blockrep_core::PlacementManifest::build(1, group_size, &pool, shards)
            .map_err(|e| UsageError(format!("mkfs: {e}")))?;
        for s in 0..shards {
            let shard_path = format!("{path}.shard{s}");
            let dev = blockrep_storage::FileStore::create(&shard_path, blocks, block_size)
                .map_err(|e| UsageError(format!("mkfs: {shard_path}: {e}")))?;
            blockrep_fs::FileSystem::format(dev)
                .map_err(|e| UsageError(format!("mkfs: {shard_path}: {e}")))?;
            println!("formatted {shard_path}: {blocks} blocks of {block_size} bytes");
        }
        print!("{}", manifest.render());
        return Ok(());
    }
    let dev = blockrep_storage::FileStore::create(path, blocks, block_size)
        .map_err(|e| UsageError(format!("mkfs: {e}")))?;
    blockrep_fs::FileSystem::format(dev).map_err(|e| UsageError(format!("mkfs: {e}")))?;
    println!("formatted {path}: {blocks} blocks of {block_size} bytes");
    Ok(())
}

fn run_fsck(parsed: &Parsed) -> Result<(), UsageError> {
    let path = parsed
        .positional(1)
        .ok_or_else(|| UsageError("usage: blockrep fsck <image-file> [--block-size B]".into()))?;
    let block_size = parsed.flag_usize("block-size", 512)?;
    let mut dev = blockrep_storage::FileStore::open(path, block_size)
        .map_err(|e| UsageError(format!("fsck: {e}")))?;
    if parsed.flag_bool("journal") {
        // Crash recovery before the structural check: replay every
        // committed journal record into the image (discarding any torn
        // tail), checkpoint, and only then mount.
        let journal_path = format!("{path}.wal");
        match blockrep_storage::FileStore::open(&journal_path, block_size) {
            Ok(journal) => {
                let journaled = blockrep_storage::Journaled::open(dev, journal, 1)
                    .map_err(|e| UsageError(format!("fsck: {journal_path}: {e}")))?;
                let stats = journaled.stats();
                println!(
                    "{journal_path}: replayed {} committed record(s), discarded {} torn byte(s)",
                    stats.replayed, stats.discarded_bytes
                );
                dev = journaled.abandon().0;
            }
            Err(blockrep_types::DeviceError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                println!("{journal_path}: no journal, skipping replay");
            }
            Err(e) => return Err(UsageError(format!("fsck: {journal_path}: {e}"))),
        }
    }
    let fs = blockrep_fs::FileSystem::mount(dev).map_err(|e| UsageError(format!("fsck: {e}")))?;
    let report = fs.check().map_err(|e| UsageError(format!("fsck: {e}")))?;
    println!(
        "{path}: {} files, {} directories, {} data blocks in use",
        report.files, report.directories, report.used_blocks
    );
    if report.is_clean() {
        println!("clean");
        Ok(())
    } else {
        for problem in &report.problems {
            println!("PROBLEM {problem}");
        }
        Err(UsageError(format!(
            "{} problems found",
            report.problems.len()
        )))
    }
}

fn run_lint(parsed: &Parsed) -> Result<(), UsageError> {
    let root = parsed.flag("root").unwrap_or(".");
    let config = blockrep_lint::Config {
        root: root.into(),
        allow_file: parsed.flag("allow").map(Into::into),
    };
    let report = blockrep_lint::run(&config).map_err(|e| UsageError(format!("lint: {e}")))?;
    let rendered = report.render();
    print!("{rendered}");
    if let Some(out) = parsed.flag("out") {
        std::fs::write(out, &rendered).map_err(|e| UsageError(format!("lint: {out}: {e}")))?;
    }
    if parsed.flag_bool("deny") && !report.is_clean() {
        let dirty = report
            .findings
            .iter()
            .filter(|f| f.severity > blockrep_lint::Severity::Note)
            .count();
        return Err(UsageError(format!("lint: {dirty} finding(s) (--deny)")));
    }
    Ok(())
}

fn run_shell(parsed: &Parsed) -> Result<(), UsageError> {
    let config = ShellConfig {
        scheme: parsed.flag_scheme("scheme", Scheme::NaiveAvailableCopy)?,
        sites: parsed.flag_usize("sites", 3)?,
        blocks: parsed.flag_u64("blocks", 16)?,
        mode: parsed.flag_mode("net", DeliveryMode::Multicast)?,
    };
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    shell::run(config, stdin.lock(), stdout.lock())
        .map_err(|e| UsageError(format!("shell i/o error: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(parts: &[&str]) -> Parsed {
        Parsed::parse(parts.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn help_runs() {
        assert!(run(&parsed(&[])).is_ok());
        assert!(run(&parsed(&["help"])).is_ok());
    }

    #[test]
    fn lint_runs_clean_on_this_workspace() {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        assert!(run(&parsed(&["lint", "--root", root, "--deny"])).is_ok());
    }

    #[test]
    fn lint_deny_gates_on_findings() {
        let root = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../lint/tests/fixtures/lock_cycle"
        );
        // Without --deny the findings print but the run succeeds...
        assert!(run(&parsed(&["lint", "--root", root])).is_ok());
        // ...with --deny they are fatal, like fsck's problem count.
        let err = run(&parsed(&["lint", "--root", root, "--deny"])).unwrap_err();
        assert!(err.to_string().contains("finding"), "{err}");
    }

    #[test]
    fn unknown_subcommand_is_usage_error() {
        assert!(run(&parsed(&["frobnicate"])).is_err());
        assert!(run(&parsed(&["fig", "13"])).is_err());
        assert!(run(&parsed(&["simulate", "everything"])).is_err());
    }

    #[test]
    fn simulate_availability_runs_small() {
        let p = parsed(&[
            "simulate",
            "availability",
            "--scheme",
            "ac",
            "--sites",
            "2",
            "--rho",
            "0.3",
            "--horizon",
            "500",
        ]);
        assert!(run(&p).is_ok());
    }

    #[test]
    fn simulate_traffic_runs_small() {
        let p = parsed(&[
            "simulate", "traffic", "--scheme", "voting", "--sites", "3", "--ops", "500", "--net",
            "unicast",
        ]);
        assert!(run(&p).is_ok());
    }

    #[test]
    fn mkfs_and_fsck_roundtrip() -> Result<(), UsageError> {
        let mut path = std::env::temp_dir();
        path.push(format!("blockrep-cli-mkfs-{}.img", std::process::id()));
        let path_str = path
            .to_str()
            .ok_or_else(|| UsageError("temp path is not UTF-8".into()))?
            .to_string();
        run(&parsed(&[
            "mkfs",
            &path_str,
            "--blocks",
            "128",
            "--block-size",
            "512",
        ]))?;
        // A fresh image is clean.
        run(&parsed(&["fsck", &path_str]))?;
        // Populate it and re-check through a remount.
        {
            let dev = blockrep_storage::FileStore::open(&path_str, 512)
                .map_err(|e| UsageError(format!("open: {e}")))?;
            let fs = blockrep_fs::FileSystem::mount(dev)
                .map_err(|e| UsageError(format!("mount: {e}")))?;
            fs.write_file("/hello", b"persist me")
                .map_err(|e| UsageError(format!("write: {e}")))?;
        }
        run(&parsed(&["fsck", &path_str]))?;
        // A corrupted superblock is rejected.
        {
            use std::io::{Seek, Write};
            let mut f = std::fs::OpenOptions::new().write(true).open(&path_str)?;
            f.seek(std::io::SeekFrom::Start(0))?;
            f.write_all(b"XXXX")?;
        }
        assert!(run(&parsed(&["fsck", &path_str])).is_err());
        std::fs::remove_file(path)?;
        Ok(())
    }

    #[test]
    fn fsck_journal_replays_committed_records() -> Result<(), UsageError> {
        use blockrep_storage::{BlockDevice, FileStore, Wal, WalRecord};
        use blockrep_types::{BlockData, BlockIndex, VersionNumber};
        let mut path = std::env::temp_dir();
        path.push(format!("blockrep-cli-fsck-wal-{}.img", std::process::id()));
        let path_str = path
            .to_str()
            .ok_or_else(|| UsageError("temp path is not UTF-8".into()))?
            .to_string();
        run(&parsed(&[
            "mkfs",
            &path_str,
            "--blocks",
            "128",
            "--block-size",
            "512",
        ]))?;
        // Without a journal file, --journal notes the absence and proceeds.
        run(&parsed(&["fsck", &path_str, "--journal"]))?;
        // Journal one committed install of a free data block, then recover.
        let wal_path = format!("{path_str}.wal");
        let journal = FileStore::create(&wal_path, 4, 512)
            .map_err(|e| UsageError(format!("journal create: {e}")))?;
        let wal = Wal::create(journal, 1).map_err(|e| UsageError(format!("wal: {e}")))?;
        wal.append(&WalRecord {
            block: BlockIndex::new(100),
            version: VersionNumber::new(1),
            payload: BlockData::from(vec![0xAB; 512]),
        })
        .map_err(|e| UsageError(format!("append: {e}")))?;
        drop(wal);
        run(&parsed(&["fsck", &path_str, "--journal"]))?;
        let img = FileStore::open(&path_str, 512).map_err(|e| UsageError(format!("open: {e}")))?;
        let replayed = img
            .read_block(BlockIndex::new(100))
            .map_err(|e| UsageError(format!("read: {e}")))?;
        assert_eq!(replayed.as_slice(), &[0xAB; 512][..]);
        std::fs::remove_file(path)?;
        std::fs::remove_file(wal_path)?;
        Ok(())
    }

    #[test]
    fn bench_storage_suite_writes_and_checks_a_report() -> Result<(), UsageError> {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "blockrep-cli-bench-storage-{}.json",
            std::process::id()
        ));
        let path_str = path
            .to_str()
            .ok_or_else(|| UsageError("temp path is not UTF-8".into()))?
            .to_string();
        run(&parsed(&[
            "bench",
            "--suite",
            "storage",
            "--data-blocks",
            "4",
            "--block-size",
            "64",
            "--writes",
            "8",
            "--out",
            &path_str,
        ]))?;
        run(&parsed(&[
            "bench", "--suite", "storage", "--check", &path_str,
        ]))?;
        // A storage report is not a protocol report.
        assert!(run(&parsed(&["bench", "--check", &path_str])).is_err());
        std::fs::remove_file(path)?;
        Ok(())
    }

    #[test]
    fn bench_shard_suite_writes_and_checks_a_report() -> Result<(), UsageError> {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "blockrep-cli-bench-shard-{}.json",
            std::process::id()
        ));
        let path_str = path
            .to_str()
            .ok_or_else(|| UsageError("temp path is not UTF-8".into()))?
            .to_string();
        run(&parsed(&[
            "bench",
            "--suite",
            "shard",
            "--shards",
            "1,2",
            "--groups",
            "4",
            "--group-size",
            "4",
            "--block-size",
            "16",
            "--clients",
            "2",
            "--batches",
            "2",
            "--latency-us",
            "0",
            "--out",
            &path_str,
        ]))?;
        run(&parsed(&[
            "bench", "--suite", "shard", "--check", &path_str,
        ]))?;
        // A shard report is not a protocol report.
        assert!(run(&parsed(&["bench", "--check", &path_str])).is_err());
        // Malformed sweeps are rejected before any cluster spawns.
        assert!(run(&parsed(&["bench", "--suite", "shard", "--shards", "0"])).is_err());
        assert!(run(&parsed(&["bench", "--suite", "shard", "--shards", "x"])).is_err());
        std::fs::remove_file(path)?;
        Ok(())
    }

    #[test]
    fn mkfs_shards_formats_images_and_prints_the_manifest() -> Result<(), UsageError> {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "blockrep-cli-mkfs-shard-{}.img",
            std::process::id()
        ));
        let path_str = path
            .to_str()
            .ok_or_else(|| UsageError("temp path is not UTF-8".into()))?
            .to_string();
        run(&parsed(&[
            "mkfs",
            &path_str,
            "--blocks",
            "128",
            "--block-size",
            "512",
            "--shards",
            "2",
        ]))?;
        for s in 0..2 {
            let shard_path = format!("{path_str}.shard{s}");
            // Each shard image is a complete, mountable device.
            run(&parsed(&["fsck", &shard_path]))?;
            std::fs::remove_file(shard_path)?;
        }
        Ok(())
    }

    #[test]
    fn chaos_shard_scenarios_run() {
        let p = parsed(&["chaos", "--shards", "2", "--scheme", "mcv"]);
        assert!(run(&p).is_ok());
        // A single shard is not a sharded device.
        let p = parsed(&["chaos", "--shards", "1", "--scheme", "mcv"]);
        assert!(run(&p).is_err());
    }

    #[test]
    fn chaos_journaled_runs_small() {
        let p = parsed(&[
            "chaos",
            "--seed",
            "1",
            "--steps",
            "8",
            "--scheme",
            "ac",
            "--journaled",
        ]);
        assert!(run(&p).is_ok());
    }

    #[test]
    fn chaos_runs_small() {
        // Exercises the mcv alias and one short seed on all three runtimes.
        let p = parsed(&["chaos", "--seed", "1", "--steps", "8", "--scheme", "mcv"]);
        assert!(run(&p).is_ok());
    }

    #[test]
    fn bench_writes_and_checks_a_report() -> Result<(), UsageError> {
        let mut path = std::env::temp_dir();
        path.push(format!("blockrep-cli-bench-{}.json", std::process::id()));
        let path_str = path
            .to_str()
            .ok_or_else(|| UsageError("temp path is not UTF-8".into()))?
            .to_string();
        run(&parsed(&[
            "bench",
            "--scheme",
            "voting",
            "--sites",
            "3",
            "--blocks",
            "2",
            "--block-size",
            "32",
            "--ops",
            "4",
            "--out",
            &path_str,
        ]))?;
        run(&parsed(&["bench", "--check", &path_str]))?;
        // Damage the report: --check must fail.
        std::fs::write(&path, "{\"schema\": \"wrong\"}")?;
        assert!(run(&parsed(&["bench", "--check", &path_str])).is_err());
        std::fs::remove_file(path)?;
        Ok(())
    }

    #[test]
    fn bench_fs_suite_writes_and_checks_a_report() -> Result<(), UsageError> {
        let mut path = std::env::temp_dir();
        path.push(format!("blockrep-cli-bench-fs-{}.json", std::process::id()));
        let path_str = path
            .to_str()
            .ok_or_else(|| UsageError("temp path is not UTF-8".into()))?
            .to_string();
        run(&parsed(&[
            "bench",
            "--suite",
            "fs",
            "--sites",
            "3",
            "--file-blocks",
            "2",
            "--block-size",
            "64",
            "--ops",
            "1",
            "--latency-us",
            "0",
            "--out",
            &path_str,
        ]))?;
        run(&parsed(&["bench", "--suite", "fs", "--check", &path_str]))?;
        // A protocol report is not an fs report, and vice versa.
        assert!(run(&parsed(&["bench", "--check", &path_str])).is_err());
        assert!(run(&parsed(&["bench", "--suite", "nope"])).is_err());
        std::fs::remove_file(path)?;
        Ok(())
    }

    #[test]
    fn bench_trace_suite_writes_and_checks_a_report() -> Result<(), UsageError> {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "blockrep-cli-bench-trace-{}.json",
            std::process::id()
        ));
        let path_str = path
            .to_str()
            .ok_or_else(|| UsageError("temp path is not UTF-8".into()))?
            .to_string();
        run(&parsed(&[
            "bench",
            "--suite",
            "trace",
            "--sites",
            "3",
            "--blocks",
            "2",
            "--block-size",
            "32",
            "--latency-us",
            "0",
            "--out",
            &path_str,
        ]))?;
        run(&parsed(&[
            "bench", "--suite", "trace", "--check", &path_str,
        ]))?;
        // A trace report is not a protocol report.
        assert!(run(&parsed(&["bench", "--check", &path_str])).is_err());
        std::fs::remove_file(path)?;
        Ok(())
    }

    #[test]
    fn trace_subcommand_writes_and_checks_a_chrome_dump() -> Result<(), UsageError> {
        let mut path = std::env::temp_dir();
        path.push(format!("blockrep-cli-trace-{}.json", std::process::id()));
        let path_str = path
            .to_str()
            .ok_or_else(|| UsageError("temp path is not UTF-8".into()))?
            .to_string();
        run(&parsed(&[
            "trace",
            "--scheme",
            "voting",
            "--runtime",
            "deterministic",
            "--blocks",
            "2",
            "--block-size",
            "32",
            "--latency-us",
            "0",
            "--out",
            &path_str,
        ]))?;
        run(&parsed(&["trace", "--check", &path_str]))?;
        // A damaged dump is rejected.
        std::fs::write(&path, "{\"traceEvents\": 7}")?;
        assert!(run(&parsed(&["trace", "--check", &path_str])).is_err());
        assert!(run(&parsed(&["trace", "--runtime", "quantum"])).is_err());
        assert!(run(&parsed(&["trace", "--io", "sideways"])).is_err());
        std::fs::remove_file(path)?;
        Ok(())
    }

    #[test]
    fn chaos_trace_out_writes_a_flight_recorder_dump() -> Result<(), UsageError> {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "blockrep-cli-chaos-trace-{}.json",
            std::process::id()
        ));
        let path_str = path
            .to_str()
            .ok_or_else(|| UsageError("temp path is not UTF-8".into()))?
            .to_string();
        run(&parsed(&[
            "chaos",
            "--seed",
            "2",
            "--steps",
            "6",
            "--scheme",
            "ac",
            "--trace-out",
            &path_str,
        ]))?;
        let dump = std::fs::read_to_string(&path)?;
        blockrep_bench::trace_bench::validate_chrome_trace(&dump)
            .map_err(|e| UsageError(format!("chaos dump invalid: {e}")))?;
        std::fs::remove_file(path)?;
        Ok(())
    }

    #[test]
    fn simulate_lifetimes_runs_small() {
        let p = parsed(&[
            "simulate",
            "lifetimes",
            "--scheme",
            "nac",
            "--sites",
            "2",
            "--rho",
            "0.5",
            "--episodes",
            "40",
        ]);
        assert!(run(&p).is_ok());
    }
}
