//! Pass 4 — wire-tag exhaustiveness.
//!
//! In `wire.rs`, every `impl` that has both an `encode` and a `decode`
//! function claims one tag byte per variant: encode arms start with
//! `buf.put_u8(N)` and decode matches on integer patterns. This pass
//! cross-checks, per impl, that the two sets agree and that no tag is
//! claimed twice on either side. Only the *top-level* match arms count —
//! nested sub-tag matches (e.g. the `StorageFault` encoding inside the
//! `ApplyWriteFaulty` arm) are one brace level deeper and are ignored,
//! which is exactly right: their tag space is independent.

use super::PassOutput;
use crate::lexer::{Tok, Token};
use crate::model::{match_brace, Function, Workspace};
use crate::{Finding, Severity};
use std::collections::BTreeMap;

const PASS: &str = "wire-tags";

pub(crate) fn run(ws: &Workspace, out: &mut PassOutput) {
    for file in &ws.files {
        if file.stem != "wire" {
            continue;
        }
        let toks = file.tokens();
        // impl type -> (encode fn, decode fn)
        let mut pairs: BTreeMap<&str, (Option<&Function>, Option<&Function>)> = BTreeMap::new();
        for func in &file.functions {
            if let Some(ty) = func.impl_type.as_deref() {
                let entry = pairs.entry(ty).or_default();
                match func.name.as_str() {
                    "encode" => entry.0 = Some(func),
                    "decode" => entry.1 = Some(func),
                    _ => {}
                }
            }
        }
        for (ty, (encode, decode)) in pairs {
            let (Some(encode), Some(decode)) = (encode, decode) else {
                continue;
            };
            let encode_tags = encode_tags(toks, encode);
            let decode_tags = decode_tags(toks, decode);
            if encode_tags.is_empty() || decode_tags.is_empty() {
                continue;
            }
            check(ty, &file.rel, &encode_tags, &decode_tags, out);
            out.verified.push(format!(
                "{}:{}: [wire-tags] `{ty}` encode/decode cover tags {{{}}}",
                file.rel,
                encode.line,
                render_tags(&encode_tags)
            ));
        }
    }
}

/// Tags claimed by `encode`: the first `put_u8(N)` in each top-level arm
/// of the `match self`.
fn encode_tags(toks: &[Token], func: &Function) -> Vec<(u64, u32)> {
    let Some((open, close)) = self_match(toks, func) else {
        return Vec::new();
    };
    let arms = arm_starts(toks, open, close);
    let mut tags = Vec::new();
    for (i, &arm) in arms.iter().enumerate() {
        let end = arms.get(i + 1).copied().unwrap_or(close);
        let mut j = arm;
        while j + 2 < end {
            if toks[j].tok.is_ident("put_u8") && toks[j + 1].tok.is_punct('(') {
                if let Tok::Int(v) = toks[j + 2].tok {
                    tags.push((v, toks[j].line));
                }
                break;
            }
            j += 1;
        }
    }
    tags
}

/// Tags matched by `decode`: integer literals in the top-level arm
/// patterns of its first `match`.
fn decode_tags(toks: &[Token], func: &Function) -> Vec<(u64, u32)> {
    let (fopen, fclose) = func.body;
    let mut m = fopen + 1;
    let mut found = None;
    while m < fclose {
        if toks[m].tok.is_ident("match") {
            let mut k = m + 1;
            while k < fclose && !toks[k].tok.is_punct('{') {
                k += 1;
            }
            if k < fclose {
                found = Some((k, match_brace(toks, k)));
            }
            break;
        }
        m += 1;
    }
    let Some((open, close)) = found else {
        return Vec::new();
    };
    let mut tags = Vec::new();
    for arm in arm_starts(toks, open, close) {
        // Walk back over the pattern: integer literals joined by `|`.
        let mut k = arm; // index of the `=` of `=>`
        while k > open + 1 {
            match &toks[k - 1].tok {
                Tok::Int(v) => {
                    tags.push((*v, toks[k - 1].line));
                    k -= 1;
                }
                Tok::Punct('|') => k -= 1,
                _ => break,
            }
        }
    }
    tags
}

/// Finds the `match self { .. }` (or `match *self`) block in `func`.
fn self_match(toks: &[Token], func: &Function) -> Option<(usize, usize)> {
    let (open, close) = func.body;
    let mut j = open + 1;
    while j < close {
        if toks[j].tok.is_ident("match") {
            let mut k = j + 1;
            let mut has_self = false;
            while k < close && !toks[k].tok.is_punct('{') {
                has_self |= toks[k].tok.is_ident("self");
                k += 1;
            }
            if has_self && k < close {
                return Some((k, match_brace(toks, k)));
            }
        }
        j += 1;
    }
    None
}

/// Indices of the `=` of every depth-1 `=>` inside a match block.
fn arm_starts(toks: &[Token], open: usize, close: usize) -> Vec<usize> {
    let mut arms = Vec::new();
    let mut depth = 0i32;
    for j in open..close {
        match &toks[j].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => depth -= 1,
            Tok::Punct('=')
                if depth == 1
                    && toks.get(j + 1).is_some_and(|t| t.tok.is_punct('>'))
                    && !toks[j - 1].tok.is_punct('=')
                    && !toks[j - 1].tok.is_punct('<')
                    && !toks[j - 1].tok.is_punct('>') =>
            {
                arms.push(j);
            }
            _ => {}
        }
    }
    arms
}

fn check(ty: &str, rel: &str, encode: &[(u64, u32)], decode: &[(u64, u32)], out: &mut PassOutput) {
    for (side, tags) in [("encode", encode), ("decode", decode)] {
        let mut seen: BTreeMap<u64, u32> = BTreeMap::new();
        for &(v, line) in tags {
            if let Some(&first) = seen.get(&v) {
                out.findings.push(Finding::new(
                    PASS,
                    rel,
                    line,
                    Severity::Error,
                    format!(
                        "`{ty}` {side} claims wire tag {v} twice (first at line \
                         {first}) — one variant is unreachable on the wire"
                    ),
                ));
            } else {
                seen.insert(v, line);
            }
        }
    }
    for &(v, line) in encode {
        if !decode.iter().any(|&(d, _)| d == v) {
            out.findings.push(Finding::new(
                PASS,
                rel,
                line,
                Severity::Error,
                format!(
                    "`{ty}` encodes wire tag {v} but decode has no arm for it — \
                     peers cannot parse this variant"
                ),
            ));
        }
    }
    for &(v, line) in decode {
        if !encode.iter().any(|&(e, _)| e == v) {
            out.findings.push(Finding::new(
                PASS,
                rel,
                line,
                Severity::Error,
                format!(
                    "`{ty}` decodes wire tag {v} but encode never produces it — \
                     orphan tag (stale arm or missing encode case)"
                ),
            ));
        }
    }
}

fn render_tags(tags: &[(u64, u32)]) -> String {
    let mut vals: Vec<u64> = tags.iter().map(|&(v, _)| v).collect();
    vals.sort_unstable();
    vals.dedup();
    let strs: Vec<String> = vals.iter().map(u64::to_string).collect();
    strs.join(", ")
}
