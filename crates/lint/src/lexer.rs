//! A minimal Rust lexer.
//!
//! The passes only need identifiers, integer literals and punctuation with
//! accurate line numbers; string/char/float literals are collapsed to bare
//! markers so their contents can never be mistaken for code. Comments are
//! skipped entirely except for `// lint: allow(pass, reason)` markers, which
//! are collected so passes can honour inline suppressions.

/// A token kind. Literal payloads the passes never inspect are dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// An integer literal; `u64::MAX` when the value does not fit or parse.
    Int(u64),
    /// A float literal.
    Float,
    /// A string literal (including raw and byte strings).
    Str,
    /// A char or byte literal.
    Char,
    /// One punctuation character; multi-char operators appear as runs.
    Punct(char),
}

impl Tok {
    /// The identifier text, if this token is one.
    pub(crate) fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the identifier `s`.
    pub(crate) fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }

    /// Whether this token is the punctuation char `c`.
    pub(crate) fn is_punct(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p) if *p == c)
    }
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub(crate) struct Token {
    pub(crate) tok: Tok,
    pub(crate) line: u32,
}

/// An inline `// lint: allow(pass, reason)` suppression marker. It applies
/// to findings on its own line and the line directly below it, so both
/// trailing and preceding-line placement work.
#[derive(Debug, Clone)]
pub(crate) struct AllowMarker {
    pub(crate) line: u32,
    pub(crate) pass: String,
    pub(crate) reason: String,
}

/// Lexer output for one file.
#[derive(Debug, Default)]
pub(crate) struct Lexed {
    pub(crate) tokens: Vec<Token>,
    pub(crate) allows: Vec<AllowMarker>,
}

/// Lexes `src`. Unrecognised bytes become punctuation tokens; the lexer
/// never fails, matching the "best effort over real source" contract of
/// the passes.
pub(crate) fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line: u32 = 1;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            if let Some(marker) = parse_allow(&text, line) {
                out.allows.push(marker);
            }
        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else if c == '"' {
            let l = line;
            i = skip_string(&chars, i, &mut line);
            out.tokens.push(Token {
                tok: Tok::Str,
                line: l,
            });
        } else if (c == 'r' || c == 'b') && starts_string_like(&chars, i) {
            let l = line;
            i = skip_string_like(&chars, i, &mut line);
            out.tokens.push(Token {
                tok: Tok::Str,
                line: l,
            });
        } else if c == 'b' && chars.get(i + 1) == Some(&'\'') {
            let l = line;
            i = skip_char(&chars, i + 1);
            out.tokens.push(Token {
                tok: Tok::Char,
                line: l,
            });
        } else if c == '\'' {
            // Char literal or lifetime.
            if chars.get(i + 1) == Some(&'\\')
                || (chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\''))
            {
                let l = line;
                i = skip_char(&chars, i);
                out.tokens.push(Token {
                    tok: Tok::Char,
                    line: l,
                });
            } else {
                i += 1;
                while i < chars.len() && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Lifetime,
                    line,
                });
            }
        } else if c.is_ascii_digit() {
            let start = i;
            let mut float = false;
            i += 1;
            while i < chars.len() && (chars[i] == '_' || chars[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            // A `.` continues the literal only when a digit follows (so
            // `0..n` stays two range dots).
            if i < chars.len()
                && chars[i] == '.'
                && chars.get(i + 1).is_some_and(char::is_ascii_digit)
            {
                float = true;
                i += 1;
                while i < chars.len() && (chars[i] == '_' || chars[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
            }
            let tok = if float {
                Tok::Float
            } else {
                let text: String = chars[start..i].iter().filter(|c| **c != '_').collect();
                Tok::Int(parse_int(&text))
            };
            out.tokens.push(Token { tok, line });
        } else if c == '_' || c.is_alphabetic() {
            let start = i;
            i += 1;
            while i < chars.len() && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            out.tokens.push(Token {
                tok: Tok::Ident(text),
                line,
            });
        } else {
            out.tokens.push(Token {
                tok: Tok::Punct(c),
                line,
            });
            i += 1;
        }
    }
    out
}

/// Whether position `i` (at `r` or `b`) starts a raw/byte string literal
/// rather than an identifier.
fn starts_string_like(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) == Some(&'"') {
            return true;
        }
        if chars.get(j) != Some(&'r') {
            return false;
        }
    }
    // At `r`: raw string is r"..." or r#"..."# (any number of hashes);
    // `r#ident` (raw identifier) is not a string because no quote follows
    // its hashes.
    j += 1;
    let mut k = j;
    while chars.get(k) == Some(&'#') {
        k += 1;
    }
    chars.get(k) == Some(&'"')
}

/// Skips a raw/byte string starting at `i`; returns the index just past it.
fn skip_string_like(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    if chars[i] == 'b' {
        i += 1;
    }
    if chars.get(i) == Some(&'r') {
        i += 1;
        let mut hashes = 0;
        while chars.get(i) == Some(&'#') {
            hashes += 1;
            i += 1;
        }
        i += 1; // opening quote
        loop {
            match chars.get(i) {
                None => return i,
                Some('\n') => *line += 1,
                Some('"') => {
                    let mut k = 0;
                    while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                        k += 1;
                    }
                    if k == hashes {
                        return i + 1 + hashes;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    } else {
        skip_string(chars, i, line)
    }
}

/// Skips a `"..."` string (with escapes) starting at the opening quote.
fn skip_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a `'x'` char literal starting at the opening quote.
fn skip_char(chars: &[char], mut i: usize) -> usize {
    i += 1;
    if chars.get(i) == Some(&'\\') {
        i += 2;
    }
    while i < chars.len() && chars[i] != '\'' {
        i += 1;
    }
    i + 1
}

/// Best-effort integer parse for decimal and `0x`/`0o`/`0b` literals,
/// ignoring type suffixes; `u64::MAX` when nothing parses.
fn parse_int(text: &str) -> u64 {
    let (radix, digits) = if let Some(hex) = text.strip_prefix("0x") {
        (16, hex)
    } else if let Some(oct) = text.strip_prefix("0o") {
        (8, oct)
    } else if let Some(bin) = text.strip_prefix("0b") {
        (2, bin)
    } else {
        (10, text)
    };
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    u64::from_str_radix(&digits[..end], radix).unwrap_or(u64::MAX)
}

/// Parses `// lint: allow(pass, reason)` out of one line comment.
fn parse_allow(comment: &str, line: u32) -> Option<AllowMarker> {
    let rest = comment.split_once("lint:")?.1;
    let inner = rest.trim().strip_prefix("allow(")?;
    let inner = inner.rsplit_once(')')?.0;
    let (pass, reason) = match inner.split_once(',') {
        Some((p, r)) => (p.trim(), r.trim()),
        None => (inner.trim(), ""),
    };
    Some(AllowMarker {
        line,
        pass: pass.to_string(),
        reason: reason.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.tok.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let a = "lock() inside a string";
            // lock() inside a comment
            /* nested /* lock() */ comment */
            let b = r#"raw lock()"#;
            let c = b"bytes";
            let d = 'x';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"lock".to_string()), "{ids:?}");
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").tokens;
        let lifetimes = toks.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let chars = toks.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn ints_parse_and_ranges_do_not_merge() {
        let toks = lex("match t { 0 => a, 17 => b, 0x1f => c }; for i in 0..3 {}").tokens;
        let ints: Vec<u64> = toks
            .iter()
            .filter_map(|t| match t.tok {
                Tok::Int(v) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(ints, vec![0, 17, 0x1f, 0, 3]);
    }

    #[test]
    fn allow_markers_are_collected() {
        let src =
            "let x = 1;\n// lint: allow(atomics, the fence lives in the caller)\nx.load(Relaxed);";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        let m = &lexed.allows[0];
        assert_eq!((m.line, m.pass.as_str()), (2, "atomics"));
        assert_eq!(m.reason, "the fence lives in the caller");
    }

    #[test]
    fn lines_survive_multiline_constructs() {
        let src = "/* a\nb */\nfn f() {}\n\"x\ny\"\nfn g() {}";
        let toks = lex(src).tokens;
        let g = toks.iter().find(|t| t.tok.is_ident("g")).unwrap();
        assert_eq!(g.line, 6);
    }
}
