//! The acceptance check for the observability layer: with it enabled, a
//! real TCP cluster run and a simulator run each produce a metrics
//! snapshot whose per-`OpClass` message counts **exactly** match the
//! `TrafficCounter` totals, alongside latency histograms.
//!
//! Enables the process-global observability flag, so this test file runs
//! as a single test function in its own binary.

use blockrep::core::simulate::traffic::{measure, TrafficConfig};
use blockrep::core::TcpCluster;
use blockrep::net::{DeliveryMode, OpClass};
use blockrep::obs::{self, metrics::Registry};
use blockrep::types::{BlockData, BlockIndex, DeviceConfig, Scheme, SiteId};

#[test]
fn metrics_snapshots_match_traffic_counters_exactly() {
    obs::enable();
    tcp_cluster_run();
    simulator_run();
}

fn tcp_cluster_run() {
    let cfg = DeviceConfig::builder(Scheme::AvailableCopy)
        .sites(3)
        .num_blocks(8)
        .block_size(16)
        .build()
        .unwrap();
    let cluster = TcpCluster::spawn(cfg, DeliveryMode::Unicast).unwrap();
    for i in 0..8u64 {
        let origin = SiteId::new((i % 3) as u32);
        let k = BlockIndex::new(i % 8);
        cluster
            .write(origin, k, BlockData::from(vec![i as u8; 16]))
            .unwrap();
        cluster.read(origin, k).unwrap();
    }
    cluster.fail_site(SiteId::new(2));
    cluster
        .write(
            SiteId::new(0),
            BlockIndex::new(0),
            BlockData::from(vec![7; 16]),
        )
        .unwrap();
    cluster.repair_site(SiteId::new(2));

    let traffic = cluster.counter().snapshot();
    let registry = Registry::new();
    traffic.export_to(&registry);
    let snap = registry.snapshot();

    for op in OpClass::ALL {
        assert_eq!(
            snap.counter(&format!("net.msgs.{}", op.label())),
            Some(traffic.total_for(op)),
            "tcp: class {op} diverges from the traffic counter"
        );
    }
    assert_eq!(snap.counter("net.msgs.total"), Some(traffic.total()));
    assert_eq!(
        snap.counter("net.msgs.modeled"),
        Some(traffic.total_modeled())
    );

    // The global registry collected latency histograms for the same run.
    let global = obs::metrics::global().snapshot();
    for name in ["op.read.latency", "op.write.latency", "op.recovery.latency"] {
        let h = global
            .histogram(name)
            .unwrap_or_else(|| panic!("histogram {name} missing"));
        assert!(h.count > 0, "{name} recorded nothing");
        assert!(
            h.p50 <= h.p95 && h.p95 <= h.p99 && h.p99 <= h.max as f64,
            "{name} percentiles out of order: {h:?}"
        );
    }
}

fn simulator_run() {
    let mut cfg = TrafficConfig::new(Scheme::AvailableCopy, 4, DeliveryMode::Multicast);
    cfg.ops = 2_000;
    cfg.rho = 0.2; // failures frequent enough to exercise recovery traffic
    let est = measure(&cfg);

    let registry = Registry::new();
    est.traffic.export_to(&registry);
    let snap = registry.snapshot();

    for op in OpClass::ALL {
        assert_eq!(
            snap.counter(&format!("net.msgs.{}", op.label())),
            Some(est.traffic.total_for(op)),
            "sim: class {op} diverges from the traffic counter"
        );
    }
    assert!(
        est.traffic.total_for(OpClass::Recovery) > 0,
        "experiment must generate recovery traffic"
    );

    // On-failure tracking charges failure notices to the Control class;
    // the §5-comparison total must exclude every one of them.
    let control = snap.counter("net.msgs.control").unwrap();
    assert!(control > 0, "experiment must generate control traffic");
    assert_eq!(
        snap.counter("net.msgs.modeled").unwrap(),
        snap.counter("net.msgs.total").unwrap() - control,
        "Control traffic leaked into the modeled total"
    );
}
