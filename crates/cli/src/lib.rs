//! Implementation of the `blockrep` command line tool.
//!
//! Subcommands:
//!
//! * `blockrep tables` — the paper's equation-level tables E1–E6.
//! * `blockrep fig <9|10|11|12>` — regenerate an evaluation figure
//!   (analytic + measured).
//! * `blockrep simulate availability|traffic|lifetimes [flags]` —
//!   parameterized experiments against the real protocol implementation.
//! * `blockrep shell [flags]` — an interactive cluster you can read, write,
//!   crash, partition, and audit from a prompt.
//! * `blockrep chaos [flags]` — seeded fault-injection with schedule
//!   shrinking over all three runtimes.
//! * `blockrep bench [--suite S] [flags]` — throughput/latency suites with
//!   JSON reports; `blockrep trace` for per-phase latency attribution.
//! * `blockrep mkfs` / `blockrep fsck` — format and check file-backed
//!   device images (with WAL replay under `--journal`).
//! * `blockrep lint [--deny]` — the [`blockrep_lint`] static analyzer over
//!   the workspace sources: lock-order cycles, atomics fence discipline,
//!   hot-path observability guards, and wire-tag exhaustiveness.
//!
//! Flag parsing is a deliberately small hand-rolled affair ([`args`]) —
//! the project's dependency policy admits no CLI framework, and the
//! handful of `--key value` flags here do not justify one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod shell;
