//! Traffic measurement by discrete-event simulation.

use crate::simulate::workload::{Op, WorkloadGen};
use crate::{Cluster, ClusterOptions};
use blockrep_analysis::traffic::{costs, NetModel, OpCosts};
use blockrep_net::{DeliveryMode, OpClass, TrafficSnapshot};
use blockrep_sim::{Exponential, Scheduler};
use blockrep_types::{BlockData, DeviceConfig, Scheme, SiteId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one traffic experiment.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Consistency scheme under test.
    pub scheme: Scheme,
    /// Number of replica sites.
    pub n: usize,
    /// Failure-to-repair rate ratio `ρ = λ/µ`.
    pub rho: f64,
    /// Network environment.
    pub mode: DeliveryMode,
    /// Reads issued per write (the paper plots x ∈ {1, 2, 4}).
    pub reads_per_write: f64,
    /// Number of block requests to issue.
    pub ops: u64,
    /// Request arrival rate relative to `µ = 1` (disk accesses are far more
    /// frequent than repairs; the paper's argument depends on it).
    pub op_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TrafficConfig {
    /// A standard experiment at the paper's typical `ρ = 0.05` with the
    /// observed 2.5:1 read:write ratio.
    pub fn new(scheme: Scheme, n: usize, mode: DeliveryMode) -> Self {
        TrafficConfig {
            scheme,
            n,
            rho: 0.05,
            mode,
            reads_per_write: 2.5,
            ops: 40_000,
            op_rate: 40.0,
            seed: 0x007A_FF1C,
        }
    }
}

/// Measured per-operation transmissions, next to the §5 model.
#[derive(Debug, Clone, Copy)]
pub struct TrafficEstimate {
    /// Measured mean transmissions per successful read.
    pub per_read: f64,
    /// Measured mean transmissions per successful write.
    pub per_write: f64,
    /// Measured mean transmissions per site recovery.
    pub per_recovery: f64,
    /// Successful reads issued.
    pub reads: u64,
    /// Successful writes issued.
    pub writes: u64,
    /// Site recoveries processed.
    pub recoveries: u64,
    /// The §5 analytical costs for the same parameters.
    pub model: OpCosts,
    /// The raw end-of-run traffic counters, for export into a metrics
    /// registry ([`TrafficSnapshot::export_to`]) or byte estimates.
    pub traffic: TrafficSnapshot,
}

impl TrafficEstimate {
    /// The composite §5 figure: transmissions per (1 write + x reads).
    pub fn per_write_group(&self, reads_per_write: f64) -> f64 {
        self.per_write + reads_per_write * self.per_read
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Fail(SiteId),
    RepairDone(SiteId),
    Request,
}

/// Runs one traffic experiment: Poisson failures/repairs in the background,
/// block requests from random serving sites in the foreground, every
/// high-level transmission counted by the protocol layer.
///
/// # Panics
///
/// Panics on degenerate parameters.
pub fn measure(config: &TrafficConfig) -> TrafficEstimate {
    assert!(config.n >= 1 && config.rho > 0.0 && config.ops > 0 && config.op_rate > 0.0);
    let device = DeviceConfig::builder(config.scheme)
        .sites(config.n)
        .num_blocks(16)
        .block_size(8)
        .build()
        .expect("simulation device configuration is valid");
    let cluster = Cluster::new(device, ClusterOptions { mode: config.mode });
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut workload = WorkloadGen::new(config.reads_per_write, 16, config.seed ^ 0x51D);
    let fail_dist = Exponential::new(config.rho);
    let repair_dist = Exponential::new(1.0);
    let req_dist = Exponential::new(config.op_rate);
    let mut sched: Scheduler<Event> = Scheduler::new();
    for s in SiteId::all(config.n) {
        sched.schedule_after(fail_dist.sample(&mut rng), Event::Fail(s));
    }
    sched.schedule_after(req_dist.sample(&mut rng), Event::Request);

    let (mut reads, mut writes, mut recoveries) = (0u64, 0u64, 0u64);
    let (mut read_traffic, mut write_traffic) = (0u64, 0u64);
    let mut issued = 0u64;
    let mut fill = 0u8;
    while issued < config.ops {
        let Some((_, event)) = sched.pop() else { break };
        match event {
            Event::Fail(s) => {
                cluster.fail_site(s);
                sched.schedule_after(repair_dist.sample(&mut rng), Event::RepairDone(s));
            }
            Event::RepairDone(s) => {
                cluster.repair_site(s);
                recoveries += 1;
                sched.schedule_after(fail_dist.sample(&mut rng), Event::Fail(s));
            }
            Event::Request => {
                issued += 1;
                // §5 models *successful* operations from a serving site;
                // unsuccessful attempts still generate traffic (which would
                // make voting look "even less favorable", as the paper
                // notes) but are excluded from the per-op averages.
                if let Some(origin) = pick_serving(&cluster, &mut rng) {
                    let before = cluster.traffic();
                    match workload.next_op() {
                        Op::Read(k) => {
                            if cluster.read(origin, k).is_ok() {
                                reads += 1;
                                read_traffic +=
                                    (cluster.traffic() - before).total_for(OpClass::Read);
                            }
                        }
                        Op::Write(k) => {
                            fill = fill.wrapping_add(1);
                            if cluster
                                .write(origin, k, BlockData::from(vec![fill; 8]))
                                .is_ok()
                            {
                                writes += 1;
                                write_traffic +=
                                    (cluster.traffic() - before).total_for(OpClass::Write);
                            }
                        }
                    }
                }
                sched.schedule_after(req_dist.sample(&mut rng), Event::Request);
            }
        }
    }
    let snap = cluster.traffic();
    let per = |total: u64, count: u64| {
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    };
    TrafficEstimate {
        per_read: per(read_traffic, reads),
        per_write: per(write_traffic, writes),
        per_recovery: per(snap.total_for(OpClass::Recovery), recoveries),
        reads,
        writes,
        recoveries,
        model: costs(config.scheme, net_model(config.mode), config.n, config.rho),
        traffic: snap,
    }
}

/// Maps the transport enum onto the analysis enum.
pub fn net_model(mode: DeliveryMode) -> NetModel {
    match mode {
        DeliveryMode::Multicast => NetModel::Multicast,
        DeliveryMode::Unicast => NetModel::Unicast,
    }
}

fn pick_serving(cluster: &Cluster, rng: &mut StdRng) -> Option<SiteId> {
    let candidates: Vec<SiteId> = cluster
        .config()
        .site_ids()
        .filter(|&s| match cluster.config().scheme() {
            Scheme::Voting => cluster.site_state(s).is_operational(),
            _ => cluster.site_state(s).can_serve(),
        })
        .collect();
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.random_range(0..candidates.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(scheme: Scheme, mode: DeliveryMode) -> TrafficEstimate {
        let mut cfg = TrafficConfig::new(scheme, 5, mode);
        cfg.ops = 20_000;
        measure(&cfg)
    }

    #[test]
    fn naive_multicast_write_costs_exactly_one() {
        let est = quick(Scheme::NaiveAvailableCopy, DeliveryMode::Multicast);
        assert_eq!(est.per_write, 1.0);
        assert_eq!(est.per_read, 0.0);
    }

    #[test]
    fn naive_unicast_write_costs_exactly_n_minus_one() {
        let est = quick(Scheme::NaiveAvailableCopy, DeliveryMode::Unicast);
        assert_eq!(est.per_write, 4.0);
    }

    #[test]
    fn available_copy_reads_are_free() {
        for mode in DeliveryMode::ALL {
            let est = quick(Scheme::AvailableCopy, mode);
            assert_eq!(est.per_read, 0.0, "{mode}");
        }
    }

    #[test]
    fn measured_write_costs_track_the_model() {
        for scheme in Scheme::ALL {
            for mode in DeliveryMode::ALL {
                let est = quick(scheme, mode);
                let err = (est.per_write - est.model.write).abs();
                assert!(
                    err < 0.15,
                    "{scheme}/{mode}: measured {} model {}",
                    est.per_write,
                    est.model.write
                );
            }
        }
    }

    #[test]
    fn measured_read_costs_track_the_model() {
        for mode in DeliveryMode::ALL {
            let est = quick(Scheme::Voting, mode);
            // Voting reads may pay the +1 staleness surcharge occasionally,
            // so measurement sits in [model, model + 1].
            assert!(
                est.per_read >= est.model.read - 0.15 && est.per_read <= est.model.read + 1.0,
                "{mode}: measured {} model {}",
                est.per_read,
                est.model.read
            );
        }
    }

    #[test]
    fn voting_recovery_measures_zero_traffic() {
        for mode in DeliveryMode::ALL {
            let est = quick(Scheme::Voting, mode);
            assert!(est.recoveries > 0, "experiment must see repairs");
            assert_eq!(est.per_recovery, 0.0);
        }
    }

    #[test]
    fn available_copy_recovery_tracks_the_model() {
        let est = quick(Scheme::AvailableCopy, DeliveryMode::Multicast);
        assert!(est.recoveries > 0);
        let err = (est.per_recovery - est.model.recovery).abs();
        assert!(
            err < 0.5,
            "measured {} model {}",
            est.per_recovery,
            est.model.recovery
        );
    }
}
