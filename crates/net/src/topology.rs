//! Site reachability.

use blockrep_types::SiteId;

/// Which sites can exchange messages with which.
///
/// The available copy schemes are only correct "when network partitions are
/// known to be impossible" (§3.2); voting tolerates them. The topology
/// models partitions as a group label per site: two sites communicate iff
/// they carry the same label. A fully connected network is the single group
/// 0.
///
/// A site can always "reach" itself, partitioned or not.
///
/// # Examples
///
/// ```
/// use blockrep_net::Topology;
/// use blockrep_types::SiteId;
///
/// let mut topo = Topology::fully_connected(4);
/// assert!(topo.reachable(SiteId::new(0), SiteId::new(3)));
///
/// // Split {0,1} from {2,3}.
/// topo.partition(&[vec![SiteId::new(0), SiteId::new(1)], vec![SiteId::new(2), SiteId::new(3)]]);
/// assert!(topo.reachable(SiteId::new(0), SiteId::new(1)));
/// assert!(!topo.reachable(SiteId::new(1), SiteId::new(2)));
///
/// topo.heal();
/// assert!(topo.reachable(SiteId::new(1), SiteId::new(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    group: Vec<u32>,
}

impl Topology {
    /// A partition-free network of `n` sites — the paper's standing
    /// assumption for available copy.
    pub fn fully_connected(n: usize) -> Self {
        Topology { group: vec![0; n] }
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.group.len()
    }

    /// Whether `from` can send a message to `to`.
    ///
    /// # Panics
    ///
    /// Panics if either site is out of range.
    pub fn reachable(&self, from: SiteId, to: SiteId) -> bool {
        from == to || self.group[from.index()] == self.group[to.index()]
    }

    /// Splits the network into the given groups. Sites not listed in any
    /// group each end up isolated in their own singleton partition.
    ///
    /// # Panics
    ///
    /// Panics if a site appears in more than one group or is out of range.
    pub fn partition(&mut self, groups: &[Vec<SiteId>]) {
        let n = self.group.len();
        // Unlisted sites get unique labels after the explicit groups.
        let mut assigned = vec![false; n];
        for (g, members) in groups.iter().enumerate() {
            for &s in members {
                assert!(s.index() < n, "site {s} out of range");
                assert!(!assigned[s.index()], "site {s} listed in two partitions");
                assigned[s.index()] = true;
                self.group[s.index()] = g as u32;
            }
        }
        let mut next = groups.len() as u32;
        for (i, done) in assigned.iter().enumerate() {
            if !done {
                self.group[i] = next;
                next += 1;
            }
        }
    }

    /// Removes all partitions.
    pub fn heal(&mut self) {
        self.group.iter_mut().for_each(|g| *g = 0);
    }

    /// Whether the network is currently partition-free.
    pub fn is_healed(&self) -> bool {
        self.group.windows(2).all(|w| w[0] == w[1])
    }

    /// All sites reachable from `from` (including itself).
    pub fn reachable_from(&self, from: SiteId) -> Vec<SiteId> {
        SiteId::all(self.group.len())
            .filter(|&to| self.reachable(from, to))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_connected_reaches_everyone() {
        let t = Topology::fully_connected(5);
        for a in SiteId::all(5) {
            for b in SiteId::all(5) {
                assert!(t.reachable(a, b));
            }
        }
        assert!(t.is_healed());
    }

    #[test]
    fn partitions_cut_cross_group_links() {
        let mut t = Topology::fully_connected(5);
        t.partition(&[vec![SiteId::new(0), SiteId::new(2)], vec![SiteId::new(1)]]);
        assert!(t.reachable(SiteId::new(0), SiteId::new(2)));
        assert!(!t.reachable(SiteId::new(0), SiteId::new(1)));
        // Unlisted sites 3 and 4 are isolated — even from each other.
        assert!(!t.reachable(SiteId::new(3), SiteId::new(4)));
        assert!(!t.is_healed());
    }

    #[test]
    fn self_reachability_survives_partitions() {
        let mut t = Topology::fully_connected(3);
        t.partition(&[
            vec![SiteId::new(0)],
            vec![SiteId::new(1)],
            vec![SiteId::new(2)],
        ]);
        for s in SiteId::all(3) {
            assert!(t.reachable(s, s));
            assert_eq!(t.reachable_from(s), vec![s]);
        }
    }

    #[test]
    fn heal_restores_full_connectivity() {
        let mut t = Topology::fully_connected(3);
        t.partition(&[vec![SiteId::new(0)], vec![SiteId::new(1), SiteId::new(2)]]);
        t.heal();
        assert!(t.reachable(SiteId::new(0), SiteId::new(2)));
    }

    #[test]
    #[should_panic(expected = "two partitions")]
    fn duplicate_membership_panics() {
        let mut t = Topology::fully_connected(2);
        t.partition(&[vec![SiteId::new(0)], vec![SiteId::new(0)]]);
    }

    #[test]
    fn reachable_from_lists_partition_members() {
        let mut t = Topology::fully_connected(4);
        t.partition(&[vec![SiteId::new(1), SiteId::new(3)]]);
        assert_eq!(
            t.reachable_from(SiteId::new(1)),
            vec![SiteId::new(1), SiteId::new(3)]
        );
    }
}
