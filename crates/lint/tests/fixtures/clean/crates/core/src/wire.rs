//! Clean wire fixture: encode and decode agree on the tag set exactly.

impl Frame {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Frame::Ping => buf.put_u8(0),
            Frame::Pong => buf.put_u8(1),
        }
    }

    fn decode(buf: &mut Reader) -> Option<Frame> {
        let tag = buf.get_u8()?;
        match tag {
            0 => Some(Frame::Ping),
            1 => Some(Frame::Pong),
            _ => None,
        }
    }
}
