//! Bounded exhaustive model checking: every interleaving of failures,
//! repairs and writes on a tiny device, for every scheme.
//!
//! Where the property tests sample random schedules, this explorer takes a
//! 1-block device on 2–3 sites and enumerates the *complete* tree of action
//! sequences up to a depth bound, checking after every action that
//!
//! * all structural protocol invariants hold (`core::audit`),
//! * every successful read from every serving site returns the last
//!   successfully written value (one-copy equivalence), and
//! * the scheme-specific availability predicate matches ground truth
//!   (a quorum of operational sites for voting; under the available copy
//!   family, exactly when an available copy exists).
//!
//! For 3 sites at depth 5 this covers tens of thousands of distinct
//! histories — including every possible total-failure/recovery ordering —
//! with zero randomness.

use blockrep::core::{audit, Cluster, ClusterOptions};
use blockrep::types::{BlockData, BlockIndex, DeviceConfig, Scheme, SiteId, SiteState};

const BLOCK: BlockIndex = BlockIndex::new(0);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Fail(u32),
    Repair(u32),
    Write(u32),
}

/// The checker's model of the world: the last committed fill value.
#[derive(Debug, Clone, Copy)]
struct Model {
    committed: Option<u8>,
    next_fill: u8,
}

struct Explorer {
    n: u32,
    scheme: Scheme,
    histories: u64,
    max_depth: usize,
}

impl Explorer {
    fn possible_actions(&self, cluster: &Cluster) -> Vec<Action> {
        let mut actions = Vec::new();
        for i in 0..self.n {
            match cluster.site_state(SiteId::new(i)) {
                SiteState::Failed => actions.push(Action::Repair(i)),
                SiteState::Available => {
                    actions.push(Action::Fail(i));
                    actions.push(Action::Write(i));
                }
                SiteState::Comatose => actions.push(Action::Fail(i)),
            }
        }
        actions
    }

    fn check_everything(&self, cluster: &Cluster, model: &Model, trail: &[Action]) {
        // 1. Structural invariants.
        let violations = audit::check_invariants(cluster);
        assert!(
            violations.is_empty(),
            "{:?} after {trail:?}: {violations:?}",
            self.scheme
        );
        // 2. One-copy equivalence from every site.
        for i in 0..self.n {
            match cluster.read(SiteId::new(i), BLOCK) {
                Ok(data) => {
                    let got = data.as_slice()[0];
                    let want = model.committed.unwrap_or(0);
                    assert_eq!(
                        got, want,
                        "{:?} after {trail:?}: read via s{i} saw {got}, committed {want}",
                        self.scheme
                    );
                }
                Err(e) => assert!(
                    e.is_unavailable(),
                    "{:?} after {trail:?}: non-availability read error {e}",
                    self.scheme
                ),
            }
        }
        // 3. Availability predicate vs ground truth.
        let up: Vec<bool> = (0..self.n)
            .map(|i| cluster.site_state(SiteId::new(i)) == SiteState::Available)
            .collect();
        let operational = (0..self.n)
            .filter(|&i| cluster.site_state(SiteId::new(i)).is_operational())
            .count();
        match self.scheme {
            Scheme::Voting => {
                // Equal-ish weights: 3 sites all weight 2 (odd), 2 sites 3+2.
                // Ground truth: recompute from the weights directly.
                let cfg = cluster.config();
                let weight: u64 = (0..self.n)
                    .filter(|&i| cluster.site_state(SiteId::new(i)).is_operational())
                    .map(|i| cfg.weight(SiteId::new(i)).value() as u64)
                    .sum();
                let expect = weight >= cfg.read_quorum() && weight >= cfg.write_quorum();
                assert_eq!(cluster.is_available(), expect, "after {trail:?}");
                let _ = operational;
            }
            Scheme::AvailableCopy | Scheme::NaiveAvailableCopy => {
                let expect = up.iter().any(|&b| b);
                assert_eq!(
                    cluster.is_available(),
                    expect,
                    "{:?} after {trail:?}",
                    self.scheme
                );
            }
        }
    }

    fn explore(&mut self, cluster: &Cluster, model: Model, trail: &mut Vec<Action>) {
        self.histories += 1;
        if trail.len() >= self.max_depth {
            return;
        }
        for action in self.possible_actions(cluster) {
            let fork = cluster.fork();
            let mut next_model = model;
            match action {
                Action::Fail(i) => fork.fail_site(SiteId::new(i)),
                Action::Repair(i) => fork.repair_site(SiteId::new(i)),
                Action::Write(i) => {
                    let fill = next_model.next_fill;
                    next_model.next_fill = next_model.next_fill.wrapping_add(1);
                    let data = BlockData::from(vec![fill; 8]);
                    match fork.write(SiteId::new(i), BLOCK, data) {
                        Ok(()) => next_model.committed = Some(fill),
                        Err(e) => assert!(e.is_unavailable(), "write failed oddly: {e}"),
                    }
                }
            }
            trail.push(action);
            self.check_everything(&fork, &next_model, trail);
            self.explore(&fork, next_model, trail);
            trail.pop();
        }
    }
}

fn run(scheme: Scheme, n: u32, max_depth: usize) -> u64 {
    let cfg = DeviceConfig::builder(scheme)
        .sites(n as usize)
        .num_blocks(1)
        .block_size(8)
        .build()
        .unwrap();
    let cluster = Cluster::new(cfg, ClusterOptions::default());
    let mut explorer = Explorer {
        n,
        scheme,
        histories: 0,
        max_depth,
    };
    let model = Model {
        committed: None,
        next_fill: 1,
    };
    explorer.check_everything(&cluster, &model, &[]);
    explorer.explore(&cluster, model, &mut Vec::new());
    explorer.histories
}

#[test]
fn exhaustive_two_sites_depth_six() {
    for scheme in Scheme::ALL {
        let histories = run(scheme, 2, 7);
        assert!(histories > 1_000, "{scheme}: only {histories} histories");
    }
}

#[test]
fn exhaustive_three_sites_voting_depth_six() {
    let histories = run(Scheme::Voting, 3, 6);
    assert!(histories > 20_000, "only {histories} histories");
}

#[test]
fn exhaustive_three_sites_available_copy_depth_six() {
    let histories = run(Scheme::AvailableCopy, 3, 6);
    assert!(histories > 20_000, "only {histories} histories");
}

#[test]
fn exhaustive_three_sites_naive_depth_six() {
    let histories = run(Scheme::NaiveAvailableCopy, 3, 6);
    assert!(histories > 20_000, "only {histories} histories");
}
