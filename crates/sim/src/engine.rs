//! The event queue.

use crate::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic future-event list: events pop in time order, with FIFO
/// tie-breaking by insertion sequence so equal-time events are reproducible.
///
/// The scheduler is intentionally passive — the caller owns the loop — so
/// simulation state (a protocol cluster, statistics, RNG) lives outside and
/// borrows never tangle.
///
/// # Examples
///
/// ```
/// use blockrep_sim::{Scheduler, SimTime};
///
/// let mut sched = Scheduler::new();
/// sched.schedule_at(SimTime::new(2.0), "late");
/// sched.schedule_at(SimTime::new(1.0), "early");
/// assert_eq!(sched.pop(), Some((SimTime::new(1.0), "early")));
/// assert_eq!(sched.now(), SimTime::new(1.0));
/// assert_eq!(sched.pop(), Some((SimTime::new(2.0), "late")));
/// assert_eq!(sched.pop(), None);
/// ```
#[derive(Debug)]
pub struct Scheduler<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    now: SimTime,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
        }
    }

    /// The current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past (before [`now`](Self::now)).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            time: at,
            seq,
            event,
        }));
    }

    /// Schedules `event` after a relative `delay` from the current time.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Removes and returns the next event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.time;
        // Observability traces carry the *virtual* clock, so a trace of a
        // simulated run reads in simulated time, not wall-clock time.
        blockrep_obs::event!(
            "sim.tick",
            t = entry.time.as_f64(),
            pending = self.heap.len()
        );
        Some((entry.time, entry.event))
    }

    /// Peeks at the timestamp of the next event without advancing the clock.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::new(3.0), 3);
        s.schedule_at(SimTime::new(1.0), 1);
        s.schedule_at(SimTime::new(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut s = Scheduler::new();
        for i in 0..100 {
            s.schedule_at(SimTime::new(1.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut s = Scheduler::new();
        s.schedule_after(SimTime::new(5.0), ());
        assert_eq!(s.now(), SimTime::ZERO);
        assert_eq!(s.peek_time(), Some(SimTime::new(5.0)));
        s.pop();
        assert_eq!(s.now(), SimTime::new(5.0));
        // Relative scheduling is from the new now.
        s.schedule_after(SimTime::new(1.0), ());
        assert_eq!(s.peek_time(), Some(SimTime::new(6.0)));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::new(2.0), ());
        s.pop();
        s.schedule_at(SimTime::new(1.0), ());
    }

    #[test]
    fn len_and_is_empty() {
        let mut s: Scheduler<()> = Scheduler::default();
        assert!(s.is_empty());
        s.schedule_after(SimTime::new(1.0), ());
        assert_eq!(s.len(), 1);
    }
}
