//! The structured-event trace of one majority-consensus-voting write.
//!
//! Installs the process-global observer, so this lives alone in its own
//! integration-test binary (cargo gives each test file its own process)
//! and runs as a single test function (no intra-process races on the
//! observer slot).

use blockrep::core::{Cluster, ClusterOptions};
use blockrep::obs::{self, RecordKind, RecordingObserver};
use blockrep::types::{BlockData, BlockIndex, DeviceConfig, Scheme, SiteId};
use std::sync::Arc;

#[test]
fn mcv_write_emits_quorum_then_commit_span() {
    let cfg = DeviceConfig::builder(Scheme::Voting)
        .sites(3)
        .num_blocks(4)
        .block_size(8)
        .build()
        .unwrap();
    let cluster = Cluster::new(cfg, ClusterOptions::default());

    // Observability starts disabled: protocol activity emits nothing.
    assert!(!obs::enabled());
    cluster
        .write(
            SiteId::new(0),
            BlockIndex::new(0),
            BlockData::from(vec![1; 8]),
        )
        .unwrap();
    cluster.read(SiteId::new(1), BlockIndex::new(0)).unwrap();

    let recorder = Arc::new(RecordingObserver::new());
    obs::set_observer(recorder.clone());
    cluster
        .write(
            SiteId::new(0),
            BlockIndex::new(1),
            BlockData::from(vec![9; 8]),
        )
        .unwrap();
    obs::clear_observer();

    let records = recorder.take();
    let names: Vec<&str> = records.iter().map(|r| r.name).collect();
    assert_eq!(
        names,
        [
            "mcv.write",      // span opens
            "quorum.request", // vote broadcast to the other two sites
            "quorum.ack",     // both answer
            "quorum.ack",
            "write.commit", // update installed at max(version) + 1
            "mcv.write",    // span closes
        ],
        "unexpected trace: {records:#?}"
    );

    assert_eq!(records[0].kind, RecordKind::SpanStart);
    assert_eq!(records[0].field("block"), Some(obs::Value::U64(1)));
    assert_eq!(records[1].field("fanout"), Some(obs::Value::U64(2)));
    let ack_sites: Vec<_> = records[2..4].iter().map(|r| r.field("site")).collect();
    assert_eq!(
        ack_sites,
        [Some(obs::Value::U64(1)), Some(obs::Value::U64(2))]
    );
    assert_eq!(records[4].field("replicas"), Some(obs::Value::U64(3)));
    assert_eq!(records[4].field("version"), Some(obs::Value::U64(1)));
    assert_eq!(records[5].kind, RecordKind::SpanEnd);
    assert!(records[5].nanos.is_some(), "span end carries a duration");
}
