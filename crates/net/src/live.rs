//! Live message transport over crossbeam channels.

use crate::{DeliveryMode, MsgKind, OpClass, Topology, TrafficCounter};
use blockrep_types::SiteId;
use core::fmt;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;

/// Failure to deliver a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError {
    /// The topology currently separates the two sites, or the destination
    /// site is down.
    Unreachable {
        /// Sending site.
        from: SiteId,
        /// Intended destination.
        to: SiteId,
    },
    /// The destination never registered a mailbox.
    NoMailbox(SiteId),
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::Unreachable { from, to } => write!(f, "{from} cannot reach {to}"),
            SendError::NoMailbox(site) => write!(f, "site {site} has no mailbox"),
        }
    }
}

impl std::error::Error for SendError {}

/// A router delivering messages between the threaded server processes of a
/// live cluster.
///
/// The network provides what the paper assumes of its communication
/// substrate: reliable delivery between connected, running sites. It also
/// does the §5 bookkeeping: every delivery is recorded in the shared
/// [`TrafficCounter`] under the configured [`DeliveryMode`]'s fan-out rule.
///
/// Halted (fail-stop) sites are modeled by [`Network::set_site_up`]: a down
/// site is unreachable, and messages to it report [`SendError::Unreachable`]
/// synchronously rather than by timeout, keeping tests deterministic.
///
/// # Examples
///
/// ```
/// use blockrep_net::{DeliveryMode, MsgKind, Network, OpClass};
/// use blockrep_types::SiteId;
///
/// let net: Network<&'static str> = Network::new(2, DeliveryMode::Multicast);
/// let inbox1 = net.register(SiteId::new(1));
/// net.send(SiteId::new(0), SiteId::new(1), OpClass::Write, MsgKind::WriteUpdate, "hello")
///     .unwrap();
/// assert_eq!(inbox1.recv().unwrap(), "hello");
/// assert_eq!(net.counter().total(), 1);
/// ```
pub struct Network<M> {
    mailboxes: RwLock<Vec<Option<Sender<M>>>>,
    up: RwLock<Vec<bool>>,
    topology: RwLock<Topology>,
    counter: TrafficCounter,
    mode: DeliveryMode,
}

impl<M> Network<M> {
    /// Creates a fully connected network of `n` sites, all up, with no
    /// mailboxes registered yet.
    pub fn new(n: usize, mode: DeliveryMode) -> Self {
        Network {
            mailboxes: RwLock::new((0..n).map(|_| None).collect()),
            up: RwLock::new(vec![true; n]),
            topology: RwLock::new(Topology::fully_connected(n)),
            counter: TrafficCounter::new(),
            mode,
        }
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.up.read().len()
    }

    /// The configured delivery mode.
    pub fn mode(&self) -> DeliveryMode {
        self.mode
    }

    /// The shared transmission counter.
    pub fn counter(&self) -> &TrafficCounter {
        &self.counter
    }

    /// Creates (or replaces) the mailbox of `site` and returns its receiving
    /// end, to be owned by the site's server thread.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn register(&self, site: SiteId) -> Receiver<M> {
        let (tx, rx) = unbounded();
        self.mailboxes.write()[site.index()] = Some(tx);
        rx
    }

    /// Marks a site up or down. Messages to a down site fail synchronously.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn set_site_up(&self, site: SiteId, is_up: bool) {
        self.up.write()[site.index()] = is_up;
    }

    /// Whether a site is currently up.
    pub fn is_site_up(&self, site: SiteId) -> bool {
        self.up.read()[site.index()]
    }

    /// Replaces the topology (e.g. to inject a partition).
    pub fn set_topology(&self, topology: Topology) {
        assert_eq!(topology.num_sites(), self.num_sites());
        *self.topology.write() = topology;
    }

    /// Runs `f` with the current topology.
    pub fn with_topology<T>(&self, f: impl FnOnce(&Topology) -> T) -> T {
        f(&self.topology.read())
    }

    /// Whether `from` can currently deliver to `to`: both up and in the same
    /// partition.
    pub fn can_deliver(&self, from: SiteId, to: SiteId) -> bool {
        // One read guard for both sites: a second `self.up.read()` in the
        // same expression would overlap the first, and the vendored RwLock
        // can deadlock a reader that re-enters while a writer is queued.
        let up = self.up.read();
        up[from.index()] && up[to.index()] && self.topology.read().reachable(from, to)
    }

    /// Delivers one message, charging one transmission to `(op, kind)`.
    ///
    /// # Errors
    ///
    /// [`SendError::Unreachable`] if either site is down or partitioned
    /// away; [`SendError::NoMailbox`] if the destination never registered.
    pub fn send(
        &self,
        from: SiteId,
        to: SiteId,
        op: OpClass,
        kind: MsgKind,
        msg: M,
    ) -> Result<(), SendError> {
        if !self.can_deliver(from, to) {
            return Err(SendError::Unreachable { from, to });
        }
        let mailboxes = self.mailboxes.read();
        let tx = mailboxes[to.index()]
            .as_ref()
            .ok_or(SendError::NoMailbox(to))?;
        tx.send(msg).map_err(|_| SendError::NoMailbox(to))?;
        self.counter.add(op, kind, 1);
        Ok(())
    }

    /// Delivers one message without charging the traffic counter, for
    /// transports whose protocol layer does its own §5 accounting (the
    /// fan-out cost of a multicast is only known there). Reachability rules
    /// are the same as [`send`](Self::send), except that a site can always
    /// message itself (local actions), even while marked down.
    ///
    /// # Errors
    ///
    /// As for [`send`](Self::send).
    pub fn send_raw(&self, from: SiteId, to: SiteId, msg: M) -> Result<(), SendError> {
        if from != to && !self.can_deliver(from, to) {
            return Err(SendError::Unreachable { from, to });
        }
        let mailboxes = self.mailboxes.read();
        let tx = mailboxes[to.index()]
            .as_ref()
            .ok_or(SendError::NoMailbox(to))?;
        tx.send(msg).map_err(|_| SendError::NoMailbox(to))
    }
}

impl<M: Clone> Network<M> {
    /// Delivers `msg` to every reachable, up target, charging the §5 fan-out
    /// cost for the delivery mode (one transmission for a nonempty multicast,
    /// one per destination with unique addressing). Returns the sites
    /// actually reached.
    pub fn multicast(
        &self,
        from: SiteId,
        targets: &[SiteId],
        op: OpClass,
        kind: MsgKind,
        msg: M,
    ) -> Vec<SiteId> {
        let mut reached = Vec::new();
        {
            let mailboxes = self.mailboxes.read();
            for &to in targets {
                if to == from || !self.can_deliver(from, to) {
                    continue;
                }
                if let Some(tx) = mailboxes[to.index()].as_ref() {
                    if tx.send(msg.clone()).is_ok() {
                        reached.push(to);
                    }
                }
            }
        }
        self.counter
            .add(op, kind, self.mode.fanout_cost(reached.len() as u64));
        reached
    }
}

impl<M> fmt::Debug for Network<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("num_sites", &self.num_sites())
            .field("mode", &self.mode)
            .field("total_traffic", &self.counter.total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(i: u32) -> SiteId {
        SiteId::new(i)
    }

    #[test]
    fn send_requires_mailbox() {
        let net: Network<u32> = Network::new(2, DeliveryMode::Unicast);
        let err = net
            .send(sid(0), sid(1), OpClass::Read, MsgKind::VoteRequest, 1)
            .unwrap_err();
        assert_eq!(err, SendError::NoMailbox(sid(1)));
    }

    #[test]
    fn down_site_is_unreachable_synchronously() {
        let net: Network<u32> = Network::new(2, DeliveryMode::Unicast);
        let _rx = net.register(sid(1));
        net.set_site_up(sid(1), false);
        let err = net
            .send(sid(0), sid(1), OpClass::Read, MsgKind::VoteRequest, 1)
            .unwrap_err();
        assert!(matches!(err, SendError::Unreachable { .. }));
        // Nothing was charged for the failed send.
        assert_eq!(net.counter().total(), 0);
    }

    #[test]
    fn partition_blocks_delivery() {
        let net: Network<u32> = Network::new(3, DeliveryMode::Unicast);
        let rx2 = net.register(sid(2));
        let mut topo = Topology::fully_connected(3);
        topo.partition(&[vec![sid(0), sid(1)], vec![sid(2)]]);
        net.set_topology(topo);
        assert!(net
            .send(sid(0), sid(2), OpClass::Write, MsgKind::WriteUpdate, 7)
            .is_err());
        assert!(rx2.try_recv().is_err());
    }

    #[test]
    fn multicast_counts_one_in_multicast_mode() {
        let net: Network<u32> = Network::new(4, DeliveryMode::Multicast);
        let rxs: Vec<_> = (1..4).map(|i| net.register(sid(i))).collect();
        let reached = net.multicast(
            sid(0),
            &[sid(1), sid(2), sid(3)],
            OpClass::Write,
            MsgKind::WriteUpdate,
            9,
        );
        assert_eq!(reached.len(), 3);
        assert_eq!(net.counter().total(), 1);
        for rx in rxs {
            assert_eq!(rx.recv().unwrap(), 9);
        }
    }

    #[test]
    fn multicast_counts_per_target_in_unicast_mode() {
        let net: Network<u32> = Network::new(4, DeliveryMode::Unicast);
        let _rxs: Vec<_> = (1..4).map(|i| net.register(sid(i))).collect();
        net.multicast(
            sid(0),
            &[sid(1), sid(2), sid(3)],
            OpClass::Write,
            MsgKind::WriteUpdate,
            9,
        );
        assert_eq!(net.counter().total(), 3);
    }

    #[test]
    fn multicast_skips_self_and_down_sites() {
        let net: Network<u32> = Network::new(3, DeliveryMode::Multicast);
        let _rx1 = net.register(sid(1));
        let _rx2 = net.register(sid(2));
        net.set_site_up(sid(2), false);
        let reached = net.multicast(
            sid(0),
            &[sid(0), sid(1), sid(2)],
            OpClass::Write,
            MsgKind::WriteUpdate,
            0,
        );
        assert_eq!(reached, vec![sid(1)]);
    }

    #[test]
    fn empty_multicast_costs_nothing() {
        let net: Network<u32> = Network::new(1, DeliveryMode::Multicast);
        let reached = net.multicast(sid(0), &[], OpClass::Write, MsgKind::WriteUpdate, 0);
        assert!(reached.is_empty());
        assert_eq!(net.counter().total(), 0);
    }
}
