//! Per-site replica state.

use blockrep_storage::wal::{self, WalRecord};
use blockrep_storage::{StorageFault, VersionedStore};
use blockrep_types::{
    BlockData, BlockIndex, DeviceConfig, SiteId, SiteState, VersionNumber, VersionVector,
};
use std::collections::BTreeSet;

/// Replica journals are cleared on every restart scrub, so stale bytes of a
/// previous generation never survive to be re-scanned — one fixed epoch is
/// enough.
const JOURNAL_EPOCH: u64 = 1;

/// Byte capacity of the modeled journal, mirroring the real `Wal`'s bounded
/// data region: an append that would exceed it models a forced checkpoint
/// (clear, then append), so a long-lived journaled site never grows the
/// buffer without bound. The checkpoint is just truncation here because the
/// store already models synced stable storage — every record it drops
/// belongs to a clean install the store holds durably. (A faulty install's
/// record is never dropped before its replay: the fault *is* the crash, so
/// no further install — and hence no checkpoint — runs before the restart
/// scrub.)
const JOURNAL_CAPACITY: usize = 64 * 1024;

/// Everything one site's server process keeps for the reliable device: its
/// versioned block store (on disk — it survives fail-stop crashes), its
/// site state, and — for available copy — its was-available set `W_s`
/// (Definition 3.1), which is also kept on stable storage so it is still
/// there when the site restarts after a failure.
///
/// # Examples
///
/// ```
/// use blockrep_core::Replica;
/// use blockrep_types::{DeviceConfig, Scheme, SiteId, SiteState};
///
/// # fn main() -> Result<(), blockrep_types::DeviceError> {
/// let cfg = DeviceConfig::builder(Scheme::AvailableCopy).sites(3).build()?;
/// let r = Replica::new(SiteId::new(1), &cfg);
/// assert_eq!(r.state(), SiteState::Available);
/// assert_eq!(r.was_available().len(), 3); // initially W_s = S
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Replica {
    id: SiteId,
    state: SiteState,
    store: VersionedStore,
    was_available: BTreeSet<SiteId>,
    /// The site's write-ahead journal (`Some` when the device is
    /// configured `journaled`): the encoded record byte stream of
    /// `blockrep_storage::wal`, appended *before* every install touches
    /// the store and replayed by [`scrub`](Self::scrub) on restart. Like
    /// the store it models stable storage, so it survives fail-stop. It is
    /// bounded by [`JOURNAL_CAPACITY`] via modeled forced checkpoints.
    journal: Option<Vec<u8>>,
}

impl Replica {
    /// Creates the replica of a freshly formatted device: available, all
    /// blocks zeroed at version zero, and `W_s = S` (every site saw the
    /// "initial write").
    pub fn new(id: SiteId, cfg: &DeviceConfig) -> Self {
        Replica {
            id,
            state: SiteState::Available,
            store: VersionedStore::new(cfg.num_blocks(), cfg.block_size()),
            was_available: cfg.site_ids().collect(),
            journal: cfg.journaled().then(Vec::new),
        }
    }

    /// This replica's site identifier.
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// Current site state.
    pub fn state(&self) -> SiteState {
        self.state
    }

    /// Transitions the site state. Fail-stop: failing loses the process,
    /// not the disk — store, versions and `W_s` persist.
    pub fn set_state(&mut self, state: SiteState) {
        self.state = state;
    }

    /// The version number this site holds for block `k` — its vote.
    pub fn version(&self, k: BlockIndex) -> VersionNumber {
        self.store.version(k)
    }

    /// The data of block `k` as stored locally (no consistency guarantee;
    /// protocols decide when this is safe to serve).
    pub fn data(&self, k: BlockIndex) -> BlockData {
        self.store.data(k)
    }

    /// Version and data together, as shipped to a stale reader.
    pub fn versioned(&self, k: BlockIndex) -> (VersionNumber, BlockData) {
        self.store.versioned(k)
    }

    /// Appends the write-ahead record for an install about to happen —
    /// the WAL discipline: the journal sees the write before the store
    /// does. `torn` truncates the record to its first `keep` bytes, the
    /// image of a crash mid-append.
    fn journal_install(
        &mut self,
        k: BlockIndex,
        data: &BlockData,
        v: VersionNumber,
        torn: Option<usize>,
    ) {
        // Mirror the store's monotone guard: a stale install never starts
        // any disk activity, so it must not reach the journal either.
        if self.journal.is_none() || v <= self.store.version(k) {
            return;
        }
        let encoded = wal::encode_record(
            JOURNAL_EPOCH,
            &WalRecord {
                block: k,
                version: v,
                payload: data.clone(),
            },
        );
        let keep = torn.unwrap_or(encoded.len()).min(encoded.len());
        if let Some(journal) = &mut self.journal {
            if journal.len() + keep > JOURNAL_CAPACITY {
                journal.clear();
            }
            journal.extend_from_slice(&encoded[..keep]);
        }
    }

    /// Installs a block at a version if newer than the local copy; returns
    /// whether anything changed. On a journaled device the write-ahead
    /// record is appended first.
    pub fn install(&mut self, k: BlockIndex, data: BlockData, v: VersionNumber) -> bool {
        self.journal_install(k, &data, v, None);
        self.store.install(k, data, v)
    }

    /// Installs a block but leaves it in the broken on-disk state `fault`
    /// describes — the disk image of a crash mid-write. Used only by the
    /// fault-injection layer.
    ///
    /// On a journaled device the record is appended before the faulty
    /// store write, so a later [`scrub`](Self::scrub) replays it — except
    /// for [`StorageFault::WalTorn`], where the crash hit the journal
    /// append itself and only a torn prefix of the record lands.
    pub fn install_faulty(
        &mut self,
        k: BlockIndex,
        data: BlockData,
        v: VersionNumber,
        fault: StorageFault,
    ) -> bool {
        let torn = match fault {
            StorageFault::WalTorn { keep } => Some(keep),
            StorageFault::Torn { .. } | StorageFault::StaleVersion => None,
        };
        self.journal_install(k, &data, v, torn);
        self.store.install_faulty(k, data, v, fault)
    }

    /// Restart-time integrity pass: resets every checksum-broken block to
    /// the freshly formatted state, then — on a journaled device — replays
    /// the journal's longest valid record prefix through the monotone
    /// install guard, restoring every write whose record was fully
    /// appended before the crash. The journal is cleared afterwards so the
    /// repair exchange that follows stays authoritative (a rolled-back
    /// orphan must not resurrect on the next restart). Returns the blocks
    /// the integrity pass reset, replayed or not — the caller's log line
    /// reports checksum damage, not recovery outcome.
    pub fn scrub(&mut self) -> Vec<BlockIndex> {
        let reset = self.store.scrub();
        if let Some(journal) = &mut self.journal {
            let (records, _) = wal::scan(JOURNAL_EPOCH, journal);
            journal.clear();
            for rec in records {
                self.store.install(rec.block, rec.payload, rec.version);
            }
        }
        reset
    }

    /// Bytes currently in the write-ahead journal (`None` when the device
    /// is not journaled).
    pub fn journal_len(&self) -> Option<usize> {
        self.journal.as_ref().map(Vec::len)
    }

    /// A copy of the full version vector.
    pub fn version_vector(&self) -> VersionVector {
        self.store.version_vector()
    }

    /// Blocks whose version here differs from `remote` — the repair payload
    /// for a recovering site (Figure 5's `(v', {blocks})` response). The
    /// source is authoritative in both directions so that a write the
    /// recovering site installed orphaned just before crashing is rolled
    /// back rather than surviving as a colliding version.
    pub fn repair_payload(
        &self,
        remote: &VersionVector,
    ) -> (VersionVector, Vec<(BlockIndex, VersionNumber, BlockData)>) {
        (self.version_vector(), self.store.diff_against(remote))
    }

    /// Applies a repair payload; returns the number of blocks replaced.
    pub fn apply_repair(&mut self, blocks: Vec<(BlockIndex, VersionNumber, BlockData)>) -> usize {
        self.store.apply_repair(blocks)
    }

    /// Replaces the replica's entire disk (used when importing a
    /// persistent image).
    pub(crate) fn replace_store(&mut self, store: VersionedStore) {
        self.store = store;
    }

    /// The was-available set `W_s`.
    pub fn was_available(&self) -> &BTreeSet<SiteId> {
        &self.was_available
    }

    /// Replaces `W_s` (on a write or a detected failure).
    pub fn set_was_available(&mut self, w: BTreeSet<SiteId>) {
        self.was_available = w;
    }

    /// Adds a site to `W_s` (a site "repaired from" this one).
    pub fn add_was_available(&mut self, s: SiteId) {
        self.was_available.insert(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockrep_types::Scheme;

    fn cfg() -> DeviceConfig {
        DeviceConfig::builder(Scheme::AvailableCopy)
            .sites(3)
            .num_blocks(4)
            .block_size(8)
            .build()
            .unwrap()
    }

    #[test]
    fn fresh_replica_is_available_with_full_w() {
        let r = Replica::new(SiteId::new(0), &cfg());
        assert_eq!(r.state(), SiteState::Available);
        assert_eq!(r.was_available().len(), 3);
        assert_eq!(r.version(BlockIndex::new(0)), VersionNumber::ZERO);
    }

    #[test]
    fn state_transitions_preserve_disk() {
        let mut r = Replica::new(SiteId::new(0), &cfg());
        r.install(
            BlockIndex::new(1),
            BlockData::from(vec![5; 8]),
            VersionNumber::new(2),
        );
        r.set_state(SiteState::Failed);
        assert_eq!(r.version(BlockIndex::new(1)), VersionNumber::new(2));
        assert_eq!(r.data(BlockIndex::new(1)).as_slice(), &[5; 8]);
        r.set_state(SiteState::Comatose);
        assert_eq!(r.was_available().len(), 3);
    }

    #[test]
    fn repair_payload_roundtrip() {
        let mut current = Replica::new(SiteId::new(0), &cfg());
        let mut stale = Replica::new(SiteId::new(1), &cfg());
        current.install(
            BlockIndex::new(2),
            BlockData::from(vec![9; 8]),
            VersionNumber::new(4),
        );
        let (vv, blocks) = current.repair_payload(&stale.version_vector());
        assert_eq!(blocks.len(), 1);
        assert_eq!(stale.apply_repair(blocks), 1);
        assert_eq!(stale.version_vector(), vv);
    }

    fn journaled_cfg() -> DeviceConfig {
        DeviceConfig::builder(Scheme::AvailableCopy)
            .sites(3)
            .num_blocks(4)
            .block_size(8)
            .journaled(true)
            .build()
            .unwrap()
    }

    #[test]
    fn journaled_scrub_replays_torn_install() {
        let mut r = Replica::new(SiteId::new(0), &journaled_cfg());
        let k = BlockIndex::new(1);
        r.install(k, BlockData::from(vec![1; 8]), VersionNumber::new(1));
        // Crash mid block write: metadata new, data half old.
        r.install_faulty(
            k,
            BlockData::from(vec![2; 8]),
            VersionNumber::new(2),
            StorageFault::Torn { keep: 4 },
        );
        let reset = r.scrub();
        assert_eq!(
            reset,
            vec![k],
            "the integrity pass still reports the damage"
        );
        // ...but the journal held the full record, so the write survives.
        assert_eq!(r.version(k), VersionNumber::new(2));
        assert_eq!(r.data(k).as_slice(), &[2; 8]);
        assert_eq!(r.journal_len(), Some(0), "journal cleared after replay");
    }

    #[test]
    fn journaled_scrub_replays_stale_version_install() {
        let mut r = Replica::new(SiteId::new(0), &journaled_cfg());
        let k = BlockIndex::new(0);
        r.install(k, BlockData::from(vec![1; 8]), VersionNumber::new(1));
        r.install_faulty(
            k,
            BlockData::from(vec![9; 8]),
            VersionNumber::new(2),
            StorageFault::StaleVersion,
        );
        r.scrub();
        assert_eq!(r.version(k), VersionNumber::new(2));
        assert_eq!(r.data(k).as_slice(), &[9; 8]);
    }

    #[test]
    fn journaled_wal_torn_discards_only_the_torn_record() {
        let mut r = Replica::new(SiteId::new(0), &journaled_cfg());
        let (a, b) = (BlockIndex::new(0), BlockIndex::new(1));
        r.install(a, BlockData::from(vec![1; 8]), VersionNumber::new(1));
        // Crash mid journal append: the record lands torn, the block is
        // never written.
        r.install_faulty(
            b,
            BlockData::from(vec![7; 8]),
            VersionNumber::new(3),
            StorageFault::WalTorn { keep: 5 },
        );
        assert_eq!(
            r.version(b),
            VersionNumber::ZERO,
            "block write never started"
        );
        assert!(r.scrub().is_empty(), "no checksum damage anywhere");
        // The earlier record replays; the torn one is discarded.
        assert_eq!(r.version(a), VersionNumber::new(1));
        assert_eq!(r.version(b), VersionNumber::ZERO);
        assert_eq!(r.data(a).as_slice(), &[1; 8]);
    }

    #[test]
    fn unjournaled_replica_keeps_seed_behavior() {
        let mut r = Replica::new(SiteId::new(0), &cfg());
        assert_eq!(r.journal_len(), None);
        let k = BlockIndex::new(1);
        r.install_faulty(
            k,
            BlockData::from(vec![2; 8]),
            VersionNumber::new(2),
            StorageFault::Torn { keep: 4 },
        );
        assert_eq!(r.scrub(), vec![k]);
        // Without a journal the write is gone: zeroed at version zero.
        assert_eq!(r.version(k), VersionNumber::ZERO);
        assert!(r.data(k).is_zeroed());
    }

    #[test]
    fn stale_install_never_reaches_the_journal() {
        let mut r = Replica::new(SiteId::new(0), &journaled_cfg());
        let k = BlockIndex::new(2);
        r.install(k, BlockData::from(vec![5; 8]), VersionNumber::new(4));
        let len = r.journal_len().unwrap();
        assert!(len > 0);
        // Replaying an old write is a no-op on disk and in the journal.
        r.install(k, BlockData::from(vec![9; 8]), VersionNumber::new(3));
        assert_eq!(r.journal_len(), Some(len));
    }

    #[test]
    fn model_journal_is_bounded_by_forced_checkpoints() {
        let mut r = Replica::new(SiteId::new(0), &journaled_cfg());
        let k = BlockIndex::new(0);
        // Far more install traffic than JOURNAL_CAPACITY holds (each record
        // is 28 + 8 bytes): the modeled checkpoints must keep the buffer
        // bounded without losing any cleanly installed write.
        let last = 4_000u64;
        for v in 1..=last {
            r.install(k, BlockData::from(vec![v as u8; 8]), VersionNumber::new(v));
            assert!(r.journal_len().unwrap() <= JOURNAL_CAPACITY);
        }
        assert_eq!(r.version(k), VersionNumber::new(last));
        // A restart scrub over the truncated journal stays a no-op for the
        // store: the checkpointed records were already durable there.
        assert!(r.scrub().is_empty());
        assert_eq!(r.version(k), VersionNumber::new(last));
        assert_eq!(r.data(k).as_slice(), &[last as u8; 8]);
    }

    #[test]
    fn was_available_updates() {
        let mut r = Replica::new(SiteId::new(0), &cfg());
        r.set_was_available([SiteId::new(0), SiteId::new(2)].into_iter().collect());
        assert_eq!(r.was_available().len(), 2);
        r.add_was_available(SiteId::new(1));
        assert!(r.was_available().contains(&SiteId::new(1)));
    }
}
