//! Observability for the reliable device: structured events/spans and a
//! lock-free metrics registry. **Dependency-free** — std only.
//!
//! The paper's whole evaluation (§4 availability, §5 traffic) is about
//! *observing* what the consistency schemes do under failures. This crate
//! gives every runtime — the deterministic cluster, the threaded cluster,
//! the TCP cluster and the discrete-event simulator — one shared way to
//! report what it is doing:
//!
//! * **Events and spans** ([`event!`], [`span!`]) are dispatched to an
//!   [`Observer`]. By default no observer is installed and a disabled flag
//!   short-circuits every call site to a single relaxed atomic load, so
//!   instrumented hot paths cost nothing measurable. Installing a
//!   [`RecordingObserver`] captures the sequence for tests; a
//!   [`StderrObserver`] streams it as human-readable lines.
//! * **Causal traces** ([`trace`]) give each device operation a
//!   [`trace::TraceContext`] that phase spans — local leg, scatter sends,
//!   gather waits, remote applies — attach to, across threads and (via the
//!   wire trace envelope) across sites. Spans land in a bounded lock-free
//!   flight-recorder ring and export as Chrome trace-event JSON with a
//!   per-phase attribution table.
//! * **Metrics** ([`metrics::Registry`]) are atomic counters, gauges and
//!   fixed-bucket latency histograms (power-of-two buckets, p50/p95/p99
//!   summaries). Updates are lock-free; registration hands out `Arc`
//!   handles that call sites cache in statics. A [`metrics::Snapshot`]
//!   renders as a text table or JSON.
//!
//! # Examples
//!
//! ```
//! use blockrep_obs as obs;
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(obs::RecordingObserver::new());
//! obs::set_observer(recorder.clone());
//!
//! {
//!     let _span = obs::span!("demo.op", site = 0u32);
//!     obs::event!("demo.step", block = 7u64, fresh = true);
//! }
//!
//! obs::clear_observer();
//! let names: Vec<_> = recorder.take().into_iter().map(|r| r.name).collect();
//! assert_eq!(names, ["demo.op", "demo.step", "demo.op"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
mod observer;
pub mod trace;

pub use observer::{
    clear_observer, disable, dispatch_event, dispatch_span_end, dispatch_span_start, enable,
    enabled, set_observer, Observer, Record, RecordKind, RecordingObserver, SpanGuard,
    StderrObserver, Value,
};
