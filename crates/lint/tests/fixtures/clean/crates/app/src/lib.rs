//! Clean fixture: consistent lock order, single-ordering atomics, and a
//! guard-accumulating loop that carries the ascending-order assertion.
//! Every pass must report nothing here.

pub struct App {
    a: Mutex<u64>,
    b: Mutex<u64>,
    epoch: AtomicU64,
}

impl App {
    fn ordered(&self) {
        let a = self.a.lock();
        let b = self.b.lock();
        *b += *a;
    }

    fn also_ordered(&self) -> u64 {
        let a = self.a.lock();
        let b = self.b.lock();
        *a + *b
    }

    fn tick(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst)
    }

    fn current(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }
}

pub struct Cluster {
    conns: Vec<Mutex<u64>>,
}

impl Cluster {
    fn pipelined(&self, targets: &[usize]) -> u64 {
        let mut in_flight = Vec::new();
        for &t in targets {
            let conn = self.conns[t].lock();
            debug_assert!(in_flight.last().is_none_or(|&(prev, _)| prev < t));
            in_flight.push((t, conn));
        }
        let mut sum = 0;
        for (t, conn) in in_flight {
            sum += *conn + t as u64;
        }
        sum
    }
}
