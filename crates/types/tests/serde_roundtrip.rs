//! Serde coverage for the data-structure types (feature-gated; run with
//! `cargo test -p blockrep-types --features serde`).
//!
//! No serialization-format crate is on the project's approved dependency
//! list, so these tests pin down the *contract*: every public data type
//! derives `Serialize` and `DeserializeOwned` (compile-time assertion), and
//! the newtype wrappers deserialize from their raw representations through
//! serde's built-in value deserializers.

#![cfg(feature = "serde")]

use blockrep_types::{
    BlockData, BlockIndex, DeviceConfig, FailureTracking, Scheme, SiteId, SiteState, VersionNumber,
    VersionVector,
};
use serde::de::value::StrDeserializer;
use serde::de::{Deserialize, IntoDeserializer};

type E = serde::de::value::Error;

#[test]
fn serde_impls_exist_for_all_data_types() {
    // The assertion is that this compiles: every public data type
    // implements Serialize + DeserializeOwned.
    fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
    assert_serde::<SiteId>();
    assert_serde::<BlockIndex>();
    assert_serde::<VersionNumber>();
    assert_serde::<VersionVector>();
    assert_serde::<BlockData>();
    assert_serde::<SiteState>();
    assert_serde::<Scheme>();
    assert_serde::<FailureTracking>();
    assert_serde::<DeviceConfig>();
}

#[test]
fn site_state_deserializes_from_variant_names() {
    for (name, expect) in [
        ("Failed", SiteState::Failed),
        ("Comatose", SiteState::Comatose),
        ("Available", SiteState::Available),
    ] {
        let de: StrDeserializer<E> = name.into_deserializer();
        let state = SiteState::deserialize(de).unwrap();
        assert_eq!(state, expect);
    }
}
