//! The cluster backend abstraction.
//!
//! The three consistency protocols are written once, against [`Backend`],
//! and run unchanged over two very different substrates:
//!
//! * [`Cluster`](crate::Cluster) — a deterministic in-process cluster where
//!   "messages" are direct state access, used by tests, property tests and
//!   the simulation harnesses;
//! * [`LiveCluster`](crate::LiveCluster) — one server thread per site,
//!   exchanging real messages over channels, the shape the paper deploys on
//!   a network.
//!
//! Methods with a `from` site model a remote exchange and return `None`
//! when the target is failed or unreachable (fail-stop sites simply do not
//! answer). Methods without `from` are local actions on a site's own state
//! and never touch the network. **Traffic is charged by the protocol code**,
//! not per call — the §5 cost unit is the high-level transmission, whose
//! fan-out accounting (multicast vs. unique addressing) only the protocol
//! layer knows.

use blockrep_net::{DeliveryMode, MsgKind, OpClass, TrafficCounter};
use blockrep_storage::StorageFault;
use blockrep_types::{
    BlockData, BlockIndex, DeviceConfig, SiteId, SiteState, VersionNumber, VersionVector,
};
use std::collections::BTreeSet;

/// A recovery transfer: `(block, version, data)` triples for every block
/// the recovering site is missing.
pub type RepairBlocks = Vec<(BlockIndex, VersionNumber, BlockData)>;

/// A version vector paired with the repair blocks it implies — Figure 5's
/// `(v', {blocks})` response.
pub type RepairPayload = (VersionVector, RepairBlocks);

/// Access to a cluster of replicas, as seen by a protocol coordinator.
///
/// Implementations must be internally synchronized (`&self` methods), since
/// a device handle and a failure injector may act concurrently.
pub trait Backend: Send + Sync {
    /// The device configuration (scheme, weights, quorums, geometry).
    fn config(&self) -> &DeviceConfig;

    /// The network environment, for fan-out accounting.
    fn delivery_mode(&self) -> DeliveryMode;

    /// The shared high-level transmission counter.
    fn counter(&self) -> &TrafficCounter;

    /// A site's own knowledge of its state (no network involved).
    fn local_state(&self, s: SiteId) -> SiteState;

    /// Sets a site's state (local action: crash, restart, promotion).
    fn set_local_state(&self, s: SiteId, state: SiteState);

    /// Observes `to`'s state from `from`: `None` if `to` is failed or
    /// unreachable, otherwise its state.
    fn probe_state(&self, from: SiteId, to: SiteId) -> Option<SiteState>;

    /// Requests `to`'s vote — its version number for block `k`. With
    /// `from == to` this is the local version lookup.
    fn vote(&self, from: SiteId, to: SiteId, k: BlockIndex) -> Option<VersionNumber>;

    /// Fetches the current copy of block `k` from `to`.
    fn fetch_block(
        &self,
        from: SiteId,
        to: SiteId,
        k: BlockIndex,
    ) -> Option<(VersionNumber, BlockData)>;

    /// Delivers a write update to `to` (or applies locally when
    /// `from == to`); the replica installs it if `v` is newer. Returns
    /// whether the update was delivered.
    fn apply_write(
        &self,
        from: SiteId,
        to: SiteId,
        k: BlockIndex,
        data: &BlockData,
        v: VersionNumber,
    ) -> bool;

    /// Reads block `k` straight off `s`'s local disk.
    fn read_local(&self, s: SiteId, k: BlockIndex) -> BlockData;

    /// Requests `to`'s version vector.
    fn version_vector(&self, from: SiteId, to: SiteId) -> Option<VersionVector>;

    /// Sends `from`'s version vector `vv` to `to`; `to` answers with its own
    /// vector and the blocks `from` is missing (Figure 5's exchange).
    fn repair_payload(&self, from: SiteId, to: SiteId, vv: &VersionVector)
        -> Option<RepairPayload>;

    /// Installs a repair payload on `s`'s local store; returns the number of
    /// blocks replaced.
    fn apply_repair_local(&self, s: SiteId, blocks: RepairBlocks) -> usize;

    /// Requests `to`'s was-available set `W`.
    fn was_available(&self, from: SiteId, to: SiteId) -> Option<BTreeSet<SiteId>>;

    /// Replaces `to`'s was-available set (piggybacked on writes/repairs).
    /// Returns whether `to` received it.
    fn set_was_available(&self, from: SiteId, to: SiteId, w: &BTreeSet<SiteId>) -> bool;

    /// Tells `to` that `member` has repaired from it: `W_to ← W_to ∪ {member}`.
    fn add_was_available(&self, from: SiteId, to: SiteId, member: SiteId) -> bool;

    /// Delivers a write update to `to` like [`apply_write`](Self::apply_write)
    /// but leaves the block in the broken on-disk state `fault` describes —
    /// the disk image of `to` crashing in the middle of the install. Only the
    /// fault-injection layer calls this; protocols never do.
    fn apply_write_faulty(
        &self,
        from: SiteId,
        to: SiteId,
        k: BlockIndex,
        data: &BlockData,
        v: VersionNumber,
        fault: StorageFault,
    ) -> bool;

    /// Runs the restart-time integrity scrub on `s`'s local disk, resetting
    /// checksum-broken blocks to the freshly formatted state. Returns the
    /// number of blocks reset.
    fn scrub_local(&self, s: SiteId) -> usize;
}

/// Every site except `from`, in ascending order — the address list of a
/// broadcast.
pub fn others(cfg: &DeviceConfig, from: SiteId) -> Vec<SiteId> {
    cfg.site_ids().filter(|&s| s != from).collect()
}

/// Sites whose server answers `from` right now (operational and reachable),
/// including `from` itself when operational.
pub fn operational_reachable<B: Backend + ?Sized>(b: &B, from: SiteId) -> Vec<SiteId> {
    b.config()
        .site_ids()
        .filter(|&s| {
            if s == from {
                b.local_state(s).is_operational()
            } else {
                b.probe_state(from, s).is_some_and(|st| st.is_operational())
            }
        })
        .collect()
}

/// Available (serving) sites reachable from `from`, including `from` itself
/// when available.
pub fn available_reachable<B: Backend + ?Sized>(b: &B, from: SiteId) -> Vec<SiteId> {
    b.config()
        .site_ids()
        .filter(|&s| {
            if s == from {
                b.local_state(s).can_serve()
            } else {
                b.probe_state(from, s).is_some_and(|st| st.can_serve())
            }
        })
        .collect()
}

/// Total voting weight of a set of sites.
pub fn weight_of(cfg: &DeviceConfig, sites: &[SiteId]) -> u64 {
    sites.iter().map(|&s| cfg.weight(s).value() as u64).sum()
}

/// Charges the delivery-mode fan-out cost of one logical message addressed
/// to `targets` sites.
pub fn charge_fanout<B: Backend + ?Sized>(b: &B, op: OpClass, kind: MsgKind, targets: usize) {
    b.counter()
        .add(op, kind, b.delivery_mode().fanout_cost(targets as u64));
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockrep_types::Scheme;

    #[test]
    fn others_excludes_origin() {
        let cfg = DeviceConfig::builder(Scheme::Voting)
            .sites(4)
            .build()
            .unwrap();
        let o = others(&cfg, SiteId::new(2));
        assert_eq!(o, vec![SiteId::new(0), SiteId::new(1), SiteId::new(3)]);
    }

    #[test]
    fn weight_sums() {
        let cfg = DeviceConfig::builder(Scheme::Voting)
            .sites(4)
            .build()
            .unwrap();
        // weights are 3,2,2,2
        assert_eq!(weight_of(&cfg, &[SiteId::new(0), SiteId::new(3)]), 5);
        assert_eq!(weight_of(&cfg, &[]), 0);
    }
}
