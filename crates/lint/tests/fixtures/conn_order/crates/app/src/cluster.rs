//! Seeded violations of the conn-lock discipline: both functions
//! accumulate guards from an indexed lock family across loop iterations —
//! `scatter_no_assert` has no order assertion at all, and
//! `scatter_descending` asserts the *wrong* (descending) order. Each must
//! be flagged; only a strictly-ascending assertion passes (see the clean
//! fixture's `pipelined`).

impl Cluster {
    fn scatter_no_assert(&self, targets: &[usize]) {
        let mut in_flight = Vec::new();
        for &t in targets {
            let conn = self.conns[t].lock();
            in_flight.push((t, conn));
        }
        drop(in_flight);
    }

    fn scatter_descending(&self, targets: &[usize]) {
        let mut in_flight = Vec::new();
        for &t in targets {
            let conn = self.conns[t].lock();
            debug_assert!(in_flight.last().is_none_or(|&(prev, _)| prev > t));
            in_flight.push((t, conn));
        }
        drop(in_flight);
    }
}
