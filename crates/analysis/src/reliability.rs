//! Reliability `R(t)` — the transient survival function.
//!
//! The paper's opening sentence promises that replication increases
//! "*availability* and *reliability*", but §4 evaluates only the former.
//! This module completes the pair: `R(t)` is the probability that a block
//! that starts with every copy up suffers **no service interruption** during
//! `[0, t]` — the survival function of the same absorbing chains whose means
//! are the MTTFs in [`crate::mttf`].
//!
//! Computed by *uniformization*: the absorbing CTMC is embedded in a DTMC at
//! a uniform rate `Λ ≥ max outflow`, and
//! `R(t) = Σ_k Poisson(Λt; k) · P(still alive after k jumps)`, with the
//! Poisson weights built relative to their mode (no underflow at large
//! `Λt`) over a ±12σ window. Exact apart from the < 1e-12 window tail; no
//! matrix exponentials.

use crate::markov::CtmcBuilder;
use crate::math::check_args;
use crate::{available_copy, naive, voting};

/// Survival probability of an absorbing chain: starting at `start`, the
/// probability that no state in `absorbing` has been entered by time `t`.
///
/// # Panics
///
/// Panics if the mask length mismatches the chain, `start` is out of range,
/// or `t` is negative/NaN.
pub fn survival(chain: &CtmcBuilder, absorbing: &[bool], start: usize, t: f64) -> f64 {
    let n = chain.num_states();
    assert_eq!(absorbing.len(), n, "mask must cover every state");
    assert!(start < n, "start state out of range");
    assert!(
        t.is_finite() && t >= 0.0,
        "time must be finite and nonnegative"
    );
    if absorbing[start] {
        return 0.0;
    }
    if t == 0.0 {
        return 1.0;
    }
    // Uniformization rate: the largest outflow among transient states.
    let lambda = (0..n)
        .filter(|&i| !absorbing[i])
        .map(|i| chain.out_rate(i))
        .fold(0.0f64, f64::max);
    if lambda == 0.0 {
        return 1.0; // no transient state can ever leave
    }
    // DTMC step on the transient restriction: probability mass entering an
    // absorbing state is dropped (it died).
    let step = |p: &[f64]| -> Vec<f64> {
        let mut next = vec![0.0; n];
        for i in 0..n {
            if absorbing[i] || p[i] == 0.0 {
                continue;
            }
            let out = chain.out_rate(i);
            // Self-loop with the uniformization remainder.
            next[i] += p[i] * (1.0 - out / lambda);
            for j in 0..n {
                if j != i {
                    let rate = chain.rate(i, j);
                    if rate > 0.0 && !absorbing[j] {
                        next[j] += p[i] * rate / lambda;
                    }
                }
            }
        }
        next
    };
    // R(t) = Σ_k Poisson(Λt; k) · alive_k. For large Λt the individual
    // Poisson terms underflow f64 when computed from k = 0, so weights are
    // built *relative to the mode* over the window Λt ± 12√Λt and then
    // normalized (the truncated tail is < 1e-12 of the mass).
    let lt = lambda * t;
    let spread = 12.0 * lt.sqrt() + 64.0;
    let k_min = (lt - spread).max(0.0).floor() as usize;
    let k_max = (lt + spread).ceil() as usize;
    let mode = (lt.floor() as usize).clamp(k_min, k_max);
    let mut weights = vec![0.0f64; k_max - k_min + 1];
    weights[mode - k_min] = 1.0;
    for k in (mode + 1)..=k_max {
        weights[k - k_min] = weights[k - 1 - k_min] * lt / k as f64;
    }
    for k in (k_min..mode).rev() {
        weights[k - k_min] = weights[k + 1 - k_min] * (k + 1) as f64 / lt;
    }
    let total: f64 = weights.iter().sum();
    // Step the DTMC from k = 0; below the window every weight is ~0 but the
    // survival mass must still be evolved to reach the window.
    let mut p = vec![0.0; n];
    p[start] = 1.0;
    let mut r = if k_min == 0 {
        weights[0] / total // k = 0 term: alive_0 = 1
    } else {
        0.0
    };
    for k in 1..=k_max {
        p = step(&p);
        if k >= k_min {
            let alive: f64 = p.iter().sum();
            r += weights[k - k_min] / total * alive;
            // The survival probability is non-increasing in k; once it and
            // the remaining weight are both negligible, stop.
            if alive < 1e-15 {
                break;
            }
        }
    }
    r.clamp(0.0, 1.0)
}

/// `R(t)` for a voting-managed block: probability the quorum survives
/// `[0, t]` without interruption, from all copies up.
///
/// # Examples
///
/// ```
/// use blockrep_analysis::reliability;
///
/// // A single copy is a pure exponential: R(t) = e^{-λt}.
/// let r = reliability::voting(1, 0.1, 5.0);
/// assert!((r - (-0.5f64).exp()).abs() < 1e-9);
/// ```
///
/// # Panics
///
/// Panics if `n == 0`, `rho` is not positive and finite, or `t` is invalid.
pub fn voting(n: usize, rho: f64, t: f64) -> f64 {
    check_args(n, rho);
    assert!(rho > 0.0, "reliability needs rho > 0");
    let chain = voting::build_chain(n, rho);
    let available = voting::available_mask(n);
    let absorbing: Vec<bool> = available.iter().map(|&a| !a).collect();
    survival(&chain, &absorbing, voting::state_index(n - 1, 1), t)
}

fn family_reliability(chain: &CtmcBuilder, n: usize, t: f64) -> f64 {
    let absorbing: Vec<bool> = (0..2 * n).map(|i| i >= n).collect();
    survival(chain, &absorbing, n - 1, t)
}

/// `R(t)` for an available-copy-managed block: probability at least one
/// copy stays available throughout `[0, t]`.
///
/// # Panics
///
/// As for [`voting()`].
pub fn available_copy(n: usize, rho: f64, t: f64) -> f64 {
    check_args(n, rho);
    assert!(rho > 0.0, "reliability needs rho > 0");
    family_reliability(&available_copy::build_chain(n, rho), n, t)
}

/// `R(t)` under naive available copy — equal to [`available_copy()`]'s
/// (the schemes only differ after the failure that `R(t)` measures).
///
/// # Panics
///
/// As for [`voting()`].
pub fn naive(n: usize, rho: f64, t: f64) -> f64 {
    check_args(n, rho);
    assert!(rho > 0.0, "reliability needs rho > 0");
    family_reliability(&naive::build_chain(n, rho), n, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mttf;

    #[test]
    fn single_copy_is_exponential() {
        for rho in [0.05f64, 0.3, 1.0] {
            for t in [0.1, 1.0, 10.0] {
                let expect = (-rho * t).exp();
                assert!((voting(1, rho, t) - expect).abs() < 1e-9, "rho={rho} t={t}");
                assert!((available_copy(1, rho, t) - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn boundary_values() {
        assert_eq!(voting(3, 0.1, 0.0), 1.0);
        assert!(voting(3, 0.1, 1e6) < 1e-3, "everything dies eventually");
    }

    #[test]
    fn reliability_decreases_in_time() {
        let mut last = 1.0;
        for step in 1..=20 {
            let t = step as f64 * 5.0;
            let r = available_copy(3, 0.2, t);
            assert!(r <= last + 1e-12, "t={t}");
            last = r;
        }
    }

    #[test]
    fn more_copies_survive_longer() {
        for t in [5.0, 20.0, 80.0] {
            assert!(available_copy(3, 0.2, t) > available_copy(2, 0.2, t));
            assert!(voting(5, 0.2, t) > voting(3, 0.2, t));
        }
    }

    #[test]
    fn available_copy_outlasts_voting_at_equal_n() {
        for t in [5.0, 20.0] {
            for n in 2..=5 {
                assert!(available_copy(n, 0.2, t) > voting(n, 0.2, t), "n={n} t={t}");
            }
        }
    }

    #[test]
    fn naive_and_available_copy_reliability_coincide() {
        for t in [1.0, 10.0, 50.0] {
            for n in 2..=5 {
                let a = available_copy(n, 0.3, t);
                let b = naive(n, 0.3, t);
                assert!((a - b).abs() < 1e-9, "n={n} t={t}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn integral_of_reliability_recovers_mttf() {
        // MTTF = ∫₀^∞ R(t) dt; trapezoid over a long grid should land close.
        let (n, rho) = (2, 0.5);
        let expect = mttf::available_copy(n, rho);
        let (mut integral, dt) = (0.0, 0.05);
        let mut t = 0.0;
        let horizon = expect * 20.0;
        while t < horizon {
            let a = available_copy(n, rho, t);
            let b = available_copy(n, rho, t + dt);
            integral += 0.5 * (a + b) * dt;
            t += dt;
        }
        let err = (integral - expect).abs() / expect;
        assert!(
            err < 0.01,
            "integral {integral} vs MTTF {expect} (rel {err})"
        );
    }

    #[test]
    fn long_missions_do_not_underflow() {
        // Regression: with Λt in the thousands, naive term-by-term
        // uniformization underflows to R = 0. MTTF(4, 0.05) ≈ 49475, so a
        // mission of 1000 should survive with probability ≈ e^{-1000/MTTF}.
        let r = available_copy(4, 0.05, 1000.0);
        let rough = (-1000.0f64 / mttf::available_copy(4, 0.05)).exp();
        assert!(r > 0.9, "got {r}");
        assert!(
            (r - rough).abs() < 0.02,
            "R {r} vs exponential heuristic {rough}"
        );
    }

    #[test]
    fn mission_time_ordering_matches_theorem_4_1_spirit() {
        // AC with n copies outlasts voting with 2n over mission times.
        for t in [10.0, 50.0] {
            for n in 2..=4 {
                assert!(
                    available_copy(n, 0.2, t) > voting(2 * n, 0.2, t),
                    "n={n} t={t}"
                );
            }
        }
    }
}
