//! Clean hot-path fixture: observability sits behind a hoisted
//! enabled-check, the house pattern.

pub fn dispatch(op: u32, enabled: bool) -> u32 {
    if enabled {
        event!(Level::INFO, "dispatch");
        start_phase("dispatch");
    }
    op + 1
}

pub fn quiet(op: u32) -> u32 {
    op * 2
}
