//! Parity between the three runtimes: the deterministic [`Cluster`], the
//! channel-threaded [`LiveCluster`], and the socket-backed [`TcpCluster`]
//! run the *same* protocol code, so an identical workload must produce
//! identical results **and identical §5 traffic counts** on all of them.

use blockrep::core::{Cluster, ClusterOptions, LiveCluster, TcpCluster};
use blockrep::net::{DeliveryMode, FanoutMode, TrafficSnapshot};
use blockrep::types::{BlockData, BlockIndex, DeviceConfig, Scheme, SiteId};

fn cfg(scheme: Scheme) -> DeviceConfig {
    DeviceConfig::builder(scheme)
        .sites(4)
        .num_blocks(8)
        .block_size(32)
        .build()
        .unwrap()
}

fn s(i: u32) -> SiteId {
    SiteId::new(i)
}

fn blk(i: u64) -> BlockIndex {
    BlockIndex::new(i)
}

/// A fixed workload with failures, degraded writes, repairs, and reads.
/// Returns (read results, traffic snapshot).
fn drive(
    read: &dyn Fn(SiteId, BlockIndex) -> Option<BlockData>,
    write: &dyn Fn(SiteId, BlockIndex, BlockData) -> bool,
    fail: &dyn Fn(SiteId),
    repair: &dyn Fn(SiteId),
    traffic: &dyn Fn() -> TrafficSnapshot,
) -> (Vec<Option<Vec<u8>>>, TrafficSnapshot) {
    let fill = |b: u8| BlockData::from(vec![b; 32]);
    write(s(0), blk(0), fill(1));
    write(s(1), blk(1), fill(2));
    fail(s(3));
    write(s(0), blk(0), fill(3));
    write(s(2), blk(2), fill(4));
    repair(s(3));
    fail(s(0));
    write(s(1), blk(3), fill(5));
    repair(s(0));
    let reads = vec![
        read(s(0), blk(0)).map(|d| d.as_slice().to_vec()),
        read(s(1), blk(1)).map(|d| d.as_slice().to_vec()),
        read(s(3), blk(2)).map(|d| d.as_slice().to_vec()),
        read(s(2), blk(3)).map(|d| d.as_slice().to_vec()),
    ];
    (reads, traffic())
}

fn parity_for(scheme: Scheme, mode: DeliveryMode) {
    // The same protocol code over three transports: direct state access,
    // channels between threads, and framed loopback TCP.
    let det = Cluster::new(cfg(scheme), ClusterOptions { mode });
    let (det_reads, det_traffic) = drive(
        &|o, k| det.read(o, k).ok(),
        &|o, k, d| det.write(o, k, d).is_ok(),
        &|x| det.fail_site(x),
        &|x| det.repair_site(x),
        &|| det.traffic(),
    );

    let live = LiveCluster::spawn(cfg(scheme), mode);
    let (live_reads, live_traffic) = drive(
        &|o, k| live.read(o, k).ok(),
        &|o, k, d| live.write(o, k, d).is_ok(),
        &|x| live.fail_site(x),
        &|x| live.repair_site(x),
        &|| live.counter().snapshot(),
    );

    let tcp = TcpCluster::spawn(cfg(scheme), mode).unwrap();
    let (tcp_reads, tcp_traffic) = drive(
        &|o, k| tcp.read(o, k).ok(),
        &|o, k, d| tcp.write(o, k, d).is_ok(),
        &|x| tcp.fail_site(x),
        &|x| tcp.repair_site(x),
        &|| tcp.counter().snapshot(),
    );

    assert_eq!(
        det_reads, live_reads,
        "{scheme}/{mode}: channel runtime diverged"
    );
    assert_eq!(
        det_reads, tcp_reads,
        "{scheme}/{mode}: tcp runtime diverged"
    );
    assert_eq!(
        det_traffic, live_traffic,
        "{scheme}/{mode}: channel §5 accounting must match"
    );
    assert_eq!(
        det_traffic, tcp_traffic,
        "{scheme}/{mode}: tcp §5 accounting must match"
    );
}

#[test]
fn voting_runtimes_agree_multicast() {
    parity_for(Scheme::Voting, DeliveryMode::Multicast);
}

#[test]
fn voting_runtimes_agree_unicast() {
    parity_for(Scheme::Voting, DeliveryMode::Unicast);
}

#[test]
fn available_copy_runtimes_agree_multicast() {
    parity_for(Scheme::AvailableCopy, DeliveryMode::Multicast);
}

#[test]
fn available_copy_runtimes_agree_unicast() {
    parity_for(Scheme::AvailableCopy, DeliveryMode::Unicast);
}

#[test]
fn naive_runtimes_agree_multicast() {
    parity_for(Scheme::NaiveAvailableCopy, DeliveryMode::Multicast);
}

#[test]
fn naive_runtimes_agree_unicast() {
    parity_for(Scheme::NaiveAvailableCopy, DeliveryMode::Unicast);
}

/// Concurrency must change latency, never §5 message counts: on both
/// concurrent runtimes, the traffic snapshot produced by the parallel
/// fan-out is byte-identical to its own sequential baseline (and to the
/// deterministic cluster) for every scheme × delivery mode.
#[test]
fn parallel_fanout_traffic_is_byte_identical_to_sequential() {
    for scheme in Scheme::ALL {
        for mode in DeliveryMode::ALL {
            let det = Cluster::new(cfg(scheme), ClusterOptions { mode });
            let baseline = drive(
                &|o, k| det.read(o, k).ok(),
                &|o, k, d| det.write(o, k, d).is_ok(),
                &|x| det.fail_site(x),
                &|x| det.repair_site(x),
                &|| det.traffic(),
            );

            for fanout in FanoutMode::ALL {
                let live = LiveCluster::spawn(cfg(scheme), mode);
                live.set_fanout(fanout);
                let got = drive(
                    &|o, k| live.read(o, k).ok(),
                    &|o, k, d| live.write(o, k, d).is_ok(),
                    &|x| live.fail_site(x),
                    &|x| live.repair_site(x),
                    &|| live.counter().snapshot(),
                );
                assert_eq!(baseline, got, "{scheme}/{mode}/live/{fanout}");

                let tcp = TcpCluster::spawn(cfg(scheme), mode).unwrap();
                tcp.set_fanout(fanout);
                let got = drive(
                    &|o, k| tcp.read(o, k).ok(),
                    &|o, k, d| tcp.write(o, k, d).is_ok(),
                    &|x| tcp.fail_site(x),
                    &|x| tcp.repair_site(x),
                    &|| tcp.counter().snapshot(),
                );
                assert_eq!(baseline, got, "{scheme}/{mode}/tcp/{fanout}");
            }
        }
    }
}

/// Early-quorum vote collection builds on a (deterministic) prefix of the
/// voter set, so the install fan-out narrows the same way on every runtime:
/// results and §5 traffic stay byte-identical across the three runtimes,
/// with the live cluster's straggler charges drained before snapshotting.
#[test]
fn early_quorum_runtimes_agree() {
    for mode in DeliveryMode::ALL {
        let det = Cluster::new(cfg(Scheme::Voting), ClusterOptions { mode });
        det.set_early_quorum(true);
        let baseline = drive(
            &|o, k| det.read(o, k).ok(),
            &|o, k, d| det.write(o, k, d).is_ok(),
            &|x| det.fail_site(x),
            &|x| det.repair_site(x),
            &|| det.traffic(),
        );

        let live = LiveCluster::spawn(cfg(Scheme::Voting), mode);
        live.set_early_quorum(true);
        let got = drive(
            &|o, k| live.read(o, k).ok(),
            &|o, k, d| live.write(o, k, d).is_ok(),
            &|x| live.fail_site(x),
            &|x| live.repair_site(x),
            &|| {
                live.quiesce();
                live.counter().snapshot()
            },
        );
        assert_eq!(baseline, got, "early-quorum/{mode}: live diverged");

        let tcp = TcpCluster::spawn(cfg(Scheme::Voting), mode).unwrap();
        tcp.set_early_quorum(true);
        let got = drive(
            &|o, k| tcp.read(o, k).ok(),
            &|o, k, d| tcp.write(o, k, d).is_ok(),
            &|x| tcp.fail_site(x),
            &|x| tcp.repair_site(x),
            &|| tcp.counter().snapshot(),
        );
        assert_eq!(baseline, got, "early-quorum/{mode}: tcp diverged");
    }
}

/// A fixed vectored workload: batched writes, a failure window that leaves
/// one replica stale, then batched reads — one of them coordinated by the
/// formerly failed site, so the batch straddles up-to-date and out-of-date
/// blocks and voting's lazy repair runs per block *inside* one vectored
/// round. Returns (read results, traffic snapshot).
type WriteManyFn<'a> = &'a dyn Fn(SiteId, &[(BlockIndex, BlockData)]) -> bool;
type ReadManyFn<'a> = &'a dyn Fn(SiteId, &[BlockIndex]) -> Option<Vec<Vec<u8>>>;

fn drive_vectored(
    write_many: WriteManyFn<'_>,
    read_many: ReadManyFn<'_>,
    fail: &dyn Fn(SiteId),
    repair: &dyn Fn(SiteId),
    traffic: &dyn Fn() -> TrafficSnapshot,
) -> (Vec<Option<Vec<Vec<u8>>>>, TrafficSnapshot) {
    let fill = |b: u8| BlockData::from(vec![b; 32]);
    let batch: Vec<(BlockIndex, BlockData)> =
        (0..4).map(|i| (blk(i), fill(10 + i as u8))).collect();
    assert!(write_many(s(0), &batch));
    fail(s(3));
    let overwrite: Vec<(BlockIndex, BlockData)> =
        (1..3).map(|i| (blk(i), fill(20 + i as u8))).collect();
    assert!(write_many(s(0), &overwrite));
    repair(s(3));
    let ks: Vec<BlockIndex> = (0..4).map(blk).collect();
    let reads = vec![
        // s3 missed the overwrite of blocks 1..3: a batch straddling
        // current and stale replicas.
        read_many(s(3), &ks),
        read_many(s(1), &ks),
    ];
    (reads, traffic())
}

/// Batched reads/writes must be byte-identical AND §5-traffic-identical to
/// the equivalent per-block loop, on every scheme × delivery mode — and the
/// vectored path must agree across all three runtimes.
#[test]
fn vectored_ops_match_per_block_loop_on_all_runtimes() {
    for scheme in Scheme::ALL {
        for mode in DeliveryMode::ALL {
            // Per-block baseline: the same workload with the batch unrolled
            // into single-block operations, in batch order.
            let unrolled = Cluster::new(cfg(scheme), ClusterOptions { mode });
            let baseline = drive_vectored(
                &|o, ws| {
                    ws.iter()
                        .all(|(k, d)| unrolled.write(o, *k, d.clone()).is_ok())
                },
                &|o, ks| {
                    ks.iter()
                        .map(|&k| unrolled.read(o, k).ok().map(|d| d.as_slice().to_vec()))
                        .collect()
                },
                &|x| unrolled.fail_site(x),
                &|x| unrolled.repair_site(x),
                &|| unrolled.traffic(),
            );

            let det = Cluster::new(cfg(scheme), ClusterOptions { mode });
            let got = drive_vectored(
                &|o, ws| det.write_many(o, ws).is_ok(),
                &|o, ks| {
                    det.read_many(o, ks)
                        .ok()
                        .map(|v| v.iter().map(|d| d.as_slice().to_vec()).collect())
                },
                &|x| det.fail_site(x),
                &|x| det.repair_site(x),
                &|| det.traffic(),
            );
            assert_eq!(
                baseline, got,
                "{scheme}/{mode}: batched ops diverged from the per-block loop"
            );

            let live = LiveCluster::spawn(cfg(scheme), mode);
            let got = drive_vectored(
                &|o, ws| live.write_many(o, ws).is_ok(),
                &|o, ks| {
                    live.read_many(o, ks)
                        .ok()
                        .map(|v| v.iter().map(|d| d.as_slice().to_vec()).collect())
                },
                &|x| live.fail_site(x),
                &|x| live.repair_site(x),
                &|| live.counter().snapshot(),
            );
            assert_eq!(baseline, got, "{scheme}/{mode}: live vectored diverged");

            let tcp = TcpCluster::spawn(cfg(scheme), mode).unwrap();
            let got = drive_vectored(
                &|o, ws| tcp.write_many(o, ws).is_ok(),
                &|o, ks| {
                    tcp.read_many(o, ks)
                        .ok()
                        .map(|v| v.iter().map(|d| d.as_slice().to_vec()).collect())
                },
                &|x| tcp.fail_site(x),
                &|x| tcp.repair_site(x),
                &|| tcp.counter().snapshot(),
            );
            assert_eq!(baseline, got, "{scheme}/{mode}: tcp vectored diverged");
        }
    }
}

/// The parallel and early-quorum fan-out paths of the concurrent runtimes
/// must also leave vectored results and traffic untouched.
#[test]
fn vectored_ops_are_fanout_and_quorum_invariant() {
    let scheme = Scheme::Voting;
    for mode in DeliveryMode::ALL {
        let det = Cluster::new(cfg(scheme), ClusterOptions { mode });
        det.set_early_quorum(true);
        let baseline = drive_vectored(
            &|o, ws| det.write_many(o, ws).is_ok(),
            &|o, ks| {
                det.read_many(o, ks)
                    .ok()
                    .map(|v| v.iter().map(|d| d.as_slice().to_vec()).collect())
            },
            &|x| det.fail_site(x),
            &|x| det.repair_site(x),
            &|| det.traffic(),
        );

        for fanout in FanoutMode::ALL {
            let live = LiveCluster::spawn(cfg(scheme), mode);
            live.set_fanout(fanout);
            live.set_early_quorum(true);
            let got = drive_vectored(
                &|o, ws| live.write_many(o, ws).is_ok(),
                &|o, ks| {
                    live.read_many(o, ks)
                        .ok()
                        .map(|v| v.iter().map(|d| d.as_slice().to_vec()).collect())
                },
                &|x| live.fail_site(x),
                &|x| live.repair_site(x),
                &|| {
                    live.quiesce();
                    live.counter().snapshot()
                },
            );
            assert_eq!(baseline, got, "early-quorum/{mode}/live/{fanout}");

            let tcp = TcpCluster::spawn(cfg(scheme), mode).unwrap();
            tcp.set_fanout(fanout);
            tcp.set_early_quorum(true);
            let got = drive_vectored(
                &|o, ws| tcp.write_many(o, ws).is_ok(),
                &|o, ks| {
                    tcp.read_many(o, ks)
                        .ok()
                        .map(|v| v.iter().map(|d| d.as_slice().to_vec()).collect())
                },
                &|x| tcp.fail_site(x),
                &|x| tcp.repair_site(x),
                &|| tcp.counter().snapshot(),
            );
            assert_eq!(baseline, got, "early-quorum/{mode}/tcp/{fanout}");
        }
    }
}

#[test]
fn live_cluster_total_failure_recovery_matches_deterministic() {
    for scheme in [Scheme::AvailableCopy, Scheme::NaiveAvailableCopy] {
        let run = |fail_order: &[u32], repair_order: &[u32]| {
            let det = Cluster::new(cfg(scheme), ClusterOptions::default());
            let live = LiveCluster::spawn(cfg(scheme), DeliveryMode::Multicast);
            det.write(s(0), blk(0), BlockData::from(vec![9; 32]))
                .unwrap();
            live.write(s(0), blk(0), BlockData::from(vec![9; 32]))
                .unwrap();
            let mut availabilities = Vec::new();
            for &i in fail_order {
                det.fail_site(s(i));
                live.fail_site(s(i));
            }
            for &i in repair_order {
                det.repair_site(s(i));
                live.repair_site(s(i));
                assert_eq!(
                    det.is_available(),
                    live.is_available(),
                    "{scheme}: divergence after repairing s{i}"
                );
                availabilities.push(det.is_available());
            }
            availabilities
        };
        // Stale-first repair order after a total failure.
        let avail = run(&[1, 2, 3, 0], &[1, 2, 3, 0]);
        assert_eq!(avail.last(), Some(&true));
    }
}
