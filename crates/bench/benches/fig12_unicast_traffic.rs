//! Figure 12 regeneration benchmark: unique-addressing traffic per
//! (1 write + x reads) at ρ = 0.05.

use blockrep_analysis::figures;
use blockrep_core::simulate::traffic::{measure, TrafficConfig};
use blockrep_net::DeliveryMode;
use blockrep_types::Scheme;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("analytic_sweep", |b| b.iter(|| black_box(figures::fig12())));
    for scheme in Scheme::ALL {
        let mut cfg = TrafficConfig::new(scheme, 6, DeliveryMode::Unicast);
        cfg.ops = 4_000;
        g.bench_function(format!("measured_{}", scheme.label()), |b| {
            b.iter(|| black_box(measure(&cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
