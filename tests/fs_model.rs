//! Model-based property tests of the file system: random operation
//! sequences are applied both to `blockrep-fs` (over a replicated reliable
//! device, with failures injected between operations) and to a trivial
//! in-memory reference model; observable behaviour must agree.

use blockrep::core::{Cluster, ClusterOptions, ReliableDevice};
use blockrep::fs::{FileSystem, FsError};
use blockrep::types::{DeviceConfig, Scheme, SiteId};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Reference model: path -> contents for files; directories implicit.
#[derive(Debug, Default)]
struct Model {
    files: BTreeMap<String, Vec<u8>>,
    dirs: Vec<String>,
}

impl Model {
    fn new() -> Self {
        Model {
            files: BTreeMap::new(),
            dirs: vec!["/".into(), "/a".into(), "/b".into()],
        }
    }
    fn parent_exists(&self, path: &str) -> bool {
        let parent = match path.rfind('/') {
            Some(0) => "/".to_string(),
            Some(i) => path[..i].to_string(),
            None => return false,
        };
        self.dirs.contains(&parent)
    }
}

#[derive(Debug, Clone)]
enum FsOp {
    WriteFile { path: String, data: Vec<u8> },
    ReadFile { path: String },
    Remove { path: String },
    List { dir: String },
    FailSite(u32),
    RepairSite(u32),
}

fn path_strategy() -> impl Strategy<Value = String> {
    // Small name universe so collisions (and therefore interesting
    // overwrite/remove interleavings) are common.
    let dirs = prop_oneof![Just("/"), Just("/a/"), Just("/b/")];
    let names = prop_oneof![Just("f0"), Just("f1"), Just("f2"), Just("f3")];
    (dirs, names).prop_map(|(d, n)| format!("{d}{n}"))
}

fn op_strategy() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        4 => (path_strategy(), prop::collection::vec(any::<u8>(), 0..2048))
            .prop_map(|(path, data)| FsOp::WriteFile { path, data }),
        4 => path_strategy().prop_map(|path| FsOp::ReadFile { path }),
        2 => path_strategy().prop_map(|path| FsOp::Remove { path }),
        2 => prop_oneof![Just("/"), Just("/a"), Just("/b")]
            .prop_map(|d: &str| FsOp::List { dir: d.to_string() }),
        1 => (0u32..3).prop_map(FsOp::FailSite),
        1 => (0u32..3).prop_map(FsOp::RepairSite),
    ]
}

fn fs_under_test() -> (Arc<Cluster>, FileSystem<ReliableDevice<Cluster>>) {
    let cfg = DeviceConfig::builder(Scheme::AvailableCopy)
        .sites(3)
        .num_blocks(1024)
        .block_size(512)
        .build()
        .unwrap();
    let cluster = Arc::new(Cluster::new(cfg, ClusterOptions::default()));
    let fs = FileSystem::format(ReliableDevice::new(Arc::clone(&cluster), SiteId::new(0))).unwrap();
    fs.mkdir("/a").unwrap();
    fs.mkdir("/b").unwrap();
    (cluster, fs)
}

fn apply(
    cluster: &Cluster,
    fs: &FileSystem<ReliableDevice<Cluster>>,
    model: &mut Model,
    op: &FsOp,
) -> Result<(), TestCaseError> {
    // With available copy on 3 sites and ≤1 site failed at a time here,
    // the device is always available, so FS results must exactly match the
    // model.
    match op {
        FsOp::WriteFile { path, data } => {
            let result = fs.write_file(path, data);
            if model.parent_exists(path) {
                prop_assert!(result.is_ok(), "write_file({path}) failed: {result:?}");
                model.files.insert(path.clone(), data.clone());
            } else {
                prop_assert!(result.is_err(), "write to missing parent succeeded");
            }
        }
        FsOp::ReadFile { path } => match model.files.get(path) {
            Some(expect) => {
                let got = fs.read_file(path);
                prop_assert!(got.is_ok(), "read_file({path}) failed: {got:?}");
                prop_assert_eq!(&got.unwrap(), expect, "contents of {}", path);
            }
            None => {
                let got = fs.read_file(path);
                prop_assert!(
                    matches!(got, Err(FsError::NotFound(_))),
                    "read of absent {path} returned {got:?}"
                );
            }
        },
        FsOp::Remove { path } => {
            let result = fs.remove_file(path);
            if model.files.remove(path).is_some() {
                prop_assert!(result.is_ok(), "remove_file({path}) failed: {result:?}");
            } else {
                prop_assert!(result.is_err(), "remove of absent {path} succeeded");
            }
        }
        FsOp::List { dir } => {
            let mut expect: Vec<String> = model
                .files
                .keys()
                .filter_map(|p| {
                    let (parent, name) = p.rsplit_once('/').unwrap();
                    let parent = if parent.is_empty() { "/" } else { parent };
                    (parent == dir).then(|| name.to_string())
                })
                .collect();
            if dir == "/" {
                expect.push("a".into());
                expect.push("b".into());
            }
            expect.sort();
            let got = fs.read_dir(dir);
            prop_assert!(got.is_ok(), "read_dir({dir}) failed: {got:?}");
            prop_assert_eq!(got.unwrap(), expect, "listing of {}", dir);
        }
        FsOp::FailSite(i) => {
            // Keep at least two sites up so the device never refuses ops
            // (otherwise the model comparison would need tri-state logic).
            let up = (0..3)
                .filter(|&j| {
                    cluster.site_state(SiteId::new(j)) == blockrep::types::SiteState::Available
                })
                .count();
            if up > 2
                && cluster.site_state(SiteId::new(*i)) == blockrep::types::SiteState::Available
            {
                cluster.fail_site(SiteId::new(*i));
            }
        }
        FsOp::RepairSite(i) => {
            if cluster.site_state(SiteId::new(*i)) == blockrep::types::SiteState::Failed {
                cluster.repair_site(SiteId::new(*i));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fs_over_reliable_device_matches_reference_model(
        ops in prop::collection::vec(op_strategy(), 1..40)
    ) {
        let (cluster, fs) = fs_under_test();
        let mut model = Model::new();
        for op in &ops {
            apply(&cluster, &fs, &mut model, op)?;
        }
        // Epilogue: repair everything and check every file one last time.
        for i in 0..3 {
            if cluster.site_state(SiteId::new(i)) == blockrep::types::SiteState::Failed {
                cluster.repair_site(SiteId::new(i));
            }
        }
        for (path, expect) in &model.files {
            prop_assert_eq!(&fs.read_file(path).unwrap(), expect, "final check of {}", path);
        }
        // And the on-disk image must be structurally consistent.
        let report = fs.check().unwrap();
        prop_assert!(report.is_clean(), "fsck: {:?}", report.problems);
    }
}
