//! Each pass must catch exactly its seeded violations in the fixture
//! corpus and stay silent on the clean tree.

use blockrep_lint::{Config, Report, Severity};
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(name: &str) -> Report {
    blockrep_lint::run(&Config::new(fixture(name))).expect("fixture lints")
}

#[test]
fn clean_tree_produces_no_findings() {
    let report = lint("clean");
    assert!(
        report.findings.is_empty(),
        "clean fixture is dirty:\n{}",
        report.render()
    );
    // ... and the positive checks still fire: the ascending-order loop and
    // the wire-tag bijection are *verified*, not merely unflagged.
    assert!(
        report
            .verified
            .iter()
            .any(|v| v.contains("pipelined") && v.contains("ascending")),
        "{:#?}",
        report.verified
    );
    assert!(
        report
            .verified
            .iter()
            .any(|v| v.contains("`Frame`") && v.contains("0, 1")),
        "{:#?}",
        report.verified
    );
}

#[test]
fn lock_cycle_and_reacquisition_are_caught() {
    let report = lint("lock_cycle");
    assert_eq!(report.findings.len(), 2, "{}", report.render());
    assert!(report.findings.iter().all(|f| f.pass == "lock-order"));
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains("cycle") && f.message.contains("pair.a")),
        "{}",
        report.render()
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains("acquired again") && f.message.contains("reenter")),
        "{}",
        report.render()
    );
}

#[test]
fn mixed_ordering_atomic_without_fence_is_caught() {
    let report = lint("atomics_mixed");
    // `begin_write` is the only live finding: `end_write` has its fence
    // and `probe` is suppressed by the inline marker.
    assert_eq!(report.findings.len(), 1, "{}", report.render());
    let f = &report.findings[0];
    assert_eq!(f.pass, "atomics");
    assert_eq!(f.severity, Severity::Error);
    assert!(f.message.contains("begin_write"), "{}", f.message);
    assert!(f.message.contains("fence"), "{}", f.message);
    assert_eq!(report.suppressed, 1, "inline marker must have fired");
}

#[test]
fn unguarded_obs_in_hot_path_is_caught() {
    let report = lint("obs_hot");
    assert_eq!(report.findings.len(), 2, "{}", report.render());
    assert!(report
        .findings
        .iter()
        .all(|f| f.pass == "obs-hot-path" && f.severity == Severity::Warning));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("`event`")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("`start_phase`")));
}

#[test]
fn baseline_file_suppresses_by_line_and_tracks_use() {
    let config = Config {
        root: fixture("obs_hot"),
        allow_file: Some(fixture("obs_hot").join("suppress_one.allow")),
    };
    let report = blockrep_lint::run(&config).expect("fixture lints");
    assert_eq!(report.suppressed, 1, "{}", report.render());
    assert_eq!(report.findings.len(), 1, "{}", report.render());
    assert!(
        report.findings[0].message.contains("`start_phase`"),
        "the line-scoped entry must only hit the event! finding"
    );
}

#[test]
fn wire_tag_mismatches_are_caught() {
    let report = lint("wire_orphan");
    assert_eq!(report.findings.len(), 3, "{}", report.render());
    assert!(report
        .findings
        .iter()
        .all(|f| f.pass == "wire-tags" && f.severity == Severity::Error));
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains("tag 1 twice")),
        "{}",
        report.render()
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains("tag 5") && f.message.contains("decode has no arm")),
        "{}",
        report.render()
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains("tag 7") && f.message.contains("orphan")),
        "{}",
        report.render()
    );
}

#[test]
fn missing_or_mutated_ascending_assert_is_caught() {
    let report = lint("conn_order");
    assert_eq!(report.findings.len(), 2, "{}", report.render());
    assert!(report.findings.iter().all(|f| f.pass == "lock-order"
        && f.severity == Severity::Error
        && f.message.contains("ascending-order")));
    // Nothing got "verified" — a descending assert is not the discipline.
    assert!(
        !report.verified.iter().any(|v| v.contains("scatter")),
        "{:#?}",
        report.verified
    );
}

#[test]
fn descending_block_shard_acquisition_is_caught() {
    let report = lint("shard_order");
    // Only the back-to-front walk is a finding; its descending assert is
    // not the discipline.
    assert_eq!(report.findings.len(), 1, "{}", report.render());
    let f = &report.findings[0];
    assert!(f.pass == "lock-order" && f.severity == Severity::Error);
    assert!(
        f.message.contains("guard_many_descending") && f.message.contains("ascending-order"),
        "{}",
        f.message
    );
    // The ascending twin is positively verified, exactly like the real
    // `BlockLockTable::{read,write}_guard_many`.
    assert!(
        report
            .verified
            .iter()
            .any(|v| v.contains("`guard_many`") && v.contains("ascending")),
        "{:#?}",
        report.verified
    );
}

#[test]
fn descending_shard_fanout_is_caught() {
    let report = lint("shard_fanout");
    // The back-to-front fan-out is the only finding: it accumulates one
    // admission gate per touched shard but asserts the wrong order.
    assert_eq!(report.findings.len(), 1, "{}", report.render());
    let f = &report.findings[0];
    assert!(f.pass == "lock-order" && f.severity == Severity::Error);
    assert!(
        f.message.contains("fan_out_descending") && f.message.contains("ascending-order"),
        "{}",
        f.message
    );
    // The ascending twin mirrors the real `ShardedDevice::fan_out` and is
    // positively verified.
    assert!(
        report
            .verified
            .iter()
            .any(|v| v.contains("`fan_out`") && v.contains("ascending")),
        "{:#?}",
        report.verified
    );
}
