//! Replication sizing: copies needed for a target availability, and the
//! equal-availability traffic comparison the paper alludes to.
//!
//! Figures 11 and 12 compare "schemes employing the same number of sites",
//! and the paper remarks that "a comparison of schemes with equal
//! availabilities would result in much steeper voting traffic costs" —
//! because voting needs roughly *twice* the copies for the same
//! availability (Theorem 4.1). This module makes that remark quantitative:
//! [`copies_for`] inverts the availability functions, and
//! [`equal_availability_write_cost`] prices a write for each scheme sized
//! to the same availability target.

use crate::traffic::{costs, NetModel, OpCosts};
use crate::{available_copy, naive, voting};
use blockrep_types::Scheme;

/// The availability function of a scheme.
pub fn availability(scheme: Scheme, n: usize, rho: f64) -> f64 {
    match scheme {
        Scheme::Voting => voting::availability(n, rho),
        Scheme::AvailableCopy => available_copy::availability(n, rho),
        Scheme::NaiveAvailableCopy => naive::availability(n, rho),
    }
}

/// The smallest number of copies with which `scheme` reaches availability
/// `target` at the given `rho`, up to `max_n`. `None` if even `max_n`
/// copies fall short (e.g. voting with ρ ≥ 1, where extra copies stop
/// helping).
///
/// # Examples
///
/// ```
/// use blockrep_analysis::sizing::copies_for;
/// use blockrep_types::Scheme;
///
/// // Three nines at rho = 0.05: available copy needs 3 copies,
/// // voting needs 7 — the Theorem 4.1 factor of ~2 in the flesh.
/// assert_eq!(copies_for(Scheme::AvailableCopy, 0.999, 0.05, 20), Some(3));
/// assert_eq!(copies_for(Scheme::Voting, 0.999, 0.05, 20), Some(7));
/// ```
///
/// # Panics
///
/// Panics if `target` is not in `(0, 1)` or `rho` is not positive and
/// finite.
pub fn copies_for(scheme: Scheme, target: f64, rho: f64, max_n: usize) -> Option<usize> {
    assert!(
        target > 0.0 && target < 1.0,
        "availability target must lie strictly between 0 and 1"
    );
    assert!(
        rho.is_finite() && rho > 0.0,
        "rho must be positive and finite"
    );
    // Voting availability is flat across even n (A_V(2k) = A_V(2k−1)) but
    // none of the schemes lose availability when copies are added for
    // ρ < 1; a linear scan is exact and cheap at these sizes.
    (1..=max_n).find(|&n| availability(scheme, n, rho) >= target)
}

/// One row of the equal-availability comparison: each scheme sized for the
/// target, with its per-write transmission cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizedScheme {
    /// The scheme.
    pub scheme: Scheme,
    /// Copies needed to reach the target.
    pub copies: usize,
    /// The availability actually achieved with that many copies.
    pub achieved: f64,
    /// Per-operation transmission costs at that size.
    pub costs: OpCosts,
}

/// Sizes every scheme for the availability `target` and prices it under
/// the given network model. Returns `None` if any scheme cannot reach the
/// target within `max_n` copies.
pub fn equal_availability_write_cost(
    target: f64,
    rho: f64,
    net: NetModel,
    max_n: usize,
) -> Option<[SizedScheme; 3]> {
    let mut out = Vec::with_capacity(3);
    for scheme in Scheme::ALL {
        let copies = copies_for(scheme, target, rho, max_n)?;
        out.push(SizedScheme {
            scheme,
            copies,
            achieved: availability(scheme, copies, rho),
            costs: costs(scheme, net, copies, rho),
        });
    }
    out.try_into().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_copy_suffices_for_modest_targets() {
        // A single copy at rho = 0.05 is 95.2% available.
        for scheme in Scheme::ALL {
            assert_eq!(copies_for(scheme, 0.95, 0.05, 10), Some(1), "{scheme}");
        }
    }

    #[test]
    fn voting_needs_about_twice_the_copies() {
        // Theorem 4.1 inverted: for a range of targets, n_V >= 2 n_A − 1.
        for target in [0.999, 0.9999, 0.99999] {
            for rho in [0.05, 0.1] {
                let ac = copies_for(Scheme::AvailableCopy, target, rho, 30).unwrap();
                let v = copies_for(Scheme::Voting, target, rho, 30).unwrap();
                assert!(
                    v >= 2 * ac - 1,
                    "target {target} rho {rho}: voting {v} vs ac {ac}"
                );
            }
        }
    }

    #[test]
    fn naive_needs_at_most_one_more_copy_than_available_copy() {
        for target in [0.999, 0.9999, 0.99999] {
            let ac = copies_for(Scheme::AvailableCopy, target, 0.05, 30).unwrap();
            let na = copies_for(Scheme::NaiveAvailableCopy, target, 0.05, 30).unwrap();
            assert!(na >= ac && na <= ac + 1, "target {target}: na {na} ac {ac}");
        }
    }

    #[test]
    fn unreachable_targets_return_none() {
        // With rho = 2 (sites mostly down), voting's availability *falls*
        // with n; a 99% target is hopeless.
        assert_eq!(copies_for(Scheme::Voting, 0.99, 2.0, 30), None);
    }

    #[test]
    fn equal_availability_comparison_is_much_steeper_for_voting() {
        // The §5 remark: at equal availability, voting's write cost gap
        // widens beyond the equal-n gap.
        let rho = 0.05;
        let sized = equal_availability_write_cost(0.99999, rho, NetModel::Multicast, 30).unwrap();
        let (v, ac, na) = (&sized[0], &sized[1], &sized[2]);
        assert_eq!(v.scheme, Scheme::Voting);
        assert!(v.copies > ac.copies);
        // Equal-n gap at the AC size…
        let equal_n_gap =
            costs(Scheme::Voting, NetModel::Multicast, ac.copies, rho).write - ac.costs.write;
        // …vs the equal-availability gap.
        let equal_a_gap = v.costs.write - ac.costs.write;
        assert!(
            equal_a_gap > equal_n_gap,
            "equal-availability gap {equal_a_gap} should exceed equal-n gap {equal_n_gap}"
        );
        assert!(na.costs.write < ac.costs.write);
        // Every sized scheme really meets the target.
        for s in &sized {
            assert!(s.achieved >= 0.99999, "{}: {}", s.scheme, s.achieved);
        }
    }

    #[test]
    #[should_panic(expected = "strictly between")]
    fn target_of_one_is_rejected() {
        let _ = copies_for(Scheme::Voting, 1.0, 0.05, 10);
    }
}
