//! Availability measurement by discrete-event simulation.

use crate::{Cluster, ClusterOptions};
use blockrep_sim::{Exponential, Scheduler, SimTime, TimeWeighted};
use blockrep_types::{BlockData, BlockIndex, DeviceConfig, FailureTracking, Scheme, SiteId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of one availability experiment.
///
/// Sites fail at rate `λ = rho` and repair at rate `µ = 1` (the analysis
/// depends only on the ratio). With `write_rate > 0`, writes from a random
/// available site arrive as a Poisson process — irrelevant to availability
/// under on-failure tracking, but it is what keeps was-available sets fresh
/// under [`FailureTracking::OnWrite`], making the ablation measurable.
#[derive(Debug, Clone)]
pub struct AvailabilityConfig {
    /// Consistency scheme under test.
    pub scheme: Scheme,
    /// Number of replica sites.
    pub n: usize,
    /// Failure-to-repair rate ratio `ρ = λ/µ`.
    pub rho: f64,
    /// Simulated time horizon, in mean-repair-time units.
    pub horizon: f64,
    /// RNG seed (experiments are exactly reproducible per seed).
    pub seed: u64,
    /// Was-available maintenance policy (available copy only).
    pub tracking: FailureTracking,
    /// Poisson rate of writes, 0 to disable the write process.
    pub write_rate: f64,
}

impl AvailabilityConfig {
    /// A standard experiment: on-failure tracking, no writes, a horizon of
    /// 100 000 mean repair times.
    pub fn new(scheme: Scheme, n: usize, rho: f64) -> Self {
        AvailabilityConfig {
            scheme,
            n,
            rho,
            horizon: 100_000.0,
            seed: 0x0B10_C4E9,
            tracking: FailureTracking::OnFailure,
            write_rate: 0.0,
        }
    }
}

/// The outcome of an availability experiment.
#[derive(Debug, Clone, Copy)]
pub struct AvailabilityEstimate {
    /// Measured fraction of simulated time the device was available.
    pub availability: f64,
    /// The paper's analytical value for the same scheme, `n`, and `ρ`.
    pub analytic: f64,
    /// Failure/repair events processed.
    pub events: u64,
    /// Total simulated time.
    pub sim_time: f64,
}

impl AvailabilityEstimate {
    /// Absolute difference between measurement and analysis.
    pub fn error(&self) -> f64 {
        (self.availability - self.analytic).abs()
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Fail(SiteId),
    RepairDone(SiteId),
    Write,
}

/// The analytical availability for a scheme at `(n, ρ)`, from
/// `blockrep-analysis`.
pub fn analytic_availability(scheme: Scheme, n: usize, rho: f64) -> f64 {
    match scheme {
        Scheme::Voting => blockrep_analysis::voting::availability(n, rho),
        Scheme::AvailableCopy => blockrep_analysis::available_copy::availability(n, rho),
        Scheme::NaiveAvailableCopy => blockrep_analysis::naive::availability(n, rho),
    }
}

/// Runs one experiment: Poisson failures/repairs drive the real cluster
/// implementation, and availability is the time-weighted mean of its own
/// [`Cluster::is_available`] predicate.
///
/// # Panics
///
/// Panics on degenerate parameters (`n == 0`, `rho <= 0`, `horizon <= 0`).
pub fn estimate(config: &AvailabilityConfig) -> AvailabilityEstimate {
    assert!(config.n >= 1, "at least one site");
    assert!(
        config.rho > 0.0,
        "rho must be positive (rho = 0 is trivially A = 1)"
    );
    assert!(config.horizon > 0.0, "horizon must be positive");
    let device = DeviceConfig::builder(config.scheme)
        .sites(config.n)
        .num_blocks(1)
        .block_size(8)
        .failure_tracking(config.tracking)
        .build()
        .expect("simulation device configuration is valid");
    let cluster = Cluster::new(device, ClusterOptions::default());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let fail_dist = Exponential::new(config.rho);
    let repair_dist = Exponential::new(1.0);
    let mut sched: Scheduler<Event> = Scheduler::new();
    for s in SiteId::all(config.n) {
        sched.schedule_after(fail_dist.sample(&mut rng), Event::Fail(s));
    }
    if config.write_rate > 0.0 {
        sched.schedule_after(
            Exponential::new(config.write_rate).sample(&mut rng),
            Event::Write,
        );
    }
    let mut avail = TimeWeighted::new(SimTime::ZERO, cluster.is_available());
    let horizon = SimTime::new(config.horizon);
    let mut events = 0u64;
    let mut fill = 0u8;
    while let Some(&next) = sched.peek_time().as_ref() {
        if next > horizon {
            break;
        }
        let (now, event) = sched.pop().expect("peeked event exists");
        events += 1;
        match event {
            Event::Fail(s) => {
                blockrep_obs::event!("sim.fail", t = now.as_f64(), site = s.as_u32());
                cluster.fail_site(s);
                sched.schedule_after(repair_dist.sample(&mut rng), Event::RepairDone(s));
            }
            Event::RepairDone(s) => {
                blockrep_obs::event!("sim.repair", t = now.as_f64(), site = s.as_u32());
                cluster.repair_site(s);
                sched.schedule_after(fail_dist.sample(&mut rng), Event::Fail(s));
            }
            Event::Write => {
                blockrep_obs::event!("sim.request", t = now.as_f64(), op = "write");
                if let Some(origin) = cluster.any_serving_site() {
                    fill = fill.wrapping_add(1);
                    let data = BlockData::from(vec![fill; 8]);
                    let _ = cluster.write(origin, BlockIndex::new(0), data);
                }
                sched.schedule_after(
                    Exponential::new(config.write_rate).sample(&mut rng),
                    Event::Write,
                );
            }
        }
        avail.record(now, cluster.is_available());
    }
    avail.finish(horizon);
    AvailabilityEstimate {
        availability: avail.mean(),
        analytic: analytic_availability(config.scheme, config.n, config.rho),
        events,
        sim_time: avail.total_time(),
    }
}

/// Runs `replications` independent experiments (different seeds) and
/// returns the per-replication availabilities as [`blockrep_sim::RunningStats`], from
/// which a confidence interval for the true availability follows.
///
/// # Examples
///
/// ```
/// use blockrep_core::simulate::availability::{replicate, AvailabilityConfig};
/// use blockrep_sim::Confidence;
/// use blockrep_types::Scheme;
///
/// let mut cfg = AvailabilityConfig::new(Scheme::Voting, 3, 0.3);
/// cfg.horizon = 8_000.0;
/// let stats = replicate(&cfg, 12);
/// let (lo, hi) = stats.confidence(Confidence::P99);
/// let analytic = blockrep_analysis::voting::availability(3, 0.3);
/// assert!(lo <= analytic && analytic <= hi);
/// ```
///
/// # Panics
///
/// Panics on degenerate parameters or zero replications.
pub fn replicate(config: &AvailabilityConfig, replications: u32) -> blockrep_sim::RunningStats {
    assert!(replications > 0, "at least one replication");
    let mut stats = blockrep_sim::RunningStats::new();
    for r in 0..replications {
        let mut cfg = config.clone();
        cfg.seed = config.seed ^ (r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        stats.push(estimate(&cfg).availability);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(scheme: Scheme, n: usize, rho: f64) -> AvailabilityEstimate {
        let mut cfg = AvailabilityConfig::new(scheme, n, rho);
        cfg.horizon = 60_000.0;
        estimate(&cfg)
    }

    #[test]
    fn voting_simulation_matches_equation_1() {
        for (n, rho) in [(3, 0.2), (5, 0.3)] {
            let est = run(Scheme::Voting, n, rho);
            assert!(
                est.error() < 0.01,
                "n={n} rho={rho}: measured {} analytic {}",
                est.availability,
                est.analytic
            );
        }
    }

    #[test]
    fn available_copy_simulation_matches_figure_7_chain() {
        for (n, rho) in [(2, 0.3), (3, 0.4)] {
            let est = run(Scheme::AvailableCopy, n, rho);
            assert!(
                est.error() < 0.01,
                "n={n} rho={rho}: measured {} analytic {}",
                est.availability,
                est.analytic
            );
        }
    }

    #[test]
    fn naive_simulation_matches_figure_8_chain() {
        for (n, rho) in [(2, 0.3), (3, 0.4)] {
            let est = run(Scheme::NaiveAvailableCopy, n, rho);
            assert!(
                est.error() < 0.01,
                "n={n} rho={rho}: measured {} analytic {}",
                est.availability,
                est.analytic
            );
        }
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let cfg = AvailabilityConfig {
            horizon: 2_000.0,
            ..AvailabilityConfig::new(Scheme::AvailableCopy, 3, 0.2)
        };
        let a = estimate(&cfg);
        let b = estimate(&cfg);
        assert_eq!(a.availability, b.availability);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn replications_give_covering_confidence_intervals() {
        use blockrep_sim::Confidence;
        let mut cfg = AvailabilityConfig::new(Scheme::AvailableCopy, 3, 0.4);
        cfg.horizon = 3_000.0;
        let stats = replicate(&cfg, 10);
        assert_eq!(stats.count(), 10);
        let (lo, hi) = stats.confidence(Confidence::P99);
        let analytic = analytic_availability(Scheme::AvailableCopy, 3, 0.4);
        assert!(
            lo <= analytic && analytic <= hi,
            "99% CI [{lo}, {hi}] misses analytic {analytic}"
        );
    }

    #[test]
    fn replications_use_distinct_seeds() {
        let mut cfg = AvailabilityConfig::new(Scheme::Voting, 3, 0.4);
        cfg.horizon = 1_000.0;
        let stats = replicate(&cfg, 6);
        // Distinct seeds -> nonzero spread (identical seeds would give 0).
        assert!(stats.variance() > 0.0);
    }

    #[test]
    fn on_write_tracking_sits_between_naive_and_on_failure() {
        // The ablation: with was-available sets refreshed only by writes,
        // availability cannot exceed the on-failure variant and cannot fall
        // below naive.
        let rho = 0.5; // stressed sites make the gap visible
        let base = AvailabilityConfig {
            horizon: 40_000.0,
            write_rate: 2.0,
            ..AvailabilityConfig::new(Scheme::AvailableCopy, 3, rho)
        };
        let on_failure = estimate(&base);
        let on_write = estimate(&AvailabilityConfig {
            tracking: FailureTracking::OnWrite,
            ..base.clone()
        });
        let naive = estimate(&AvailabilityConfig {
            scheme: Scheme::NaiveAvailableCopy,
            ..base.clone()
        });
        let slack = 0.01;
        assert!(
            on_write.availability <= on_failure.availability + slack,
            "on-write {} should not beat on-failure {}",
            on_write.availability,
            on_failure.availability
        );
        assert!(
            on_write.availability + slack >= naive.availability,
            "on-write {} should not fall below naive {}",
            on_write.availability,
            naive.availability
        );
    }
}
