//! Ablation: the was-available maintenance policy.
//!
//! The paper's §3.2 relaxation updates was-available sets only on writes
//! and repairs ("communication costs are minimized at the expense of some
//! small increase in recovery time"), while the §4 availability model
//! assumes exact last-to-fail knowledge (on-failure tracking). This bench
//! runs the availability DES under both policies — and under naive available
//! copy as the floor — quantifying the paper's "small increase".

use blockrep_core::simulate::availability::{estimate, AvailabilityConfig};
use blockrep_types::{FailureTracking, Scheme};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_tracking");
    g.sample_size(10);
    let base = AvailabilityConfig {
        horizon: 3_000.0,
        write_rate: 2.0,
        ..AvailabilityConfig::new(Scheme::AvailableCopy, 3, 0.5)
    };
    g.bench_function("on_failure_tracking", |b| {
        b.iter(|| black_box(estimate(&base)))
    });
    let on_write = AvailabilityConfig {
        tracking: FailureTracking::OnWrite,
        ..base.clone()
    };
    g.bench_function("on_write_tracking", |b| {
        b.iter(|| black_box(estimate(&on_write)))
    });
    let naive = AvailabilityConfig {
        scheme: Scheme::NaiveAvailableCopy,
        ..base.clone()
    };
    g.bench_function("naive_floor", |b| b.iter(|| black_box(estimate(&naive))));
    g.finish();

    // Print the ablation's availability numbers once, so `cargo bench`
    // output records the quantity being traded, not just the runtime.
    let long = |cfg: &AvailabilityConfig| {
        let mut cfg = cfg.clone();
        cfg.horizon = 60_000.0;
        estimate(&cfg).availability
    };
    println!(
        "\nablation @ n=3, rho=0.5, write_rate=2: on-failure {:.5}, on-write {:.5}, naive {:.5}",
        long(&base),
        long(&on_write),
        long(&naive)
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
