//! The **reliable device** of Carroll, Long & Pâris (ICDCS 1987): a block
//! device replicated by server processes on several sites, kept consistent
//! by one of three block-level protocols.
//!
//! # Architecture
//!
//! ```text
//!  unmodified file system (blockrep-fs)
//!          │  read_block / write_block          (BlockDevice trait)
//!          ▼
//!  ReliableDevice / DriverStub                  (device.rs — Figures 1–2)
//!          │  coordinated protocol operations
//!          ▼
//!  Cluster (deterministic) or LiveCluster (threads + channels)
//!          │  votes, write updates, version vectors, repairs
//!          ▼
//!  Replica per site: VersionedStore + site state + was-available set
//! ```
//!
//! The three consistency schemes of §3 are implemented against a common
//! [`backend::Backend`] abstraction, so **the same protocol code** runs over
//! the deterministic in-process cluster (used by tests, property tests and
//! the simulation harnesses) and over the live threaded cluster (server
//! processes exchanging messages over channels):
//!
//! * [`Scheme::Voting`](blockrep_types::Scheme::Voting) — weighted majority
//!   consensus voting with per-block version numbers. Block-level
//!   replication lets a repaired site rejoin with *zero* recovery traffic;
//!   stale blocks are caught lazily, by version comparison, when accessed
//!   (Figures 3–4).
//! * [`Scheme::AvailableCopy`](blockrep_types::Scheme::AvailableCopy) —
//!   write-all / read-local with *was-available sets* `W_s`; after a total
//!   failure the device returns to service once the closure `C*(W_s)` —
//!   which contains the last site(s) to fail — has recovered (Figure 5).
//! * [`Scheme::NaiveAvailableCopy`](blockrep_types::Scheme::NaiveAvailableCopy)
//!   — no failure bookkeeping at all; after a total failure, recovery waits
//!   for every site (Figure 6). The paper's algorithm of choice.
//!
//! Every high-level transmission is charged to a
//! [`TrafficCounter`](blockrep_net::TrafficCounter) exactly as §5 counts
//! them, so measured traffic is directly comparable with the closed forms in
//! [`blockrep_analysis::traffic`].
//!
//! # Examples
//!
//! ```
//! use blockrep_core::{Cluster, ClusterOptions};
//! use blockrep_types::{BlockData, BlockIndex, DeviceConfig, Scheme, SiteId};
//!
//! # fn main() -> Result<(), blockrep_types::DeviceError> {
//! let cfg = DeviceConfig::builder(Scheme::AvailableCopy)
//!     .sites(3)
//!     .num_blocks(4)
//!     .block_size(16)
//!     .build()?;
//! let cluster = Cluster::new(cfg, ClusterOptions::default());
//! let k = BlockIndex::new(1);
//!
//! cluster.write(SiteId::new(0), k, BlockData::from(vec![7; 16]))?;
//! cluster.fail_site(SiteId::new(0));
//! cluster.fail_site(SiteId::new(1));
//! // One copy left — still available under available copy.
//! assert_eq!(cluster.read(SiteId::new(2), k)?.as_slice()[0], 7);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod backend;
pub mod chaos;
mod cluster;
mod device;
pub mod fault;
mod live;
pub mod locks;
mod obs_hooks;
mod persist;
mod protocol;
mod replica;
pub mod scenario;
pub mod shard;
pub mod simulate;
mod tcp;
pub mod wire;

pub(crate) mod available_copy;
pub(crate) mod naive;
pub(crate) mod voting;

pub use backend::{
    Gather, RepairBlocks, RepairPayload, ScatterReplies, ScatterReply, ScatterRequest, ScatterSpec,
    WriteBatch,
};
pub use cluster::{Cluster, ClusterOptions};
pub use device::{DriverStub, ReliableDevice};
pub use live::LiveCluster;
pub use locks::{BlockLockTable, LeaseTable};
pub use replica::Replica;
pub use shard::{PlacementManifest, ShardSpec, ShardedDevice};
pub use tcp::TcpCluster;
