//! The `blockrep` binary. See [`blockrep_cli::commands::USAGE`].

fn main() {
    let parsed = match blockrep_cli::args::Parsed::parse(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("blockrep: {e}");
            eprintln!("{}", blockrep_cli::commands::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = blockrep_cli::commands::run(&parsed) {
        eprintln!("blockrep: {e}");
        eprintln!("{}", blockrep_cli::commands::USAGE);
        std::process::exit(2);
    }
}
