//! Block allocation bitmap.

use crate::layout::FsGeometry;
use crate::{FsError, FsResult};
use blockrep_storage::BlockDevice;
use blockrep_types::{BlockData, BlockIndex};

/// Allocator over the on-disk bitmap: one bit per device block, set = used.
/// Stateless — every operation reads and writes the bitmap blocks through
/// the device, so crashes of the *device's* sites never desynchronize it
/// from the data (within the paper's sequential, single-client model).
pub struct Bitmap<'a, D> {
    dev: &'a D,
    geo: &'a FsGeometry,
}

impl<'a, D: BlockDevice> Bitmap<'a, D> {
    /// Creates an allocator view over `dev`.
    pub fn new(dev: &'a D, geo: &'a FsGeometry) -> Self {
        Bitmap { dev, geo }
    }

    fn locate(&self, block: u64) -> (BlockIndex, usize, u8) {
        let bits_per_block = self.geo.block_size as u64 * 8;
        let bitmap_block = self.geo.bitmap_start + block / bits_per_block;
        let bit = block % bits_per_block;
        (
            BlockIndex::new(bitmap_block),
            (bit / 8) as usize,
            1u8 << (bit % 8),
        )
    }

    /// Whether `block` is marked used.
    pub fn is_used(&self, block: u64) -> FsResult<bool> {
        let (bb, byte, mask) = self.locate(block);
        let raw = self.dev.read_block(bb)?;
        Ok(raw.as_slice()[byte] & mask != 0)
    }

    /// Marks `block` used or free.
    pub fn set(&self, block: u64, used: bool) -> FsResult<()> {
        let (bb, byte, mask) = self.locate(block);
        let mut raw = self.dev.read_block(bb)?.as_slice().to_vec();
        if used {
            raw[byte] |= mask;
        } else {
            raw[byte] &= !mask;
        }
        self.dev.write_block(bb, BlockData::from(raw))?;
        Ok(())
    }

    /// Allocates one free data block (first fit from `data_start`), marks
    /// it used, zeroes it, and returns its index.
    ///
    /// # Errors
    ///
    /// [`FsError::NoSpace`] when every data block is taken.
    pub fn alloc(&self) -> FsResult<u64> {
        let bits_per_block = self.geo.block_size as u64 * 8;
        for bb in 0..self.geo.bitmap_blocks {
            let block_index = BlockIndex::new(self.geo.bitmap_start + bb);
            let raw = self.dev.read_block(block_index)?;
            let bytes = raw.as_slice();
            for (i, &byte) in bytes.iter().enumerate() {
                if byte == 0xFF {
                    continue;
                }
                for bit in 0..8 {
                    let candidate = bb * bits_per_block + (i as u64) * 8 + bit;
                    if candidate < self.geo.data_start || candidate >= self.geo.num_blocks {
                        continue;
                    }
                    if byte & (1 << bit) == 0 {
                        let mut updated = bytes.to_vec();
                        updated[i] |= 1 << bit;
                        self.dev
                            .write_block(block_index, BlockData::from(updated))?;
                        // Hand out zeroed blocks so fresh files/dirs read clean.
                        self.dev.write_block(
                            BlockIndex::new(candidate),
                            BlockData::zeroed(self.geo.block_size as usize),
                        )?;
                        return Ok(candidate);
                    }
                }
            }
        }
        Err(FsError::NoSpace)
    }

    /// Frees a previously allocated data block.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `block` lies in the data region.
    pub fn free(&self, block: u64) -> FsResult<()> {
        debug_assert!(
            block >= self.geo.data_start && block < self.geo.num_blocks,
            "freeing non-data block {block}"
        );
        self.set(block, false)
    }

    /// Number of free data blocks (for `statfs`-style reporting and tests).
    pub fn free_count(&self) -> FsResult<u64> {
        let mut free = 0;
        for block in self.geo.data_start..self.geo.num_blocks {
            if !self.is_used(block)? {
                free += 1;
            }
        }
        Ok(free)
    }

    /// Marks all metadata blocks (superblock, bitmap, inode table) used —
    /// called once at format time.
    pub fn reserve_metadata(&self) -> FsResult<()> {
        for block in 0..self.geo.data_start {
            self.set(block, true)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockrep_storage::MemStore;

    fn setup() -> (MemStore, FsGeometry) {
        let geo = FsGeometry::plan(128, 512).unwrap();
        (MemStore::new(128, 512), geo)
    }

    #[test]
    fn metadata_reservation_covers_prefix() {
        let (dev, geo) = setup();
        let bm = Bitmap::new(&dev, &geo);
        bm.reserve_metadata().unwrap();
        for block in 0..geo.data_start {
            assert!(bm.is_used(block).unwrap(), "block {block}");
        }
        assert!(!bm.is_used(geo.data_start).unwrap());
    }

    #[test]
    fn alloc_returns_distinct_zeroed_data_blocks() {
        let (dev, geo) = setup();
        let bm = Bitmap::new(&dev, &geo);
        bm.reserve_metadata().unwrap();
        let a = bm.alloc().unwrap();
        let b = bm.alloc().unwrap();
        assert_ne!(a, b);
        assert!(a >= geo.data_start && b >= geo.data_start);
        assert!(dev.read_block(BlockIndex::new(a)).unwrap().is_zeroed());
    }

    #[test]
    fn free_makes_block_reusable() {
        let (dev, geo) = setup();
        let bm = Bitmap::new(&dev, &geo);
        bm.reserve_metadata().unwrap();
        let a = bm.alloc().unwrap();
        bm.free(a).unwrap();
        let b = bm.alloc().unwrap();
        assert_eq!(a, b, "first-fit reuses the freed block");
    }

    #[test]
    fn exhaustion_reports_no_space() {
        let (dev, geo) = setup();
        let bm = Bitmap::new(&dev, &geo);
        bm.reserve_metadata().unwrap();
        let data_blocks = geo.num_blocks - geo.data_start;
        for _ in 0..data_blocks {
            bm.alloc().unwrap();
        }
        assert!(matches!(bm.alloc(), Err(FsError::NoSpace)));
        assert_eq!(bm.free_count().unwrap(), 0);
    }

    #[test]
    fn free_count_tracks_allocations() {
        let (dev, geo) = setup();
        let bm = Bitmap::new(&dev, &geo);
        bm.reserve_metadata().unwrap();
        let initial = bm.free_count().unwrap();
        bm.alloc().unwrap();
        bm.alloc().unwrap();
        assert_eq!(bm.free_count().unwrap(), initial - 2);
    }
}
