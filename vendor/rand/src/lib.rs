//! Offline stand-in for `rand` 0.9 covering the API blockrep uses.
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — not the
//! cryptographic generator of the real crate, but statistically strong
//! enough for the discrete-event simulations here (which assert empirical
//! means against closed forms with tight tolerances). The 0.9-era method
//! names are provided: [`Rng::random`], [`Rng::random_range`],
//! [`Rng::random_bool`] and [`SeedableRng::seed_from_u64`].

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a generator's raw output.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` by rejection, bias-free.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Largest multiple of `span` representable in 64 bits; values at or
    // above it would bias the modulus and are redrawn.
    let rem = (u64::MAX % span + 1) % span;
    let zone = 0u64.wrapping_sub(rem);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + uniform_below(rng, span) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    if start == 0 && end == <$t>::MAX {
                        return rng.next_u64() as $t;
                    }
                    let span = (end - start) as u64 + 1;
                    start + uniform_below(rng, span) as $t
                }
            }
        )*
    };
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing generator interface.
pub trait Rng {
    /// The raw output: one uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: xoshiro256++ (Blackman & Vigna), seeded via
    /// SplitMix64 so that nearby seeds give uncorrelated streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let s2 = s2 ^ s0;
            let s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            let s2 = s2 ^ t;
            let s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.random_range(2usize..7);
            assert!((2..7).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }
}
