//! Shared vocabulary types for `blockrep`, a reproduction of
//! *"Block-Level Consistency of Replicated Files"* (Carroll, Long & Pâris,
//! ICDCS 1987).
//!
//! The paper builds a **reliable device**: a block-structured device that an
//! unmodified file system can use like an ordinary disk, but whose blocks are
//! replicated by server processes on several *sites*. This crate holds the
//! small, dependency-free types that every other `blockrep` crate speaks:
//! site and block identifiers, per-block version numbers and version vectors,
//! site states (*failed* / *comatose* / *available*), voting weights, the
//! replication configuration, and the common error type.
//!
//! # Examples
//!
//! ```
//! use blockrep_types::{BlockIndex, SiteId, VersionVector};
//!
//! let site = SiteId::new(2);
//! let block = BlockIndex::new(7);
//! let mut vv = VersionVector::new(16);
//! vv.bump(block);
//! assert_eq!(vv.get(block).as_u64(), 1);
//! assert_eq!(format!("{site} owns {block}"), "s2 owns b7");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod config;
mod error;
mod ids;
mod state;
mod version;

pub use block::BlockData;
pub use config::{DeviceConfig, DeviceConfigBuilder, FailureTracking, Scheme, Weight};
pub use error::{DeviceError, DeviceResult};
pub use ids::{BlockIndex, SiteId};
pub use state::SiteState;
pub use version::{VersionNumber, VersionVector};
