//! The flight recorder fires on chaos failures.
//!
//! When the chaos oracle trips, the runner replays the shrunk schedule with
//! the flight recorder armed and dumps the causal trace as Chrome
//! trace-event JSON — the post-mortem that shows *where in the protocol*
//! the failing schedule spent its time. This regression pins that path:
//! a (synthetic) seeded oracle failure must produce a dump that the
//! schema validator — and therefore the Chrome trace viewer — accepts.
//!
//! Lives alone in its own binary: the dump path flips the process-global
//! tracing flag while it replays.

use blockrep::core::chaos::{self, ChaosFailure};
use blockrep::obs::trace;
use blockrep::types::Scheme;
use blockrep_bench::trace_bench::validate_chrome_trace;

#[test]
fn chaos_failure_dump_is_valid_chrome_trace_json() {
    // A real oracle failure would require a protocol bug; synthesize one
    // from a generated script so the dump path (regenerate geometry from
    // the seed, replay the schedule traced, serialize the ring) runs
    // exactly as it would post-mortem.
    let seed = 11;
    let script = chaos::generate(seed, Scheme::Voting, 24);
    assert!(!script.steps.is_empty());
    let failure = ChaosFailure {
        seed,
        scheme: Scheme::Voting,
        steps: script.steps,
        journaled: false,
        leases: false,
        detail: "synthetic oracle violation (seeded regression)".into(),
    };

    let was_tracing = trace::enabled();
    let dump = chaos::trace_failure(&failure);
    assert_eq!(
        trace::enabled(),
        was_tracing,
        "dumping must restore the tracing flag"
    );

    validate_chrome_trace(&dump).expect("chaos dump must be valid Chrome trace JSON");
    // The replay actually recorded protocol work, not an empty ring.
    assert!(
        dump.contains("\"cat\":\"blockrep\""),
        "dump carries span events: {}",
        &dump[..dump.len().min(200)]
    );
    assert!(
        dump.contains("\"displayTimeUnit\""),
        "dump carries viewer hints"
    );
}
