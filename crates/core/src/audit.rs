//! Protocol invariant auditing.
//!
//! [`check_invariants`] inspects a whole cluster and verifies the structural
//! invariants each scheme maintains — the properties the §4 analysis quietly
//! assumes. The property tests call it after *every* scripted action, so a
//! protocol bug surfaces at the exact step that introduced it rather than at
//! the read that later observes it.

use crate::backend::Backend;
use blockrep_types::{BlockIndex, FailureTracking, Scheme, SiteId, SiteState, VersionVector};
use core::fmt;

/// A violated protocol invariant, with enough context to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant failed.
    pub rule: &'static str,
    /// Human-readable specifics (sites, blocks, versions involved).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.rule, self.detail)
    }
}

fn version_vectors<B: Backend + ?Sized>(b: &B) -> Vec<(SiteId, SiteState, VersionVector)> {
    b.config()
        .site_ids()
        .map(|s| {
            let state = b.local_state(s);
            let vv = b
                .version_vector(s, s)
                .expect("a site can always read its own version vector");
            (s, state, vv)
        })
        .collect()
}

/// Audits every protocol invariant appropriate to the cluster's scheme.
/// Returns all violations found (empty = healthy).
pub fn check_invariants<B: Backend + ?Sized>(b: &B) -> Vec<Violation> {
    let mut violations = Vec::new();
    let sites = version_vectors(b);
    let scheme = b.config().scheme();

    // Shared invariant: data is a function of (block, version) — two sites
    // holding the same version of a block must hold the same bytes.
    for k in BlockIndex::all(b.config().num_blocks()) {
        for (i, (s_a, _, vv_a)) in sites.iter().enumerate() {
            for (s_b, _, vv_b) in &sites[i + 1..] {
                if vv_a.get(k) == vv_b.get(k) && b.read_local(*s_a, k) != b.read_local(*s_b, k) {
                    violations.push(Violation {
                        rule: "version-determines-data",
                        detail: format!(
                            "{s_a} and {s_b} both hold {} of {k} with different bytes",
                            vv_a.get(k)
                        ),
                    });
                }
            }
        }
    }

    match scheme {
        Scheme::Voting => audit_voting(b, &sites, &mut violations),
        Scheme::AvailableCopy => audit_available_copy(b, &sites, &mut violations),
        Scheme::NaiveAvailableCopy => audit_naive(&sites, &mut violations),
    }
    violations
}

fn audit_voting<B: Backend + ?Sized>(
    b: &B,
    sites: &[(SiteId, SiteState, VersionVector)],
    violations: &mut Vec<Violation>,
) {
    // Voting never uses the comatose state.
    for (s, state, _) in sites {
        if *state == SiteState::Comatose {
            violations.push(Violation {
                rule: "voting-has-no-comatose-state",
                detail: format!("{s} is comatose"),
            });
        }
    }
    // Every write quorum intersection: for each block, the sites holding
    // the maximum version must jointly hold at least a write quorum of
    // weight *among all sites* — otherwise a past write committed without
    // quorum.
    let cfg = b.config();
    for k in BlockIndex::all(cfg.num_blocks()) {
        let v_max = sites
            .iter()
            .map(|(_, _, vv)| vv.get(k))
            .max()
            .expect("nonempty");
        if v_max.as_u64() == 0 {
            continue; // never written
        }
        let holders: Vec<SiteId> = sites
            .iter()
            .filter(|(_, _, vv)| vv.get(k) == v_max)
            .map(|(s, _, _)| *s)
            .collect();
        let weight = crate::backend::weight_of(cfg, &holders);
        if weight < cfg.write_quorum() {
            violations.push(Violation {
                rule: "current-version-holds-write-quorum",
                detail: format!(
                    "{k}: version {v_max} held by {holders:?} with weight {weight} < quorum {}",
                    cfg.write_quorum()
                ),
            });
        }
    }
}

fn audit_available_copy<B: Backend + ?Sized>(
    b: &B,
    sites: &[(SiteId, SiteState, VersionVector)],
    violations: &mut Vec<Violation>,
) {
    audit_available_family(sites, violations);
    // The safety property behind Figure 5's recovery: for every available
    // site s, the closure C*(W_s) — computed over the sites' current
    // was-available sets — must cover every available site, because any of
    // them could turn out to be the last to fail. (Definition 3.1 allows an
    // individual W to lag after a repair; the closure absorbs the slack.)
    if b.config().failure_tracking() == FailureTracking::OnFailure {
        let available: std::collections::BTreeSet<SiteId> = sites
            .iter()
            .filter(|(_, st, _)| *st == SiteState::Available)
            .map(|(s, _, _)| *s)
            .collect();
        for &s in &available {
            let mut closure = b.was_available(s, s).expect("own W is local");
            closure.insert(s);
            loop {
                let mut grown = closure.clone();
                for &u in &closure {
                    grown.extend(b.was_available(u, u).expect("own W is local"));
                }
                if grown == closure {
                    break;
                }
                closure = grown;
            }
            if !available.is_subset(&closure) {
                violations.push(Violation {
                    rule: "closure-covers-available-set",
                    detail: format!("C*(W_{s}) = {closure:?} misses part of {available:?}"),
                });
            }
        }
    }
}

fn audit_naive(sites: &[(SiteId, SiteState, VersionVector)], violations: &mut Vec<Violation>) {
    audit_available_family(sites, violations);
}

/// Invariants shared by both available copy schemes.
fn audit_available_family(
    sites: &[(SiteId, SiteState, VersionVector)],
    violations: &mut Vec<Violation>,
) {
    // 1. All available sites hold identical version vectors (every write
    //    reached every available copy).
    let available: Vec<&(SiteId, SiteState, VersionVector)> = sites
        .iter()
        .filter(|(_, st, _)| *st == SiteState::Available)
        .collect();
    if let Some((first, _, first_vv)) = available.first().map(|t| (&t.0, &t.1, &t.2)) {
        for (s, _, vv) in &available[1..] {
            if vv != first_vv {
                violations.push(Violation {
                    rule: "available-copies-identical",
                    detail: format!("{s} has {vv}, {first} has {first_vv}"),
                });
            }
        }
        // 2. Every non-available site is dominated by the available line —
        //    stale copies are past states, never divergent ones.
        for (s, st, vv) in sites {
            if *st != SiteState::Available && !first_vv.dominates(vv) {
                violations.push(Violation {
                    rule: "stale-copies-are-past-states",
                    detail: format!("{st} {s} has {vv}, not dominated by available {first_vv}"),
                });
            }
        }
    }
    // 3. All version vectors form a dominance chain (pairwise comparable).
    for (i, (s_a, _, vv_a)) in sites.iter().enumerate() {
        for (s_b, _, vv_b) in &sites[i + 1..] {
            if !vv_a.dominates(vv_b) && !vv_b.dominates(vv_a) {
                violations.push(Violation {
                    rule: "version-vectors-form-a-chain",
                    detail: format!("{s_a} ({vv_a}) and {s_b} ({vv_b}) are incomparable"),
                });
            }
        }
    }
}

/// Convenience: audits and panics with a readable report on any violation.
///
/// # Panics
///
/// Panics if [`check_invariants`] reports anything.
pub fn assert_invariants<B: Backend + ?Sized>(b: &B) {
    let violations = check_invariants(b);
    assert!(
        violations.is_empty(),
        "protocol invariants violated:\n{}",
        violations
            .iter()
            .map(|v| format!("  - {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, ClusterOptions};
    use blockrep_types::{BlockData, DeviceConfig};

    fn cluster(scheme: Scheme) -> Cluster {
        let cfg = DeviceConfig::builder(scheme)
            .sites(3)
            .num_blocks(4)
            .block_size(8)
            .build()
            .unwrap();
        Cluster::new(cfg, ClusterOptions::default())
    }

    fn s(i: u32) -> SiteId {
        SiteId::new(i)
    }

    #[test]
    fn fresh_clusters_are_clean() {
        for scheme in Scheme::ALL {
            assert_invariants(&cluster(scheme));
        }
    }

    #[test]
    fn clusters_stay_clean_through_failures_and_repairs() {
        for scheme in Scheme::ALL {
            let c = cluster(scheme);
            let k = BlockIndex::new(0);
            c.write(s(0), k, BlockData::from(vec![1; 8])).unwrap();
            assert_invariants(&c);
            c.fail_site(s(1));
            assert_invariants(&c);
            c.write(s(0), k, BlockData::from(vec![2; 8])).unwrap();
            assert_invariants(&c);
            c.repair_site(s(1));
            assert_invariants(&c);
        }
    }

    #[test]
    fn clean_through_total_failure() {
        for scheme in [Scheme::AvailableCopy, Scheme::NaiveAvailableCopy] {
            let c = cluster(scheme);
            c.write(s(0), BlockIndex::new(1), BlockData::from(vec![3; 8]))
                .unwrap();
            for i in [2, 1, 0] {
                c.fail_site(s(i));
                assert_invariants(&c);
            }
            for i in [1, 2, 0] {
                c.repair_site(s(i));
                assert_invariants(&c);
            }
        }
    }

    #[test]
    fn detector_actually_detects() {
        // Sanity-check the auditor by constructing a sick cluster: two
        // voting sites with a "committed" version held by a minority.
        let cfg = DeviceConfig::builder(Scheme::Voting)
            .sites(3)
            .num_blocks(1)
            .block_size(8)
            .build()
            .unwrap();
        let c = Cluster::new(cfg, ClusterOptions::default());
        // Bypass the protocol: install a version on one site only, via the
        // backend trait.
        use crate::backend::Backend as _;
        c.apply_write(
            s(0),
            s(0),
            BlockIndex::new(0),
            &BlockData::from(vec![9; 8]),
            blockrep_types::VersionNumber::new(5),
        );
        let violations = check_invariants(&c);
        assert!(
            violations
                .iter()
                .any(|v| v.rule == "current-version-holds-write-quorum"),
            "expected a quorum violation, got {violations:?}"
        );
    }

    #[test]
    fn violation_displays_readably() {
        let v = Violation {
            rule: "example-rule",
            detail: "something specific".into(),
        };
        assert_eq!(v.to_string(), "example-rule: something specific");
    }
}
