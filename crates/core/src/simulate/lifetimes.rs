//! MTTF / MTTR measurement by episodic simulation.
//!
//! Cross-checks the transient analysis in `blockrep_analysis::mttf`: each
//! episode starts a fresh cluster with every copy up, drives Poisson
//! failures and repairs through the real protocol implementation until the
//! device loses availability (one MTTF sample), then keeps going until
//! service resumes (one MTTR sample).

use crate::{Cluster, ClusterOptions};
use blockrep_sim::{Exponential, RunningStats, Samples, Scheduler, SimTime};
use blockrep_types::{DeviceConfig, Scheme, SiteId, SiteState};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of a lifetime experiment.
#[derive(Debug, Clone)]
pub struct LifetimeConfig {
    /// Consistency scheme under test.
    pub scheme: Scheme,
    /// Number of replica sites.
    pub n: usize,
    /// Failure-to-repair rate ratio `ρ = λ/µ`.
    pub rho: f64,
    /// Number of fail/recover episodes to sample.
    pub episodes: u32,
    /// RNG seed.
    pub seed: u64,
}

impl LifetimeConfig {
    /// A standard experiment with 400 episodes.
    pub fn new(scheme: Scheme, n: usize, rho: f64) -> Self {
        LifetimeConfig {
            scheme,
            n,
            rho,
            episodes: 400,
            seed: 0x11FE,
        }
    }
}

/// Measured lifetimes with their analytical counterparts.
#[derive(Debug, Clone)]
pub struct LifetimeEstimate {
    /// Measured mean time to (un)availability, from all-up.
    pub mttf: RunningStats,
    /// Measured mean time back to availability.
    pub mttr: RunningStats,
    /// The full distribution of restoration times, for percentile queries
    /// (§4.4 discusses repair-time *distributions*, not just means).
    pub mttr_samples: Samples,
    /// Analytical MTTF from the scheme's Markov chain.
    pub analytic_mttf: f64,
    /// Analytical MTTR (available copy family only; voting re-enters
    /// service from varying states, so no single closed form applies).
    pub analytic_mttr: Option<f64>,
}

/// The analytic MTTF for a scheme at `(n, ρ)`.
pub fn analytic_mttf(scheme: Scheme, n: usize, rho: f64) -> f64 {
    match scheme {
        Scheme::Voting => blockrep_analysis::mttf::voting(n, rho),
        Scheme::AvailableCopy => blockrep_analysis::mttf::available_copy(n, rho),
        Scheme::NaiveAvailableCopy => blockrep_analysis::mttf::naive(n, rho),
    }
}

/// The analytic MTTR, where defined.
pub fn analytic_mttr(scheme: Scheme, n: usize, rho: f64) -> Option<f64> {
    match scheme {
        Scheme::Voting => None,
        Scheme::AvailableCopy => Some(blockrep_analysis::mttf::mttr_available_copy(n, rho)),
        Scheme::NaiveAvailableCopy => Some(blockrep_analysis::mttf::mttr_naive(n, rho)),
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Fail(SiteId),
    RepairDone(SiteId),
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics on degenerate parameters (`n == 0`, `rho <= 0`, zero episodes).
pub fn measure(config: &LifetimeConfig) -> LifetimeEstimate {
    assert!(config.n >= 1 && config.rho > 0.0 && config.episodes > 0);
    let device = DeviceConfig::builder(config.scheme)
        .sites(config.n)
        .num_blocks(1)
        .block_size(8)
        .build()
        .expect("simulation device configuration is valid");
    let fail_dist = Exponential::new(config.rho);
    let repair_dist = Exponential::new(1.0);
    let mut mttf = RunningStats::new();
    let mut mttr = RunningStats::new();
    let mut mttr_samples = Samples::new();
    for episode in 0..config.episodes {
        let mut rng =
            StdRng::seed_from_u64(config.seed ^ (episode as u64).wrapping_mul(0x9E37_79B9));
        let cluster = Cluster::new(device.clone(), ClusterOptions::default());
        let mut sched: Scheduler<Event> = Scheduler::new();
        for s in SiteId::all(config.n) {
            sched.schedule_after(fail_dist.sample(&mut rng), Event::Fail(s));
        }
        let mut failed_at: Option<SimTime> = None;
        loop {
            let (now, event) = sched.pop().expect("failure/repair processes never drain");
            match event {
                Event::Fail(s) => {
                    cluster.fail_site(s);
                    sched.schedule_after(repair_dist.sample(&mut rng), Event::RepairDone(s));
                }
                Event::RepairDone(s) => {
                    cluster.repair_site(s);
                    sched.schedule_after(fail_dist.sample(&mut rng), Event::Fail(s));
                }
            }
            match failed_at {
                None => {
                    if !cluster.is_available() {
                        mttf.push(now.as_f64());
                        failed_at = Some(now);
                    }
                }
                Some(start) => {
                    if cluster.is_available() {
                        let down_for = (now - start).as_f64();
                        mttr.push(down_for);
                        mttr_samples.push(down_for);
                        break;
                    }
                }
            }
        }
        // Drain the cluster: every site in a defined state (nothing to do —
        // the cluster is dropped with the episode).
        let _ = cluster.site_state(SiteId::new(0)) == SiteState::Available;
    }
    LifetimeEstimate {
        mttf,
        mttr,
        mttr_samples,
        analytic_mttf: analytic_mttf(config.scheme, config.n, config.rho),
        analytic_mttr: analytic_mttr(config.scheme, config.n, config.rho),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(scheme: Scheme, n: usize, rho: f64) -> LifetimeEstimate {
        let mut cfg = LifetimeConfig::new(scheme, n, rho);
        cfg.episodes = 600;
        measure(&cfg)
    }

    fn assert_close(measured: f64, analytic: f64, rel: f64, what: &str) {
        let err = (measured - analytic).abs() / analytic;
        assert!(
            err < rel,
            "{what}: measured {measured}, analytic {analytic} (rel err {err:.3})"
        );
    }

    #[test]
    fn voting_mttf_matches_chain() {
        let est = run(Scheme::Voting, 3, 0.4);
        assert_close(est.mttf.mean(), est.analytic_mttf, 0.15, "voting mttf");
    }

    #[test]
    fn available_copy_lifetimes_match_chain() {
        let est = run(Scheme::AvailableCopy, 3, 0.5);
        assert_close(est.mttf.mean(), est.analytic_mttf, 0.15, "ac mttf");
        assert_close(est.mttr.mean(), est.analytic_mttr.unwrap(), 0.15, "ac mttr");
    }

    #[test]
    fn naive_lifetimes_match_chain() {
        let est = run(Scheme::NaiveAvailableCopy, 3, 0.5);
        assert_close(est.mttf.mean(), est.analytic_mttf, 0.15, "naive mttf");
        assert_close(
            est.mttr.mean(),
            est.analytic_mttr.unwrap(),
            0.15,
            "naive mttr",
        );
    }

    #[test]
    fn mttr_percentiles_are_ordered_and_cover_the_mean() {
        let mut est = run(Scheme::NaiveAvailableCopy, 3, 0.5);
        let p50 = est.mttr_samples.percentile(50.0);
        let p99 = est.mttr_samples.percentile(99.0);
        assert!(p50 <= p99);
        assert!(est.mttr_samples.min() <= est.mttr.mean());
        assert!(est.mttr.mean() <= est.mttr_samples.max());
        // Restoration times are heavily right-skewed: the mean sits above
        // the median (waiting for all n copies has a long tail).
        assert!(est.mttr.mean() > p50 * 0.8);
    }

    #[test]
    fn measured_naive_mttr_exceeds_available_copy() {
        let ac = run(Scheme::AvailableCopy, 3, 0.6);
        let na = run(Scheme::NaiveAvailableCopy, 3, 0.6);
        assert!(
            na.mttr.mean() > ac.mttr.mean(),
            "naive {} vs ac {}",
            na.mttr.mean(),
            ac.mttr.mean()
        );
        // While their failure behaviour is statistically the same.
        let rel = (na.mttf.mean() - ac.mttf.mean()).abs() / ac.mttf.mean();
        assert!(rel < 0.2, "mttf should agree, rel err {rel}");
    }
}
