//! `fsck`: offline consistency checking of an on-disk file system image.
//!
//! Walks the directory tree from the root and cross-checks everything
//! against the allocation structures: every reachable inode is valid and
//! referenced exactly once, every reachable block is marked used exactly
//! once, and — conversely — nothing marked used is unreachable (leak) and
//! no used inode is orphaned. On a replicated device this doubles as an
//! end-to-end recovery check: after arbitrary crash/repair schedules the
//! image must still be perfectly consistent (the integration tests do
//! exactly that).

use crate::bitmap::Bitmap;
use crate::inode::{InodeKind, InodeTable};
use crate::layout::{DIRECT_POINTERS, DIRENT_SIZE};
use crate::{FileSystem, FsResult};
use blockrep_storage::BlockDevice;
use blockrep_types::BlockIndex;
use bytes::Buf;
use core::fmt;
use std::collections::BTreeMap;

/// One inconsistency found by [`FileSystem::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckProblem {
    /// Which consistency rule is violated.
    pub rule: &'static str,
    /// Specifics (inodes, blocks, paths).
    pub detail: String,
}

impl fmt::Display for FsckProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.rule, self.detail)
    }
}

/// The result of a consistency check.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// All problems found (empty = consistent).
    pub problems: Vec<FsckProblem>,
    /// Regular files reachable from the root.
    pub files: u64,
    /// Directories reachable from the root (including the root).
    pub directories: u64,
    /// Data blocks referenced by reachable inodes.
    pub used_blocks: u64,
}

impl FsckReport {
    /// Whether the image is fully consistent.
    pub fn is_clean(&self) -> bool {
        self.problems.is_empty()
    }

    fn problem(&mut self, rule: &'static str, detail: impl Into<String>) {
        self.problems.push(FsckProblem {
            rule,
            detail: detail.into(),
        });
    }
}

impl<D: BlockDevice> FileSystem<D> {
    /// Checks the whole on-disk image for structural consistency.
    ///
    /// # Errors
    ///
    /// Propagates device errors; inconsistencies are *reported*, not
    /// errored.
    ///
    /// # Examples
    ///
    /// ```
    /// use blockrep_fs::FileSystem;
    /// use blockrep_storage::MemStore;
    ///
    /// # fn main() -> Result<(), blockrep_fs::FsError> {
    /// let fs = FileSystem::format(MemStore::new(128, 512))?;
    /// fs.mkdir("/d")?;
    /// fs.write_file("/d/f", b"data")?;
    /// let report = fs.check()?;
    /// assert!(report.is_clean());
    /// assert_eq!(report.files, 1);
    /// assert_eq!(report.directories, 2); // root + /d
    /// # Ok(())
    /// # }
    /// ```
    pub fn check(&self) -> FsResult<FsckReport> {
        let _g = self.lock.lock();
        let mut report = FsckReport::default();
        let inodes = InodeTable::new(&self.dev, &self.geo);
        let bitmap = Bitmap::new(&self.dev, &self.geo);

        // Pass 1: walk the tree, counting references to inodes and blocks.
        let mut ino_refs: BTreeMap<u32, u64> = BTreeMap::new();
        let mut block_refs: BTreeMap<u64, u64> = BTreeMap::new();
        let mut queue = vec![(crate::layout::ROOT_INO, "/".to_string())];
        *ino_refs.entry(crate::layout::ROOT_INO).or_default() += 1;
        while let Some((ino, path)) = queue.pop() {
            let node = inodes.read(ino)?;
            match node.kind {
                InodeKind::Free => {
                    report.problem(
                        "entry-points-at-free-inode",
                        format!("{path} -> inode {ino}"),
                    );
                    continue;
                }
                InodeKind::File => report.files += 1,
                InodeKind::Dir => report.directories += 1,
            }
            if node.size > self.geo.max_file_size() {
                report.problem(
                    "size-exceeds-maximum",
                    format!("{path}: {} > {}", node.size, self.geo.max_file_size()),
                );
            }
            if node.kind == InodeKind::Dir && node.size % DIRENT_SIZE as u64 != 0 {
                report.problem(
                    "directory-size-misaligned",
                    format!("{path}: size {}", node.size),
                );
            }
            // Blocks referenced by this inode.
            let mut refer = |report: &mut FsckReport, block: u64, what: &str| {
                if block < self.geo.data_start || block >= self.geo.num_blocks {
                    report.problem(
                        "pointer-outside-data-region",
                        format!("{path}: {what} -> block {block}"),
                    );
                } else {
                    *block_refs.entry(block).or_default() += 1;
                }
            };
            for (i, &p) in node.direct.iter().enumerate() {
                if p != 0 {
                    refer(&mut report, p as u64, &format!("direct[{i}]"));
                }
            }
            if node.indirect != 0 {
                refer(&mut report, node.indirect as u64, "indirect");
                if (node.indirect as u64) >= self.geo.data_start
                    && (node.indirect as u64) < self.geo.num_blocks
                {
                    let raw = self.dev.read_block(BlockIndex::new(node.indirect as u64))?;
                    let mut slice = raw.as_slice();
                    let mut i = DIRECT_POINTERS;
                    while slice.len() >= 4 {
                        let p = slice.get_u32_le();
                        if p != 0 {
                            refer(&mut report, p as u64, &format!("indirect[{i}]"));
                        }
                        i += 1;
                    }
                }
            }
            // Recurse into directory entries.
            if node.kind == InodeKind::Dir {
                for entry in self.entries_of(ino)? {
                    if entry.ino == 0 || entry.ino > self.geo.inode_count {
                        report.problem(
                            "entry-inode-out-of-range",
                            format!("{path}{} -> {}", entry.name, entry.ino),
                        );
                        continue;
                    }
                    *ino_refs.entry(entry.ino).or_default() += 1;
                    let child_path = if path == "/" {
                        format!("/{}", entry.name)
                    } else {
                        format!("{path}/{}", entry.name)
                    };
                    queue.push((entry.ino, child_path));
                }
            }
        }
        report.used_blocks = block_refs.len() as u64;

        // Pass 2: cross-links (an inode or block referenced twice).
        for (&ino, &count) in &ino_refs {
            if count > 1 {
                report.problem(
                    "inode-referenced-twice",
                    format!("inode {ino} ({count} references)"),
                );
            }
        }
        for (&block, &count) in &block_refs {
            if count > 1 {
                report.problem(
                    "block-cross-linked",
                    format!("block {block} ({count} references)"),
                );
            }
        }

        // Pass 3: the bitmap must match the reference map exactly.
        for block in 0..self.geo.data_start {
            if !bitmap.is_used(block)? {
                report.problem("metadata-block-not-reserved", format!("block {block}"));
            }
        }
        for block in self.geo.data_start..self.geo.num_blocks {
            let used = bitmap.is_used(block)?;
            let referenced = block_refs.contains_key(&block);
            match (used, referenced) {
                (true, false) => report.problem(
                    "block-leaked",
                    format!("block {block} used but unreachable"),
                ),
                (false, true) => {
                    report.problem("block-in-use-but-free-in-bitmap", format!("block {block}"))
                }
                _ => {}
            }
        }

        // Pass 4: orphaned inodes (allocated but unreachable).
        for ino in 1..=self.geo.inode_count {
            let allocated = inodes.read(ino)?.kind != InodeKind::Free;
            let reachable = ino_refs.contains_key(&ino);
            if allocated && !reachable {
                report.problem("inode-orphaned", format!("inode {ino}"));
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockrep_storage::MemStore;
    use blockrep_types::BlockData;

    fn populated() -> FileSystem<MemStore> {
        let fs = FileSystem::format(MemStore::new(256, 512)).unwrap();
        fs.mkdir("/a").unwrap();
        fs.mkdir("/a/b").unwrap();
        fs.write_file("/a/b/deep", &vec![1u8; 9000]).unwrap();
        fs.write_file("/top", b"x").unwrap();
        fs.remove_file("/top").unwrap();
        fs.write_file("/top2", b"y").unwrap();
        fs
    }

    #[test]
    fn healthy_images_are_clean() {
        let fs = populated();
        let report = fs.check().unwrap();
        assert!(report.is_clean(), "{:?}", report.problems);
        assert_eq!(report.files, 2);
        assert_eq!(report.directories, 3);
        assert!(report.used_blocks > 18, "9000 bytes span many blocks");
    }

    #[test]
    fn fresh_image_is_clean_and_empty() {
        let fs = FileSystem::format(MemStore::new(64, 512)).unwrap();
        let report = fs.check().unwrap();
        assert!(report.is_clean());
        assert_eq!(
            (report.files, report.directories, report.used_blocks),
            (0, 1, 0)
        );
    }

    #[test]
    fn detects_leaked_block() {
        let fs = populated();
        // Corrupt: mark a free data block used behind the FS's back.
        {
            let bitmap = Bitmap::new(&fs.dev, &fs.geo);
            let victim = (fs.geo.data_start..fs.geo.num_blocks)
                .find(|&b| !bitmap.is_used(b).unwrap())
                .unwrap();
            bitmap.set(victim, true).unwrap();
        }
        let report = fs.check().unwrap();
        assert!(
            report.problems.iter().any(|p| p.rule == "block-leaked"),
            "{report:?}"
        );
    }

    #[test]
    fn detects_block_in_use_but_free() {
        let fs = populated();
        {
            let bitmap = Bitmap::new(&fs.dev, &fs.geo);
            // Find a block actually used by /top2 via the report, then free it.
            let ino_table = InodeTable::new(&fs.dev, &fs.geo);
            let mut block = 0;
            for ino in 1..=fs.geo.inode_count {
                let node = ino_table.read(ino).unwrap();
                if node.kind == InodeKind::File && node.direct[0] != 0 {
                    block = node.direct[0] as u64;
                }
            }
            assert_ne!(block, 0);
            bitmap.set(block, false).unwrap();
        }
        let report = fs.check().unwrap();
        assert!(
            report
                .problems
                .iter()
                .any(|p| p.rule == "block-in-use-but-free-in-bitmap"),
            "{report:?}"
        );
    }

    #[test]
    fn detects_orphaned_inode() {
        let fs = populated();
        {
            let inodes = InodeTable::new(&fs.dev, &fs.geo);
            inodes.alloc(InodeKind::File).unwrap(); // allocated, never linked
        }
        let report = fs.check().unwrap();
        assert!(
            report.problems.iter().any(|p| p.rule == "inode-orphaned"),
            "{report:?}"
        );
    }

    #[test]
    fn detects_dangling_directory_entry() {
        let fs = populated();
        {
            // Free /top2's inode directly, leaving the dirent dangling.
            let inodes = InodeTable::new(&fs.dev, &fs.geo);
            for ino in (1..=fs.geo.inode_count).rev() {
                let node = inodes.read(ino).unwrap();
                if node.kind == InodeKind::File && node.size == 1 {
                    inodes.free(ino).unwrap();
                    break;
                }
            }
        }
        let report = fs.check().unwrap();
        assert!(
            report
                .problems
                .iter()
                .any(|p| p.rule == "entry-points-at-free-inode"),
            "{report:?}"
        );
        // The file's blocks are now leaked too.
        assert!(report.problems.iter().any(|p| p.rule == "block-leaked"));
    }

    #[test]
    fn detects_wild_pointer() {
        let fs = populated();
        {
            // Point an inode's direct[1] at the superblock.
            let inodes = InodeTable::new(&fs.dev, &fs.geo);
            for ino in 1..=fs.geo.inode_count {
                let mut node = inodes.read(ino).unwrap();
                if node.kind == InodeKind::File {
                    node.direct[1] = 0; // ensure deterministic slot…
                    node.direct[2] = 0;
                    node.direct[1] = u32::MAX; // way out of range
                    inodes.write(ino, &node).unwrap();
                    break;
                }
            }
        }
        let report = fs.check().unwrap();
        assert!(
            report
                .problems
                .iter()
                .any(|p| p.rule == "pointer-outside-data-region"),
            "{report:?}"
        );
    }

    #[test]
    fn clean_after_heavy_churn() {
        let fs = FileSystem::format(MemStore::new(512, 512)).unwrap();
        for round in 0..5 {
            for i in 0..10 {
                fs.write_file(&format!("/f{i}"), &vec![round as u8; 600 * (i + 1)])
                    .unwrap();
            }
            for i in (0..10).step_by(2) {
                fs.remove_file(&format!("/f{i}")).unwrap();
            }
            for i in (1..10).step_by(2) {
                fs.truncate(&format!("/f{i}"), 100).unwrap();
            }
        }
        let report = fs.check().unwrap();
        assert!(report.is_clean(), "{:?}", report.problems);
    }

    #[test]
    fn problem_display_is_readable() {
        let p = FsckProblem {
            rule: "block-leaked",
            detail: "block 77".into(),
        };
        assert_eq!(p.to_string(), "block-leaked: block 77");
        let _ = BlockData::zeroed(1); // keep the import exercised
    }
}
