//! High-level transmission accounting.

use core::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The operation on whose behalf a transmission was sent.
///
/// §5 attributes every message to a read, a write, or a site recovery; the
/// [`Control`](OpClass::Control) class captures traffic outside the paper's
/// model (e.g. failure-detection pings in the on-failure tracking variant)
/// so it can be reported separately and excluded from comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Block read requested by the file system.
    Read,
    /// Block write requested by the file system.
    Write,
    /// Site recovery after a failure.
    Recovery,
    /// Bookkeeping outside the paper's cost model.
    Control,
}

impl OpClass {
    /// All classes, in reporting order.
    pub const ALL: [OpClass; 4] = [
        OpClass::Read,
        OpClass::Write,
        OpClass::Recovery,
        OpClass::Control,
    ];

    const fn idx(self) -> usize {
        match self {
            OpClass::Read => 0,
            OpClass::Write => 1,
            OpClass::Recovery => 2,
            OpClass::Control => 3,
        }
    }

    /// Short label used in tables.
    pub const fn label(self) -> &'static str {
        match self {
            OpClass::Read => "read",
            OpClass::Write => "write",
            OpClass::Recovery => "recovery",
            OpClass::Control => "control",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The kinds of high-level transmissions the three protocols exchange.
///
/// These mirror §5's enumeration: "requests for version vectors, block
/// transfers, and the like".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MsgKind {
    /// Voting: query for votes / quorum existence.
    VoteRequest,
    /// Voting: a site's vote (version number + weight).
    VoteReply,
    /// Voting read: fetch of a current block from the highest-version site.
    BlockRequest,
    /// The data of one block in flight.
    BlockTransfer,
    /// A write update carrying the new block (and version).
    WriteUpdate,
    /// Acknowledgement of a write update (available copy only).
    WriteAck,
    /// Recovery: "who is out there / what state are you in" query.
    RecoveryQuery,
    /// Recovery: response to a recovery query.
    RecoveryReply,
    /// Recovery: a version vector in flight.
    VersionVector,
    /// Recovery: a was-available set in flight (available copy only).
    WasAvailable,
    /// Failure-detection traffic (control class only).
    FailureNotice,
}

impl MsgKind {
    /// All kinds, in reporting order.
    pub const ALL: [MsgKind; 11] = [
        MsgKind::VoteRequest,
        MsgKind::VoteReply,
        MsgKind::BlockRequest,
        MsgKind::BlockTransfer,
        MsgKind::WriteUpdate,
        MsgKind::WriteAck,
        MsgKind::RecoveryQuery,
        MsgKind::RecoveryReply,
        MsgKind::VersionVector,
        MsgKind::WasAvailable,
        MsgKind::FailureNotice,
    ];

    const fn idx(self) -> usize {
        match self {
            MsgKind::VoteRequest => 0,
            MsgKind::VoteReply => 1,
            MsgKind::BlockRequest => 2,
            MsgKind::BlockTransfer => 3,
            MsgKind::WriteUpdate => 4,
            MsgKind::WriteAck => 5,
            MsgKind::RecoveryQuery => 6,
            MsgKind::RecoveryReply => 7,
            MsgKind::VersionVector => 8,
            MsgKind::WasAvailable => 9,
            MsgKind::FailureNotice => 10,
        }
    }

    /// Short label used in tables.
    pub const fn label(self) -> &'static str {
        match self {
            MsgKind::VoteRequest => "vote-request",
            MsgKind::VoteReply => "vote-reply",
            MsgKind::BlockRequest => "block-request",
            MsgKind::BlockTransfer => "block-transfer",
            MsgKind::WriteUpdate => "write-update",
            MsgKind::WriteAck => "write-ack",
            MsgKind::RecoveryQuery => "recovery-query",
            MsgKind::RecoveryReply => "recovery-reply",
            MsgKind::VersionVector => "version-vector",
            MsgKind::WasAvailable => "was-available",
            MsgKind::FailureNotice => "failure-notice",
        }
    }
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

const OPS: usize = OpClass::ALL.len();
const KINDS: usize = MsgKind::ALL.len();

/// Thread-safe counters of high-level transmissions, indexed by
/// `(OpClass, MsgKind)`.
///
/// Every transport and protocol coordinator records into one of these; the
/// traffic experiments (Figures 11 and 12) read measured costs out of it and
/// compare them with the closed forms in `blockrep-analysis`.
///
/// # Examples
///
/// ```
/// use blockrep_net::{MsgKind, OpClass, TrafficCounter};
///
/// let c = TrafficCounter::new();
/// c.add(OpClass::Write, MsgKind::WriteUpdate, 1);
/// c.add(OpClass::Write, MsgKind::WriteAck, 2);
/// let before = c.snapshot();
/// c.add(OpClass::Read, MsgKind::VoteRequest, 1);
/// let delta = c.snapshot() - before;
/// assert_eq!(delta.total(), 1);
/// assert_eq!(delta.total_for(OpClass::Read), 1);
/// ```
#[derive(Debug, Default)]
pub struct TrafficCounter {
    counts: [[AtomicU64; KINDS]; OPS],
}

impl TrafficCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        TrafficCounter::default()
    }

    /// Records `n` transmissions of `kind` on behalf of `op`.
    pub fn add(&self, op: OpClass, kind: MsgKind, n: u64) {
        self.counts[op.idx()][kind.idx()].fetch_add(n, Ordering::Relaxed);
    }

    /// Records `per` transmissions of `kind` for each of `count` replies —
    /// one atomic add for a whole gathered batch instead of one per reply.
    pub fn add_many(&self, op: OpClass, kind: MsgKind, per: u64, count: u64) {
        if count > 0 {
            self.add(op, kind, per * count);
        }
    }

    /// Total transmissions across all classes and kinds.
    pub fn total(&self) -> u64 {
        self.snapshot().total()
    }

    /// Total transmissions attributed to one operation class.
    pub fn total_for(&self, op: OpClass) -> u64 {
        self.snapshot().total_for(op)
    }

    /// A consistent point-in-time copy of all counters.
    pub fn snapshot(&self) -> TrafficSnapshot {
        let mut counts = [[0u64; KINDS]; OPS];
        for (o, row) in self.counts.iter().enumerate() {
            for (k, cell) in row.iter().enumerate() {
                counts[o][k] = cell.load(Ordering::Relaxed);
            }
        }
        TrafficSnapshot { counts }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        for row in &self.counts {
            for cell in row {
                cell.store(0, Ordering::Relaxed);
            }
        }
    }
}

impl MsgKind {
    /// Nominal payload size of one transmission of this kind, in bytes,
    /// excluding the fixed per-message header.
    ///
    /// §5 notes that focusing "on the sizes of the messages" instead of
    /// their number gives differences that are "similar … though slightly
    /// less pronounced"; this nominal model (8-byte versions, full blocks
    /// in block-bearing messages, a version vector entry per device block)
    /// lets [`TrafficSnapshot::estimated_bytes`] reproduce that remark.
    pub fn payload_bytes(self, block_size: usize, num_blocks: u64) -> u64 {
        match self {
            MsgKind::VoteRequest
            | MsgKind::BlockRequest
            | MsgKind::WriteAck
            | MsgKind::RecoveryQuery => 0,
            MsgKind::VoteReply => 8,
            MsgKind::BlockTransfer | MsgKind::WriteUpdate => 8 + block_size as u64,
            MsgKind::RecoveryReply => 16,
            MsgKind::VersionVector => 8 * num_blocks,
            MsgKind::WasAvailable => 32,
            MsgKind::FailureNotice => 8,
        }
    }
}

/// An immutable copy of a [`TrafficCounter`]; subtracting two snapshots
/// yields the traffic of the interval between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficSnapshot {
    counts: [[u64; KINDS]; OPS],
}

impl TrafficSnapshot {
    /// Transmissions of `kind` on behalf of `op`.
    pub fn get(&self, op: OpClass, kind: MsgKind) -> u64 {
        self.counts[op.idx()][kind.idx()]
    }

    /// Total transmissions.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Total transmissions attributed to one operation class.
    pub fn total_for(&self, op: OpClass) -> u64 {
        self.counts[op.idx()].iter().sum()
    }

    /// Total transmissions in the paper's cost model, i.e. excluding
    /// [`OpClass::Control`].
    pub fn total_modeled(&self) -> u64 {
        self.total_for(OpClass::Read)
            + self.total_for(OpClass::Write)
            + self.total_for(OpClass::Recovery)
    }

    /// Total bytes on the wire under the nominal size model: a fixed
    /// `header` per transmission plus each kind's
    /// [`payload_bytes`](MsgKind::payload_bytes). Control traffic included.
    pub fn estimated_bytes(&self, header: u64, block_size: usize, num_blocks: u64) -> u64 {
        let mut total = 0;
        for op in OpClass::ALL {
            for kind in MsgKind::ALL {
                let n = self.get(op, kind);
                total += n * (header + kind.payload_bytes(block_size, num_blocks));
            }
        }
        total
    }

    /// Mirrors this snapshot into a metrics registry, so traffic accounting
    /// and observability report from one source of truth.
    ///
    /// Counters are *set* (not added), making the registry an exact copy of
    /// the snapshot no matter how often it is exported:
    ///
    /// * `net.msgs.<op>` — total per operation class;
    /// * `net.msgs.<op>.<kind>` — per nonzero `(op, kind)` cell;
    /// * `net.msgs.total` — everything;
    /// * `net.msgs.modeled` — everything in the paper's §5 cost model,
    ///   i.e. excluding [`OpClass::Control`].
    pub fn export_to(&self, registry: &blockrep_obs::metrics::Registry) {
        for op in OpClass::ALL {
            registry
                .counter(&format!("net.msgs.{}", op.label()))
                .set(self.total_for(op));
        }
        for (op, kind, n) in self.entries() {
            registry
                .counter(&format!("net.msgs.{}.{}", op.label(), kind.label()))
                .set(n);
        }
        registry.counter("net.msgs.total").set(self.total());
        registry
            .counter("net.msgs.modeled")
            .set(self.total_modeled());
    }

    /// Nonzero `(op, kind, count)` triples in reporting order.
    pub fn entries(&self) -> Vec<(OpClass, MsgKind, u64)> {
        let mut out = Vec::new();
        for op in OpClass::ALL {
            for kind in MsgKind::ALL {
                let n = self.get(op, kind);
                if n > 0 {
                    out.push((op, kind, n));
                }
            }
        }
        out
    }
}

impl std::ops::Sub for TrafficSnapshot {
    type Output = TrafficSnapshot;

    /// Component-wise difference; panics (in debug) on underflow, which
    /// would indicate snapshots taken in the wrong order.
    fn sub(self, rhs: TrafficSnapshot) -> TrafficSnapshot {
        let mut counts = [[0u64; KINDS]; OPS];
        for (o, row) in counts.iter_mut().enumerate() {
            for (k, cell) in row.iter_mut().enumerate() {
                *cell = self.counts[o][k] - rhs.counts[o][k];
            }
        }
        TrafficSnapshot { counts }
    }
}

impl fmt::Display for TrafficSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "traffic: {} transmissions", self.total())?;
        for (op, kind, n) in self.entries() {
            writeln!(f, "  {op:>8} {kind:<16} {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_per_cell() {
        let c = TrafficCounter::new();
        c.add(OpClass::Read, MsgKind::VoteRequest, 1);
        c.add(OpClass::Read, MsgKind::VoteReply, 4);
        c.add(OpClass::Write, MsgKind::VoteRequest, 2);
        let s = c.snapshot();
        assert_eq!(s.get(OpClass::Read, MsgKind::VoteRequest), 1);
        assert_eq!(s.get(OpClass::Read, MsgKind::VoteReply), 4);
        assert_eq!(s.get(OpClass::Write, MsgKind::VoteRequest), 2);
        assert_eq!(s.total(), 7);
        assert_eq!(s.total_for(OpClass::Read), 5);
    }

    #[test]
    fn add_many_charges_per_reply_units_in_one_shot() {
        let c = TrafficCounter::new();
        c.add_many(OpClass::Read, MsgKind::VoteReply, 3, 4);
        c.add_many(OpClass::Read, MsgKind::VoteReply, 3, 0);
        assert_eq!(c.snapshot().get(OpClass::Read, MsgKind::VoteReply), 12);
    }

    #[test]
    fn control_traffic_excluded_from_modeled_total() {
        let c = TrafficCounter::new();
        c.add(OpClass::Control, MsgKind::FailureNotice, 10);
        c.add(OpClass::Write, MsgKind::WriteUpdate, 1);
        let s = c.snapshot();
        assert_eq!(s.total(), 11);
        assert_eq!(s.total_modeled(), 1);
    }

    #[test]
    fn snapshot_diff_isolates_interval() {
        let c = TrafficCounter::new();
        c.add(OpClass::Write, MsgKind::WriteUpdate, 3);
        let before = c.snapshot();
        c.add(OpClass::Write, MsgKind::WriteUpdate, 2);
        c.add(OpClass::Recovery, MsgKind::VersionVector, 1);
        let delta = c.snapshot() - before;
        assert_eq!(delta.get(OpClass::Write, MsgKind::WriteUpdate), 2);
        assert_eq!(delta.total(), 3);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = TrafficCounter::new();
        c.add(OpClass::Read, MsgKind::BlockTransfer, 5);
        c.reset();
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn entries_reports_nonzero_in_order() {
        let c = TrafficCounter::new();
        c.add(OpClass::Write, MsgKind::WriteAck, 1);
        c.add(OpClass::Read, MsgKind::VoteReply, 1);
        let entries = c.snapshot().entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, OpClass::Read);
        assert_eq!(entries[1].0, OpClass::Write);
    }

    #[test]
    fn estimated_bytes_charges_header_and_payload() {
        let c = TrafficCounter::new();
        c.add(OpClass::Write, MsgKind::WriteUpdate, 2); // 2 × (32 + 8 + 512)
        c.add(OpClass::Write, MsgKind::WriteAck, 3); // 3 × 32
        let bytes = c.snapshot().estimated_bytes(32, 512, 64);
        assert_eq!(bytes, 2 * (32 + 8 + 512) + 3 * 32);
    }

    #[test]
    fn version_vectors_scale_with_device_size() {
        let c = TrafficCounter::new();
        c.add(OpClass::Recovery, MsgKind::VersionVector, 1);
        let small = c.snapshot().estimated_bytes(0, 512, 8);
        let large = c.snapshot().estimated_bytes(0, 512, 80);
        assert_eq!(small, 64);
        assert_eq!(large, 640);
    }

    #[test]
    fn counter_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<TrafficCounter>();
    }

    #[test]
    fn export_mirrors_snapshot_into_registry() {
        let c = TrafficCounter::new();
        c.add(OpClass::Read, MsgKind::VoteRequest, 2);
        c.add(OpClass::Read, MsgKind::VoteReply, 4);
        c.add(OpClass::Write, MsgKind::WriteUpdate, 3);
        c.add(OpClass::Control, MsgKind::FailureNotice, 7);
        let registry = blockrep_obs::metrics::Registry::new();
        let snapshot = c.snapshot();
        snapshot.export_to(&registry);
        // Exporting twice must not double-count: counters are set, not added.
        snapshot.export_to(&registry);
        let m = registry.snapshot();
        for op in OpClass::ALL {
            assert_eq!(
                m.counter(&format!("net.msgs.{}", op.label())),
                Some(snapshot.total_for(op)),
                "class {op} mismatch"
            );
        }
        assert_eq!(m.counter("net.msgs.read.vote-request"), Some(2));
        assert_eq!(m.counter("net.msgs.write.write-update"), Some(3));
        assert_eq!(m.counter("net.msgs.total"), Some(16));
        // Control traffic stays out of the §5-comparison total.
        assert_eq!(m.counter("net.msgs.modeled"), Some(9));
        assert_eq!(
            m.counter("net.msgs.modeled").unwrap(),
            m.counter("net.msgs.total").unwrap() - m.counter("net.msgs.control").unwrap()
        );
    }

    #[test]
    fn display_lists_counts() {
        let c = TrafficCounter::new();
        c.add(OpClass::Read, MsgKind::VoteRequest, 2);
        let shown = c.snapshot().to_string();
        assert!(shown.contains("2 transmissions"));
        assert!(shown.contains("vote-request"));
    }
}
