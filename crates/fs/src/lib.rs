//! A small UNIX-like file system over any [`BlockDevice`](blockrep_storage::BlockDevice).
//!
//! The paper's whole argument for the *reliable device* is that replication
//! below the block interface leaves "the operating system kernel and the
//! file system unchanged". This crate is the proof by construction: a
//! self-contained file system — superblock, block bitmap, inode table with
//! direct and indirect pointers, directories — that knows nothing about
//! replication, yet becomes fault tolerant the moment it is formatted onto a
//! [`ReliableDevice`](https://docs.rs/blockrep-core) instead of a local
//! disk. The integration tests run the *same* file-system code over both
//! and crash sites mid-workload.
//!
//! # On-disk layout
//!
//! ```text
//! block 0        superblock
//! blocks 1..     block allocation bitmap (1 bit per device block)
//! blocks ..      inode table (64-byte inodes)
//! blocks ..      data blocks (files, directories, indirect blocks)
//! ```
//!
//! # Examples
//!
//! ```
//! use blockrep_fs::FileSystem;
//! use blockrep_storage::MemStore;
//!
//! # fn main() -> Result<(), blockrep_fs::FsError> {
//! let disk = MemStore::new(128, 512);
//! let fs = FileSystem::format(disk)?;
//! fs.mkdir("/logs")?;
//! fs.write_file("/logs/boot", b"reliable device online")?;
//! assert_eq!(fs.read_file("/logs/boot")?, b"reliable device online");
//! assert_eq!(fs.read_dir("/logs")?, vec!["boot".to_string()]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmap;
mod check;
mod dir;
mod error;
mod extra;
mod fs;
mod handle;
mod inode;
mod layout;
mod path;

pub use check::{FsckProblem, FsckReport};
pub use error::{FsError, FsResult};
pub use extra::WalkEntry;
pub use fs::{FileKind, FileSystem, Metadata};
pub use handle::FileHandle;
pub use layout::FsGeometry;
