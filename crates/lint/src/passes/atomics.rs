//! Pass 2 — atomics discipline.
//!
//! For every atomic field (keyed per file by the receiver identifier of a
//! `.load(..)` / `.store(..)` / RMW call that names a memory ordering), the
//! pass collects the set of `Ordering`s in use. A field that mixes
//! `Relaxed` with any of `Acquire`/`Release`/`AcqRel`/`SeqCst` implements
//! a fence-style protocol (the flight recorder's seqlock is the house
//! example), so every function performing one of its *Relaxed* accesses
//! must also contain an explicit `fence(..)` — exactly the invariant whose
//! violation slipped through review in the seqlock writer once already.
//! Suppress deliberate exceptions with `// lint: allow(atomics, reason)`.

use super::PassOutput;
use crate::model::{receiver, Workspace};
use crate::{Finding, Severity};
use std::collections::BTreeMap;

const PASS: &str = "atomics";

const ATOMIC_METHODS: [&str; 14] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "fetch_min",
    "fetch_max",
    "fetch_nand",
    "compare_exchange",
    "compare_exchange_weak",
];
const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

struct Access {
    func: usize,
    line: u32,
    relaxed: bool,
    strong: bool,
}

pub(crate) fn run(ws: &Workspace, out: &mut PassOutput) {
    for file in &ws.files {
        let toks = file.tokens();
        // field name -> accesses (collected across the whole file so the
        // writer and reader sides of a protocol see each other).
        let mut fields: BTreeMap<String, Vec<Access>> = BTreeMap::new();
        let mut fence_in_fn = vec![false; file.functions.len()];
        for (fi, func) in file.functions.iter().enumerate() {
            let (open, close) = func.body;
            let mut j = open + 1;
            while j + 2 < close {
                if toks[j].tok.is_ident("fence") && toks[j + 1].tok.is_punct('(') {
                    fence_in_fn[fi] = true;
                }
                let is_atomic = toks[j].tok.is_punct('.')
                    && toks[j + 1]
                        .tok
                        .ident()
                        .is_some_and(|m| ATOMIC_METHODS.contains(&m))
                    && toks[j + 2].tok.is_punct('(');
                if is_atomic {
                    let args_end = crate::model::match_delim(toks, j + 2, ')');
                    let mut relaxed = false;
                    let mut strong = false;
                    for t in &toks[j + 3..args_end] {
                        if let Some(ord) = t.tok.ident() {
                            if ORDERINGS.contains(&ord) {
                                relaxed |= ord == "Relaxed";
                                strong |= ord != "Relaxed";
                            }
                        }
                    }
                    if relaxed || strong {
                        if let Some((name, _)) = receiver(toks, j) {
                            // A single call mixing orderings (e.g. a CAS
                            // with a Relaxed failure ordering) synchronises
                            // by itself; only pure-Relaxed accesses need a
                            // pairing fence.
                            fields.entry(name).or_default().push(Access {
                                func: fi,
                                line: toks[j].line,
                                relaxed: relaxed && !strong,
                                strong,
                            });
                        }
                    }
                }
                j += 1;
            }
        }
        for (name, accesses) in fields {
            let mixed = accesses.iter().any(|a| a.relaxed) && accesses.iter().any(|a| a.strong);
            if !mixed {
                continue;
            }
            for a in &accesses {
                if a.relaxed && !fence_in_fn[a.func] {
                    out.findings.push(Finding::new(
                        PASS,
                        &file.rel,
                        a.line,
                        Severity::Error,
                        format!(
                            "atomic field `{}` mixes Relaxed with acquire/release \
                             orderings across this file, but `fn {}` does a Relaxed \
                             access with no fence(..) in sight — the PR 7 seqlock bug \
                             class; add the pairing fence or `// lint: allow(atomics, \
                             reason)`",
                            name, file.functions[a.func].name
                        ),
                    ));
                }
            }
        }
    }
}
