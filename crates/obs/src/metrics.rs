//! Lock-free metrics: counters, gauges and fixed-bucket latency histograms,
//! grouped in a [`Registry`] that snapshots to a text table or JSON.
//!
//! Updates never take a lock — every metric is a handful of atomics.
//! Registration (`Registry::counter` etc.) takes a short mutex to hand out
//! a shared [`Arc`] handle; hot call sites do that once and cache the
//! handle in a `static`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonically increasing (or externally set) unsigned counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — used when mirroring an external total (e.g. a
    /// `TrafficCounter` snapshot) so the metric exactly matches its source.
    pub fn set(&self, n: u64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, open connections, ...).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per power of two, covering all of
/// `u64`. Bucket `i` holds values in `[2^i, 2^(i+1))` (bucket 0 also holds
/// zero).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket histogram for latency-like values (typically
/// nanoseconds). Recording is lock-free and allocation-free: one atomic
/// increment per bucket plus running count/sum/min/max.
///
/// Power-of-two buckets give ≤ 2× relative error on percentile estimates
/// across the full `u64` range — plenty to tell a 40 µs quorum round from a
/// 400 µs one — with no configuration.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket a value lands in.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        63 - value.leading_zeros() as usize
    }
}

/// The half-open value range `[lo, hi)` of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    let lo = if i == 0 { 0 } else { 1u64 << i };
    let hi = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
    (lo, hi)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a wall-clock duration in nanoseconds.
    pub fn record_duration(&self, duration: std::time::Duration) {
        self.record(duration.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Starts a timer that records its elapsed nanoseconds into this
    /// histogram when dropped.
    pub fn timer(&self) -> HistogramTimer<'_> {
        HistogramTimer {
            histogram: self,
            started: Instant::now(),
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimates the `p`-th percentile (`p` in `[0, 1]`) by linear
    /// interpolation inside the matching bucket. Returns 0 for an empty
    /// histogram.
    pub fn percentile(&self, p: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = p * total as f64;
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            if in_bucket == 0 {
                continue;
            }
            let next = cumulative + in_bucket;
            if rank <= next as f64 {
                let (lo, hi) = bucket_bounds(i);
                let into = (rank - cumulative as f64) / in_bucket as f64;
                let estimate = lo as f64 + into * (hi - lo) as f64;
                // Never report outside what was actually observed.
                let min = self.min.load(Ordering::Relaxed) as f64;
                let max = self.max.load(Ordering::Relaxed) as f64;
                return estimate.clamp(min, max);
            }
            cumulative = next;
        }
        self.max.load(Ordering::Relaxed) as f64
    }

    /// A point-in-time summary of this histogram.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        HistogramSummary {
            count,
            sum: self.sum(),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            mean: if count == 0 {
                0.0
            } else {
                self.sum() as f64 / count as f64
            },
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
        }
    }
}

/// Records elapsed time into a [`Histogram`] on drop; see
/// [`Histogram::timer`].
#[must_use = "the timer records when it drops; bind it with `let _timer = ...`"]
#[derive(Debug)]
pub struct HistogramTimer<'a> {
    histogram: &'a Histogram,
    started: Instant,
}

impl Drop for HistogramTimer<'_> {
    fn drop(&mut self) {
        self.histogram.record_duration(self.started.elapsed());
    }
}

/// Fewer observations than this and a percentile estimate is mostly the
/// bucket geometry talking: with n samples the p99/p50 ranks coincide until
/// n is large enough to separate them, so single-op suites used to report
/// `p50 == p99` with nothing marking the estimate as hollow. Summaries from
/// fewer samples are flagged [`HistogramSummary::low_confidence`] and the
/// renderers annotate them.
pub const LOW_CONFIDENCE_SAMPLES: u64 = 8;

/// Point-in-time percentile summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

impl HistogramSummary {
    /// Whether the percentile estimates come from fewer than
    /// [`LOW_CONFIDENCE_SAMPLES`] observations and should not be read as
    /// distribution tails (a 1-sample histogram reports `p50 == p99`
    /// trivially).
    pub fn low_confidence(&self) -> bool {
        self.count < LOW_CONFIDENCE_SAMPLES
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> MetricKind {
        match self {
            Metric::Counter(_) => MetricKind::Counter,
            Metric::Gauge(_) => MetricKind::Gauge,
            Metric::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// The kind of a registered metric, for [`KindMismatch`] diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A [`Counter`].
    Counter,
    /// A [`Gauge`].
    Gauge,
    /// A [`Histogram`].
    Histogram,
}

impl std::fmt::Display for MetricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        })
    }
}

/// A metric name was requested as one kind but is already registered as
/// another — e.g. `counter("x")` after `histogram("x")`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KindMismatch {
    /// The contested metric name.
    pub name: String,
    /// The kind the caller asked for.
    pub requested: MetricKind,
    /// The kind the name is already registered as.
    pub registered: MetricKind,
}

impl std::fmt::Display for KindMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "metric {:?} requested as a {} but already registered as a {}",
            self.name, self.requested, self.registered
        )
    }
}

impl std::error::Error for KindMismatch {}

/// A named collection of metrics.
///
/// `counter`/`gauge`/`histogram` are get-or-create and return shared
/// handles; all subsequent updates through a handle are lock-free. The
/// process-wide instance is [`global()`]; tests and exporters may build
/// private registries.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Self {
        Registry {
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.lock().expect("metrics registry lock")
    }

    /// The counter named `name`, creating it on first use.
    ///
    /// # Errors
    ///
    /// [`KindMismatch`] if `name` is already registered as a different
    /// metric kind; the registered metric is left untouched.
    pub fn try_counter(&self, name: &str) -> Result<Arc<Counter>, KindMismatch> {
        let mut metrics = self.lock();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        match metric {
            Metric::Counter(c) => Ok(Arc::clone(c)),
            other => Err(KindMismatch {
                name: name.to_string(),
                requested: MetricKind::Counter,
                registered: other.kind(),
            }),
        }
    }

    /// The gauge named `name`, creating it on first use.
    ///
    /// # Errors
    ///
    /// [`KindMismatch`] if `name` is already registered as a different
    /// metric kind; the registered metric is left untouched.
    pub fn try_gauge(&self, name: &str) -> Result<Arc<Gauge>, KindMismatch> {
        let mut metrics = self.lock();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        match metric {
            Metric::Gauge(g) => Ok(Arc::clone(g)),
            other => Err(KindMismatch {
                name: name.to_string(),
                requested: MetricKind::Gauge,
                registered: other.kind(),
            }),
        }
    }

    /// The histogram named `name`, creating it on first use.
    ///
    /// # Errors
    ///
    /// [`KindMismatch`] if `name` is already registered as a different
    /// metric kind; the registered metric is left untouched.
    pub fn try_histogram(&self, name: &str) -> Result<Arc<Histogram>, KindMismatch> {
        let mut metrics = self.lock();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())));
        match metric {
            Metric::Histogram(h) => Ok(Arc::clone(h)),
            other => Err(KindMismatch {
                name: name.to_string(),
                requested: MetricKind::Histogram,
                registered: other.kind(),
            }),
        }
    }

    /// The counter named `name`, creating it on first use.
    ///
    /// On a kind mismatch this returns a *detached* counter — a live handle
    /// that is not part of the registry and never shows up in snapshots —
    /// so instrumentation can never take the instrumented process down.
    /// Callers that want to surface the conflict use
    /// [`try_counter`](Self::try_counter).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.try_counter(name)
            .unwrap_or_else(|_| Arc::new(Counter::new()))
    }

    /// The gauge named `name`, creating it on first use; on a kind mismatch
    /// returns a detached gauge (see [`counter`](Self::counter)).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.try_gauge(name)
            .unwrap_or_else(|_| Arc::new(Gauge::new()))
    }

    /// The histogram named `name`, creating it on first use; on a kind
    /// mismatch returns a detached histogram (see
    /// [`counter`](Self::counter)).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.try_histogram(name)
            .unwrap_or_else(|_| Arc::new(Histogram::new()))
    }

    /// Removes every metric (handles held elsewhere keep working but are no
    /// longer part of snapshots).
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Captures the current value of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.lock();
        let mut snapshot = Snapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => snapshot.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snapshot.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snapshot.histograms.push((name.clone(), h.summary())),
            }
        }
        snapshot
    }
}

/// The process-wide registry that instrumented crates record into.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

/// A point-in-time copy of a [`Registry`]'s metrics, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries.
    pub histograms: Vec<(String, HistogramSummary)>,
}

/// Renders a finite `f64` for JSON (JSON has no NaN/infinity).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Snapshot {
    /// The value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The summary of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Serializes the snapshot as a self-contained JSON object:
    ///
    /// ```json
    /// {
    ///   "counters": {"net.msgs.read": 12},
    ///   "gauges": {},
    ///   "histograms": {"op.read.latency": {"count": 4, "p50": 810.0, ...}}
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {value}", json_escape(name));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {value}", json_escape(name));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"samples\": {}, \"sum\": {}, \"min\": {}, \
                 \"max\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \
                 \"low_confidence\": {}}}",
                json_escape(name),
                h.count,
                h.count,
                h.sum,
                h.min,
                h.max,
                json_f64(h.mean),
                json_f64(h.p50),
                json_f64(h.p95),
                json_f64(h.p99),
                h.low_confidence(),
            );
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}");
        out
    }

    /// Renders the snapshot as the same markdown-style tables the bench
    /// reports use.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            out.push_str("| metric | value |\n|---|---:|\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "| {name} | {value} |");
            }
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "| {name} | {value} |");
            }
        }
        if !self.histograms.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(
                "| histogram | count | mean | p50 | p95 | p99 | max |\n|---|---:|---:|---:|---:|---:|---:|\n",
            );
            for (name, h) in &self.histograms {
                // `~` marks percentile cells estimated from too few samples
                // to trust (see `LOW_CONFIDENCE_SAMPLES`).
                let mark = if h.low_confidence() { "~" } else { "" };
                let _ = writeln!(
                    out,
                    "| {name} | {} | {:.0} | {mark}{:.0} | {mark}{:.0} | {mark}{:.0} | {} |",
                    h.count, h.mean, h.p50, h.p95, h.p99, h.max
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let registry = Registry::new();
        let c = registry.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(registry.counter("c").get(), 5);
        c.set(2);
        assert_eq!(c.get(), 2);
        let g = registry.gauge("g");
        g.set(7);
        g.add(-9);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn kind_mismatch_is_a_typed_error() {
        let registry = Registry::new();
        registry.histogram("x");
        let err = registry.try_counter("x").unwrap_err();
        assert_eq!(
            err,
            KindMismatch {
                name: "x".to_string(),
                requested: MetricKind::Counter,
                registered: MetricKind::Histogram,
            }
        );
        assert_eq!(
            err.to_string(),
            "metric \"x\" requested as a counter but already registered as a histogram"
        );
        let err = registry.try_gauge("x").unwrap_err();
        assert_eq!(err.requested, MetricKind::Gauge);
        // The registered histogram survives the failed lookups untouched.
        registry.histogram("x").record(3);
        assert_eq!(registry.try_histogram("x").unwrap().count(), 1);
    }

    #[test]
    fn kind_mismatch_infallible_getters_return_detached_handles() {
        let registry = Registry::new();
        registry.counter("x").set(5);
        // Wrong-kind lookups must neither abort nor disturb the original.
        registry.histogram("x").record(9);
        registry.gauge("x").set(-1);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("x"), Some(5));
        assert!(snap.histogram("x").is_none());
        assert!(snap.gauge("x").is_none());
    }

    #[test]
    fn bucket_indexing_covers_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo < hi, "bucket {i} is empty: [{lo}, {hi})");
            assert_eq!(bucket_index(lo.max(1)), i);
        }
    }

    #[test]
    fn histogram_summary_tracks_observations() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn percentiles_land_in_the_right_bucket() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // Rank 50 of 1..=100 is 50, which lives in bucket [32, 64).
        let p50 = h.percentile(0.50);
        assert!((32.0..64.0).contains(&p50), "p50 = {p50}");
        // Rank 95 and 99 live in bucket [64, 128) but are clamped to the
        // observed max of 100.
        let p95 = h.percentile(0.95);
        assert!((64.0..=100.0).contains(&p95), "p95 = {p95}");
        let p99 = h.percentile(0.99);
        assert!(p99 >= p95 && p99 <= 100.0, "p99 = {p99}");
        // Extremes clamp to observed min/max.
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(1.0), 100.0);
    }

    #[test]
    fn percentiles_of_empty_and_single_value_histograms() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0.0);
        h.record(777);
        assert_eq!(h.percentile(0.5), 777.0);
        assert_eq!(h.percentile(0.99), 777.0);
        assert_eq!(h.summary().min, 777);
        assert_eq!(h.summary().max, 777);
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let h = Histogram::new();
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x >> 40);
        }
        let mut last = 0.0f64;
        for p in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = h.percentile(p);
            assert!(v >= last, "percentile({p}) = {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn timer_records_a_duration() {
        let h = Histogram::new();
        {
            let _t = h.timer();
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn snapshot_roundtrips_names_and_values() {
        let registry = Registry::new();
        registry.counter("net.msgs.read").set(12);
        registry.gauge("depth").set(-3);
        registry.histogram("lat").record(5);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("net.msgs.read"), Some(12));
        assert_eq!(snap.gauge("depth"), Some(-3));
        assert_eq!(snap.histogram("lat").unwrap().count, 1);
        assert_eq!(snap.counter("absent"), None);
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let registry = Registry::new();
        registry.counter("a\"b").set(1);
        registry.histogram("h").record(10);
        let json = registry.snapshot().to_json();
        assert!(json.contains("\"a\\\"b\": 1"));
        assert!(json.contains("\"count\": 1"));
        // Balanced braces and quotes — cheap structural sanity check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        let unescaped_quotes = json.replace("\\\"", "").matches('"').count();
        assert_eq!(unescaped_quotes % 2, 0);
    }

    #[test]
    fn low_confidence_flags_small_sample_counts() {
        let h = Histogram::new();
        h.record(10_000);
        let s = h.summary();
        // One observation: the percentiles collapse to the single value and
        // the summary says so.
        assert_eq!(s.p50, s.p99);
        assert!(s.low_confidence());
        for _ in 0..(LOW_CONFIDENCE_SAMPLES - 1) {
            h.record(10_000);
        }
        assert!(!h.summary().low_confidence());
    }

    #[test]
    fn snapshot_json_and_table_mark_low_confidence_percentiles() {
        let registry = Registry::new();
        registry.histogram("thin").record(100);
        let big = registry.histogram("fat");
        for v in 1..=100u64 {
            big.record(v);
        }
        let snap = registry.snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"samples\": 1"));
        assert!(json.contains("\"low_confidence\": true"));
        assert!(json.contains("\"samples\": 100"));
        assert!(json.contains("\"low_confidence\": false"));
        let table = snap.to_table();
        let thin_row = table
            .lines()
            .find(|l| l.starts_with("| thin"))
            .expect("thin row");
        assert!(thin_row.contains("~100"), "unmarked row: {thin_row}");
        let fat_row = table
            .lines()
            .find(|l| l.starts_with("| fat"))
            .expect("fat row");
        assert!(!fat_row.contains('~'), "marked row: {fat_row}");
    }

    #[test]
    fn table_lists_every_metric() {
        let registry = Registry::new();
        registry.counter("c1").set(3);
        registry.histogram("h1").record(9);
        let table = registry.snapshot().to_table();
        assert!(table.contains("| c1 | 3 |"));
        assert!(table.contains("| h1 | 1 |"));
    }
}
