//! The interactive cluster shell.
//!
//! A tiny operator console over a deterministic cluster: read and write
//! blocks, crash and repair sites, partition the network, inspect traffic,
//! and audit protocol invariants — the whole lifecycle of the paper's
//! reliable device, drivable by hand.
//!
//! The loop reads from any `BufRead` and writes to any `Write`, so tests
//! drive it with strings.

use blockrep_core::{audit, Cluster, ClusterOptions};
use blockrep_net::DeliveryMode;
use blockrep_types::{BlockData, BlockIndex, DeviceConfig, Scheme, SiteId, SiteState};
use std::io::{BufRead, Write};

/// Shell construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct ShellConfig {
    /// Consistency scheme.
    pub scheme: Scheme,
    /// Number of sites.
    pub sites: usize,
    /// Number of blocks.
    pub blocks: u64,
    /// Network environment for traffic accounting.
    pub mode: DeliveryMode,
}

impl Default for ShellConfig {
    fn default() -> Self {
        ShellConfig {
            scheme: Scheme::NaiveAvailableCopy,
            sites: 3,
            blocks: 16,
            mode: DeliveryMode::Multicast,
        }
    }
}

const HELP: &str = "commands:
  status                 site states, availability, scheme
  read <block> [site]    read a block via a coordinator (default s0)
  write <block> <byte> [site]   write a block filled with <byte>
  fail <site>            fail-stop a site
  repair <site>          restart a failed site (runs recovery)
  partition <g>|<g>...   e.g. 'partition 0,1|2' splits {s0,s1} from {s2}
  heal                   remove all partitions
  traffic                cumulative high-level transmission counts
  audit                  check protocol invariants
  w <site>               show a site's was-available set
  help                   this text
  quit                   leave the shell";

/// Runs the shell until `quit` or end of input.
///
/// # Errors
///
/// Propagates I/O errors from the input or output streams.
pub fn run(config: ShellConfig, input: impl BufRead, mut out: impl Write) -> std::io::Result<()> {
    let device = DeviceConfig::builder(config.scheme)
        .sites(config.sites)
        .num_blocks(config.blocks)
        .block_size(16)
        .build()
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    let cluster = Cluster::new(device, ClusterOptions { mode: config.mode });
    writeln!(
        out,
        "blockrep shell — {} on {} sites, {} blocks of 16 bytes ({} accounting)",
        config.scheme, config.sites, config.blocks, config.mode
    )?;
    writeln!(out, "type 'help' for commands")?;
    for line in input.lines() {
        let line = line?;
        let mut parts = line.split_whitespace();
        let Some(command) = parts.next() else {
            continue;
        };
        let args: Vec<&str> = parts.collect();
        match execute(&cluster, command, &args) {
            Outcome::Text(text) => writeln!(out, "{text}")?,
            Outcome::Quit => break,
        }
    }
    writeln!(out, "bye")?;
    Ok(())
}

enum Outcome {
    Text(String),
    Quit,
}

fn execute(cluster: &Cluster, command: &str, args: &[&str]) -> Outcome {
    match run_command(cluster, command, args) {
        Ok(None) => Outcome::Quit,
        Ok(Some(text)) => Outcome::Text(text),
        Err(msg) => Outcome::Text(format!("error: {msg}")),
    }
}

fn parse_site(cluster: &Cluster, raw: &str) -> Result<SiteId, String> {
    let raw = raw.strip_prefix('s').unwrap_or(raw);
    let id: u32 = raw.parse().map_err(|_| format!("bad site {raw:?}"))?;
    let site = SiteId::new(id);
    if cluster.config().contains_site(site) {
        Ok(site)
    } else {
        Err(format!("no such site s{id}"))
    }
}

fn parse_block(cluster: &Cluster, raw: &str) -> Result<BlockIndex, String> {
    let raw = raw.strip_prefix('b').unwrap_or(raw);
    let k: u64 = raw.parse().map_err(|_| format!("bad block {raw:?}"))?;
    if k < cluster.config().num_blocks() {
        Ok(BlockIndex::new(k))
    } else {
        Err(format!("block b{k} out of range"))
    }
}

fn run_command(cluster: &Cluster, command: &str, args: &[&str]) -> Result<Option<String>, String> {
    match command {
        "quit" | "exit" | "q" => Ok(None),
        "help" | "?" => Ok(Some(HELP.to_string())),
        "status" => {
            let mut lines = vec![format!(
                "scheme {}, available: {}",
                cluster.config().scheme(),
                cluster.is_available()
            )];
            for s in cluster.config().site_ids() {
                lines.push(format!("  {s}: {}", cluster.site_state(s)));
            }
            Ok(Some(lines.join("\n")))
        }
        "read" => {
            let block = parse_block(cluster, args.first().ok_or("usage: read <block> [site]")?)?;
            let origin = match args.get(1) {
                Some(raw) => parse_site(cluster, raw)?,
                None => SiteId::new(0),
            };
            match cluster.read(origin, block) {
                Ok(data) => Ok(Some(format!(
                    "{block} via {origin} = 0x{:02x} (version {})",
                    data.as_slice()[0],
                    cluster.version_of(origin, block)
                ))),
                Err(e) => Err(e.to_string()),
            }
        }
        "write" => {
            let block = parse_block(
                cluster,
                args.first().ok_or("usage: write <block> <byte> [site]")?,
            )?;
            let fill: u8 = args
                .get(1)
                .ok_or("usage: write <block> <byte> [site]")?
                .parse()
                .map_err(|_| "byte must be 0-255".to_string())?;
            let origin = match args.get(2) {
                Some(raw) => parse_site(cluster, raw)?,
                None => SiteId::new(0),
            };
            let size = cluster.config().block_size();
            cluster
                .write(origin, block, BlockData::from(vec![fill; size]))
                .map_err(|e| e.to_string())?;
            Ok(Some(format!("wrote {block} = 0x{fill:02x} via {origin}")))
        }
        "fail" => {
            let site = parse_site(cluster, args.first().ok_or("usage: fail <site>")?)?;
            if cluster.site_state(site) == SiteState::Failed {
                return Err(format!("{site} is already failed"));
            }
            cluster.fail_site(site);
            Ok(Some(format!(
                "{site} failed; device available: {}",
                cluster.is_available()
            )))
        }
        "repair" => {
            let site = parse_site(cluster, args.first().ok_or("usage: repair <site>")?)?;
            if cluster.site_state(site) != SiteState::Failed {
                return Err(format!("{site} is not failed"));
            }
            cluster.repair_site(site);
            Ok(Some(format!(
                "{site} repaired -> {}; device available: {}",
                cluster.site_state(site),
                cluster.is_available()
            )))
        }
        "partition" => {
            let spec = args.first().ok_or("usage: partition 0,1|2")?;
            let mut groups = Vec::new();
            for group in spec.split('|') {
                let mut members = Vec::new();
                for raw in group.split(',').filter(|s| !s.is_empty()) {
                    members.push(parse_site(cluster, raw)?);
                }
                groups.push(members);
            }
            cluster.partition(&groups);
            Ok(Some(format!("partitioned into {} groups", groups.len())))
        }
        "heal" => {
            cluster.heal();
            Ok(Some("network healed".to_string()))
        }
        "traffic" => Ok(Some(cluster.traffic().to_string().trim_end().to_string())),
        "audit" => {
            let violations = audit::check_invariants(cluster);
            if violations.is_empty() {
                Ok(Some("all protocol invariants hold".to_string()))
            } else {
                Ok(Some(
                    violations
                        .iter()
                        .map(|v| format!("VIOLATION {v}"))
                        .collect::<Vec<_>>()
                        .join("\n"),
                ))
            }
        }
        "w" => {
            let site = parse_site(cluster, args.first().ok_or("usage: w <site>")?)?;
            let w = cluster.was_available_of(site);
            Ok(Some(format!(
                "W_{site} = {{{}}}",
                w.iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )))
        }
        other => Err(format!("unknown command {other:?} (try 'help')")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(scheme: Scheme, script: &str) -> String {
        let mut out = Vec::new();
        run(
            ShellConfig {
                scheme,
                ..ShellConfig::default()
            },
            script.as_bytes(),
            &mut out,
        )
        .unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn write_read_roundtrip() {
        let out = drive(Scheme::NaiveAvailableCopy, "write 3 66\nread 3 s1\nquit\n");
        assert!(out.contains("wrote b3 = 0x42 via s0"), "{out}");
        assert!(out.contains("b3 via s1 = 0x42"), "{out}");
    }

    #[test]
    fn fail_repair_cycle_updates_status() {
        let out = drive(
            Scheme::AvailableCopy,
            "fail 1\nstatus\nrepair 1\nstatus\nquit\n",
        );
        assert!(out.contains("s1 failed; device available: true"), "{out}");
        assert!(out.contains("s1: failed"), "{out}");
        assert!(out.contains("s1 repaired -> available"), "{out}");
    }

    #[test]
    fn voting_quorum_loss_reports_error() {
        let out = drive(Scheme::Voting, "fail 1\nfail 2\nread 0\nquit\n");
        assert!(out.contains("device available: false"), "{out}");
        assert!(out.contains("error:"), "{out}");
        assert!(out.contains("unavailable"), "{out}");
    }

    #[test]
    fn partition_and_heal() {
        let out = drive(
            Scheme::Voting,
            "partition 0,1|2\nwrite 0 7 s2\nheal\nwrite 0 7 s2\nquit\n",
        );
        assert!(out.contains("partitioned into 2 groups"), "{out}");
        // s2 is in the minority partition: write refused there…
        assert!(out.contains("error:"), "{out}");
        // …and succeeds after healing.
        assert!(out.contains("wrote b0 = 0x07 via s2"), "{out}");
    }

    #[test]
    fn traffic_and_audit_commands() {
        let out = drive(
            Scheme::NaiveAvailableCopy,
            "write 0 1\ntraffic\naudit\nquit\n",
        );
        assert!(out.contains("write-update"), "{out}");
        assert!(out.contains("all protocol invariants hold"), "{out}");
    }

    #[test]
    fn was_available_inspection() {
        let out = drive(Scheme::AvailableCopy, "fail 2\nw 0\nquit\n");
        assert!(out.contains("W_s0 = {s0, s1}"), "{out}");
    }

    #[test]
    fn errors_do_not_kill_the_shell() {
        let out = drive(
            Scheme::Voting,
            "bogus\nread 999\nfail 9\nwrite 0\nstatus\nquit\n",
        );
        assert!(out.matches("error:").count() >= 4, "{out}");
        assert!(out.contains("scheme voting"), "{out}");
        assert!(out.ends_with("bye\n"), "{out}");
    }

    #[test]
    fn eof_ends_shell_cleanly() {
        let out = drive(Scheme::Voting, "status\n");
        assert!(out.ends_with("bye\n"));
    }

    #[test]
    fn help_lists_commands() {
        let out = drive(Scheme::Voting, "help\nquit\n");
        for cmd in [
            "status",
            "read",
            "write",
            "fail",
            "repair",
            "partition",
            "traffic",
            "audit",
        ] {
            assert!(out.contains(cmd), "help missing {cmd}: {out}");
        }
    }
}
