//! Cached handles into the global [`blockrep_obs`] metrics registry.
//!
//! Protocol hot paths cannot afford a registry lookup (name lookup under a
//! mutex) per operation, so each metric is resolved once into a `OnceLock`
//! and the `'static` handle is reused. Everything here is further gated on
//! [`blockrep_obs::enabled`], so with observability off the cost is one
//! relaxed atomic load and no lock is ever touched.

use blockrep_obs::metrics::{global, Counter, Histogram, HistogramTimer};
use blockrep_obs::trace::{self, Span};
use std::sync::{Arc, OnceLock};

macro_rules! cached_metric {
    ($fn_name:ident, $ty:ty, $method:ident, $metric_name:literal) => {
        pub(crate) fn $fn_name() -> &'static $ty {
            static HANDLE: OnceLock<Arc<$ty>> = OnceLock::new();
            HANDLE.get_or_init(|| global().$method($metric_name))
        }
    };
}

cached_metric!(read_latency, Histogram, histogram, "op.read.latency");
cached_metric!(write_latency, Histogram, histogram, "op.write.latency");
cached_metric!(
    recovery_latency,
    Histogram,
    histogram,
    "op.recovery.latency"
);
cached_metric!(tcp_rpc_latency, Histogram, histogram, "tcp.rpc.latency");
cached_metric!(quorum_size, Histogram, histogram, "quorum.size");
cached_metric!(scatter_batch, Histogram, histogram, "scatter.batch_size");
cached_metric!(
    blocks_repaired,
    Counter,
    counter,
    "recovery.blocks_repaired"
);
cached_metric!(faults_injected, Counter, counter, "chaos.faults_injected");

/// Interned flight-recorder phase ids, resolved once per process like the
/// metric handles above. The names are the tracing vocabulary DESIGN.md §6
/// documents; keep both in sync.
macro_rules! cached_phase {
    ($fn_name:ident, $phase_name:literal) => {
        pub(crate) fn $fn_name() -> u32 {
            static ID: OnceLock<u32> = OnceLock::new();
            *ID.get_or_init(|| trace::phase_id($phase_name))
        }
    };
}

cached_phase!(op_read, "op.read");
cached_phase!(op_write, "op.write");
cached_phase!(op_read_many, "op.read_many");
cached_phase!(op_write_many, "op.write_many");
cached_phase!(op_repair, "op.repair");
cached_phase!(phase_local_leg, "phase.local_leg");
cached_phase!(phase_exchange, "phase.exchange");
cached_phase!(phase_scatter_send, "phase.scatter_send");
cached_phase!(phase_gather_wait, "phase.gather_wait");
cached_phase!(phase_remote_apply, "phase.remote_apply");
cached_phase!(phase_early_quorum_cut, "phase.early_quorum_cut");
cached_phase!(phase_straggler_drain, "phase.straggler_drain");
cached_phase!(phase_chaos_fault, "chaos.fault");

/// Whether causal tracing is live. Callers must already be past the base
/// [`blockrep_obs::enabled`] branch — this second flag only distinguishes
/// metrics-only runs from flight-recorder runs on the observed path.
#[inline]
pub(crate) fn tracing() -> bool {
    trace::enabled()
}

/// Opens an operation span (and installs its context) when tracing is on.
pub(crate) fn op_span(phase: fn() -> u32, site: u32) -> Option<Span> {
    if blockrep_obs::enabled() && trace::enabled() {
        Some(trace::start_op(phase(), site))
    } else {
        None
    }
}

/// Opens a phase span under the current op span when tracing is on (and an
/// op is actually open).
pub(crate) fn phase_span(phase: fn() -> u32, site: u32) -> Option<Span> {
    if blockrep_obs::enabled() && trace::enabled() {
        trace::start_phase(phase(), site)
    } else {
        None
    }
}

/// Starts a latency timer for `metric` when observability is enabled; the
/// `None` guard on the disabled path is free.
pub(crate) fn timer(metric: fn() -> &'static Histogram) -> Option<HistogramTimer<'static>> {
    if blockrep_obs::enabled() {
        Some(metric().timer())
    } else {
        None
    }
}

/// Records `value` into `metric` when observability is enabled.
pub(crate) fn record(metric: fn() -> &'static Histogram, value: u64) {
    if blockrep_obs::enabled() {
        metric().record(value);
    }
}

/// Adds `n` to `metric` when observability is enabled.
pub(crate) fn count(metric: fn() -> &'static Counter, n: u64) {
    if blockrep_obs::enabled() {
        metric().add(n);
    }
}
