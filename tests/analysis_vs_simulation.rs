//! The reproduction's keystone tests: the paper's analytical results (§4
//! availability, §5 traffic), the generic Markov solver, and discrete-event
//! simulation of the actual protocol implementation must all tell the same
//! story.

use blockrep::analysis::{available_copy, naive, traffic, voting};
use blockrep::core::simulate::availability::{estimate, AvailabilityConfig};
use blockrep::core::simulate::traffic::{measure, TrafficConfig};
use blockrep::net::DeliveryMode;
use blockrep::types::Scheme;
use proptest::prelude::*;

// ------------------------------------------------ §4 analytical identities

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 4.1 as a property over (n, ρ): available copy with n copies
    /// strictly beats voting with 2n (and 2n−1) copies for ρ ≤ 1.
    #[test]
    fn theorem_4_1_holds(n in 2usize..8, rho in 1e-4f64..1.0) {
        let ac = available_copy::availability(n, rho);
        let v2n = voting::availability(2 * n, rho);
        let v2n1 = voting::availability(2 * n - 1, rho);
        prop_assert!((v2n - v2n1).abs() < 1e-12);
        prop_assert!(ac > v2n, "n={n} rho={rho}: A_A={ac} A_V={v2n}");
    }

    /// The even-copy identity A_V(2k) = A_V(2k−1) over the whole parameter
    /// space (not just ρ ≤ 1).
    #[test]
    fn even_voting_copy_adds_nothing(k in 1usize..7, rho in 1e-4f64..5.0) {
        let odd = voting::availability(2 * k - 1, rho);
        let even = voting::availability(2 * k, rho);
        prop_assert!((odd - even).abs() < 1e-12);
    }

    /// §4.3: A_NA(2) = A_V(3) for every ρ.
    #[test]
    fn naive_two_copies_equal_voting_three(rho in 1e-4f64..5.0) {
        let na = naive::availability_closed(2, rho);
        let v = voting::availability(3, rho);
        prop_assert!((na - v).abs() < 1e-12);
    }

    /// Scheme ordering at practical ρ: AC ≥ NAC > voting (same n, n ≥ 3…
    /// voting compared at the same copy count).
    #[test]
    fn availability_ordering(n in 3usize..8, rho in 1e-3f64..0.5) {
        let ac = available_copy::availability(n, rho);
        let na = naive::availability(n, rho);
        let v = voting::availability(n, rho);
        prop_assert!(ac + 1e-12 >= na, "n={n} rho={rho}");
        prop_assert!(na > v, "n={n} rho={rho}: NA={na} V={v}");
    }

    /// All availabilities live in (0, 1] and decrease in ρ.
    #[test]
    fn availabilities_are_probabilities(n in 1usize..10, rho in 1e-4f64..4.0) {
        for a in [
            voting::availability(n, rho),
            available_copy::availability(n, rho),
            naive::availability(n, rho),
        ] {
            prop_assert!(a > 0.0 && a <= 1.0, "n={n} rho={rho}: {a}");
        }
    }

    /// Closed forms and the CTMC solver agree wherever the paper printed a
    /// closed form.
    #[test]
    fn closed_forms_match_markov_chains(rho in 1e-3f64..2.0) {
        for n in 1..=4usize {
            if let Some(closed) = available_copy::availability_closed(n, rho) {
                prop_assert!((closed - available_copy::availability(n, rho)).abs() < 1e-9);
            }
        }
        for n in 1..=6usize {
            let closed = naive::availability_closed(n, rho);
            prop_assert!((closed - naive::availability(n, rho)).abs() < 1e-9);
        }
    }
}

// ----------------------------------------- DES vs analysis (availability)

#[test]
fn simulated_availability_matches_analysis_for_figure_9_parameters() {
    // One representative point per scheme from the Figure 9 setup, at the
    // stressed end of the plot where differences are visible.
    let rho = 0.20;
    for (scheme, n) in [
        (Scheme::AvailableCopy, 3),
        (Scheme::NaiveAvailableCopy, 3),
        (Scheme::Voting, 6),
    ] {
        let mut cfg = AvailabilityConfig::new(scheme, n, rho);
        cfg.horizon = 80_000.0;
        let est = estimate(&cfg);
        assert!(
            est.error() < 0.005,
            "{scheme} n={n}: measured {} vs analytic {}",
            est.availability,
            est.analytic
        );
    }
}

#[test]
fn simulated_scheme_ordering_matches_figure_9() {
    let rho = 0.15;
    let run = |scheme, n| {
        let mut cfg = AvailabilityConfig::new(scheme, n, rho);
        cfg.horizon = 60_000.0;
        estimate(&cfg).availability
    };
    let ac = run(Scheme::AvailableCopy, 3);
    let na = run(Scheme::NaiveAvailableCopy, 3);
    let v = run(Scheme::Voting, 6);
    assert!(ac >= na - 0.002, "AC {ac} vs NAC {na}");
    assert!(na > v, "NAC {na} vs voting {v}");
}

// --------------------------------------------- DES vs analysis (traffic)

#[test]
fn failure_free_traffic_matches_formulas_exactly() {
    // With no failures, U = n and every §5 formula becomes exact; the
    // measured counts must hit them to the digit.
    for scheme in Scheme::ALL {
        for mode in DeliveryMode::ALL {
            for n in [2usize, 3, 5, 8] {
                let cfg = blockrep::types::DeviceConfig::builder(scheme)
                    .sites(n)
                    .num_blocks(4)
                    .block_size(16)
                    .build()
                    .unwrap();
                let c = blockrep::core::Cluster::new(cfg, blockrep::core::ClusterOptions { mode });
                let s0 = blockrep::types::SiteId::new(0);
                let k = blockrep::types::BlockIndex::new(0);
                let before = c.traffic();
                c.write(s0, k, blockrep::types::BlockData::from(vec![1; 16]))
                    .unwrap();
                let write_cost = (c.traffic() - before).total_modeled();
                let before = c.traffic();
                c.read(s0, k).unwrap();
                let read_cost = (c.traffic() - before).total_modeled();

                let nf = n as f64;
                let (expect_write, expect_read) = match (scheme, mode) {
                    (Scheme::Voting, DeliveryMode::Multicast) => (1.0 + nf, nf),
                    (Scheme::Voting, DeliveryMode::Unicast) => (nf + 2.0 * nf - 3.0, nf + nf - 2.0),
                    (Scheme::AvailableCopy, DeliveryMode::Multicast) => (nf, 0.0),
                    (Scheme::AvailableCopy, DeliveryMode::Unicast) => (nf + nf - 2.0, 0.0),
                    (Scheme::NaiveAvailableCopy, DeliveryMode::Multicast) => (1.0, 0.0),
                    (Scheme::NaiveAvailableCopy, DeliveryMode::Unicast) => (nf - 1.0, 0.0),
                };
                assert_eq!(
                    write_cost as f64, expect_write,
                    "{scheme}/{mode} n={n}: write"
                );
                assert_eq!(read_cost as f64, expect_read, "{scheme}/{mode} n={n}: read");
            }
        }
    }
}

#[test]
fn traffic_simulation_tracks_models_under_failures() {
    for scheme in Scheme::ALL {
        for mode in DeliveryMode::ALL {
            let mut cfg = TrafficConfig::new(scheme, 6, mode);
            cfg.ops = 30_000;
            let est = measure(&cfg);
            assert!(
                (est.per_write - est.model.write).abs() < 0.2,
                "{scheme}/{mode}: write {} vs {}",
                est.per_write,
                est.model.write
            );
            if scheme != Scheme::Voting {
                assert_eq!(est.per_read, 0.0, "{scheme}/{mode}: reads must be free");
                assert!(
                    (est.per_recovery - est.model.recovery).abs() < 0.6,
                    "{scheme}/{mode}: recovery {} vs {}",
                    est.per_recovery,
                    est.model.recovery
                );
            } else {
                assert_eq!(est.per_recovery, 0.0, "voting recovery is free");
            }
        }
    }
}

#[test]
fn workload_cost_ordering_matches_figure_11() {
    // The §5 conclusion at the paper's typical parameters (n up to 12,
    // ρ = 0.05, x ∈ {1, 2.5, 4}): naive < available copy < voting.
    for mode in [traffic::NetModel::Multicast, traffic::NetModel::Unicast] {
        for n in 2..=12usize {
            for x in [1.0, 2.5, 4.0] {
                let v = traffic::costs(Scheme::Voting, mode, n, 0.05).per_write_group(x);
                let a = traffic::costs(Scheme::AvailableCopy, mode, n, 0.05).per_write_group(x);
                let na =
                    traffic::costs(Scheme::NaiveAvailableCopy, mode, n, 0.05).per_write_group(x);
                assert!(na < a && a < v, "mode={mode:?} n={n} x={x}");
            }
        }
    }
}
