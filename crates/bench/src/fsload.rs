//! File-system-level workload replay against each scheme.
//!
//! §5's composite cost is "one write and x reads", with `x ≈ 2.5` quoted
//! from the BSD trace study. This harness closes the loop: it drives a real
//! file-system workload (creates, writes, reads, deletes) through
//! `blockrep-fs` over a reliable device, *observes* the block-level
//! read:write ratio that workload induces, and reports the total §5
//! transmissions each scheme pays for the identical workload.

use blockrep_core::{Cluster, ClusterOptions, ReliableDevice};
use blockrep_net::{DeliveryMode, OpClass};
use blockrep_types::{DeviceConfig, Scheme, SiteId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Parameters of a file-system workload experiment.
#[derive(Debug, Clone)]
pub struct FsLoadConfig {
    /// Consistency scheme under test.
    pub scheme: Scheme,
    /// Number of replica sites.
    pub n: usize,
    /// Network environment.
    pub mode: DeliveryMode,
    /// Number of file-system operations to perform.
    pub ops: u32,
    /// RNG seed.
    pub seed: u64,
}

impl FsLoadConfig {
    /// A standard workload of 500 file operations on a 3-site device.
    pub fn new(scheme: Scheme, mode: DeliveryMode) -> Self {
        FsLoadConfig {
            scheme,
            n: 3,
            mode,
            ops: 500,
            seed: 0xF57E,
        }
    }
}

/// What the workload cost.
#[derive(Debug, Clone, Copy)]
pub struct FsLoadEstimate {
    /// Block reads the file system issued (cold, at the device interface).
    pub block_reads: u64,
    /// Block writes the file system issued.
    pub block_writes: u64,
    /// Total §5 transmissions (read + write classes).
    pub transmissions: u64,
    /// File-system operations performed.
    pub fs_ops: u32,
}

impl FsLoadEstimate {
    /// The block-level read:write ratio this workload induced — the `x` of
    /// Figures 11/12, measured instead of assumed.
    pub fn read_write_ratio(&self) -> f64 {
        self.block_reads as f64 / self.block_writes.max(1) as f64
    }

    /// Mean transmissions per file-system operation.
    pub fn per_fs_op(&self) -> f64 {
        self.transmissions as f64 / self.fs_ops.max(1) as f64
    }
}

/// Replays a deterministic mixed file workload (60% whole-file reads, 30%
/// writes/creates, 10% deletes over a pool of 24 files up to 4 KiB) and
/// measures the §5 traffic it generates.
///
/// # Panics
///
/// Panics if the device configuration is degenerate or the file system
/// errors on an always-available device (which would be a bug).
pub fn measure(config: &FsLoadConfig) -> FsLoadEstimate {
    let device = DeviceConfig::builder(config.scheme)
        .sites(config.n)
        .num_blocks(2048)
        .block_size(512)
        .build()
        .expect("simulation device configuration is valid");
    let cluster = Arc::new(Cluster::new(device, ClusterOptions { mode: config.mode }));
    let fs =
        blockrep_fs::FileSystem::format(ReliableDevice::new(Arc::clone(&cluster), SiteId::new(0)))
            .expect("formatting a fresh reliable device succeeds");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut sizes: Vec<Option<usize>> = vec![None; 24];
    cluster.counter().reset();
    let block_reads;
    let block_writes;
    for _ in 0..config.ops {
        let slot = rng.random_range(0..sizes.len());
        let path = format!("/f{slot}");
        let roll: f64 = rng.random();
        if roll < 0.6 {
            match sizes[slot] {
                Some(expect) => {
                    let data = fs
                        .read_file(&path)
                        .expect("device is always available here");
                    assert_eq!(data.len(), expect, "file length corrupted");
                }
                None => continue,
            }
        } else if roll < 0.9 {
            let len = rng.random_range(1..4096usize);
            let byte = rng.random::<u8>();
            fs.write_file(&path, &vec![byte; len]).expect("write_file");
            sizes[slot] = Some(len);
        } else if sizes[slot].is_some() {
            fs.remove_file(&path).expect("remove_file");
            sizes[slot] = None;
        }
    }
    // Re-derive block op counts by replaying the same workload against a
    // plain local store with a counting wrapper (identical FS behaviour —
    // transparency is tested elsewhere).
    {
        use blockrep_storage::BlockDevice;
        struct Counting {
            inner: blockrep_storage::MemStore,
            reads: std::sync::atomic::AtomicU64,
            writes: std::sync::atomic::AtomicU64,
        }
        impl BlockDevice for Counting {
            fn num_blocks(&self) -> u64 {
                self.inner.num_blocks()
            }
            fn block_size(&self) -> usize {
                self.inner.block_size()
            }
            fn read_block(
                &self,
                k: blockrep_types::BlockIndex,
            ) -> blockrep_types::DeviceResult<blockrep_types::BlockData> {
                self.reads
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.inner.read_block(k)
            }
            fn write_block(
                &self,
                k: blockrep_types::BlockIndex,
                data: blockrep_types::BlockData,
            ) -> blockrep_types::DeviceResult<()> {
                self.writes
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.inner.write_block(k, data)
            }
        }
        let counting = Counting {
            inner: blockrep_storage::MemStore::new(2048, 512),
            reads: 0.into(),
            writes: 0.into(),
        };
        let fs2 = blockrep_fs::FileSystem::format(counting).expect("format local");
        // Formatting itself writes metadata; the replicated run's counter
        // was reset after format, so align the baselines.
        let base_reads = fs2
            .device()
            .reads
            .load(std::sync::atomic::Ordering::Relaxed);
        let base_writes = fs2
            .device()
            .writes
            .load(std::sync::atomic::Ordering::Relaxed);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut sizes: Vec<Option<usize>> = vec![None; 24];
        for _ in 0..config.ops {
            let slot = rng.random_range(0..sizes.len());
            let path = format!("/f{slot}");
            let roll: f64 = rng.random();
            if roll < 0.6 {
                if sizes[slot].is_some() {
                    let _ = fs2.read_file(&path).expect("read");
                }
            } else if roll < 0.9 {
                let len = rng.random_range(1..4096usize);
                let byte = rng.random::<u8>();
                fs2.write_file(&path, &vec![byte; len]).expect("write");
                sizes[slot] = Some(len);
            } else if sizes[slot].is_some() {
                fs2.remove_file(&path).expect("remove");
                sizes[slot] = None;
            }
        }
        let dev = fs2.into_device();
        block_reads = dev.reads.load(std::sync::atomic::Ordering::Relaxed) - base_reads;
        block_writes = dev.writes.load(std::sync::atomic::Ordering::Relaxed) - base_writes;
    }
    let snap = cluster.traffic();
    FsLoadEstimate {
        block_reads,
        block_writes,
        transmissions: snap.total_for(OpClass::Read) + snap.total_for(OpClass::Write),
        fs_ops: config.ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_workload_orders_schemes_as_figure_11() {
        let run = |scheme| {
            measure(&FsLoadConfig {
                ops: 300,
                ..FsLoadConfig::new(scheme, DeliveryMode::Multicast)
            })
        };
        let v = run(Scheme::Voting);
        let a = run(Scheme::AvailableCopy);
        let na = run(Scheme::NaiveAvailableCopy);
        // Identical block workload…
        assert_eq!(v.block_reads, a.block_reads);
        assert_eq!(a.block_reads, na.block_reads);
        assert_eq!(v.block_writes, na.block_writes);
        // …very different bills.
        assert!(
            na.transmissions < a.transmissions && a.transmissions < v.transmissions,
            "naive {} < ac {} < voting {}",
            na.transmissions,
            a.transmissions,
            v.transmissions
        );
    }

    #[test]
    fn fs_workloads_are_read_dominated() {
        // The shape the paper cites from the BSD traces: more block reads
        // than block writes is *not* guaranteed for every FS (metadata
        // updates write a lot), but reads must be a substantial share.
        let est = measure(&FsLoadConfig {
            ops: 300,
            ..FsLoadConfig::new(Scheme::NaiveAvailableCopy, DeliveryMode::Multicast)
        });
        assert!(est.block_reads > 0 && est.block_writes > 0);
        let ratio = est.read_write_ratio();
        assert!(ratio > 0.3, "ratio {ratio} suspiciously write-heavy");
    }

    #[test]
    fn estimates_are_deterministic() {
        let cfg = FsLoadConfig {
            ops: 120,
            ..FsLoadConfig::new(Scheme::Voting, DeliveryMode::Unicast)
        };
        let a = measure(&cfg);
        let b = measure(&cfg);
        assert_eq!(a.transmissions, b.transmissions);
        assert_eq!(a.block_reads, b.block_reads);
    }
}
