//! The data behind the paper's evaluation figures 9–12.
//!
//! Each function returns the figure's curves as [`Series`]; the bench
//! binaries in `blockrep-bench` render them and compare against simulation.

use crate::sweep::{grid, Series};
use crate::traffic::{costs, NetModel};
use crate::{available_copy, naive, voting};
use blockrep_types::Scheme;

/// The ρ grid the paper plots: 0 to 0.20, "the first value corresponding to
/// perfectly reliable copies and the latter to copies that are repaired five
/// times faster than they fail".
pub fn rho_grid_availability() -> Vec<f64> {
    grid(0.0, 0.20, 20)
}

/// Availability curves comparing `n_ac` available/naive copies with
/// `n_voting` voting copies over a ρ grid — the template behind Figures 9
/// and 10.
pub fn availability_comparison(n_ac: usize, n_voting: usize, rhos: &[f64]) -> Vec<Series> {
    let ac = Series::from_fn(format!("available-copy n={n_ac}"), rhos, |rho| {
        available_copy::availability(n_ac, rho)
    });
    let na = Series::from_fn(format!("naive-available-copy n={n_ac}"), rhos, |rho| {
        naive::availability(n_ac, rho)
    });
    let v = Series::from_fn(format!("voting n={n_voting}"), rhos, |rho| {
        voting::availability(n_voting, rho)
    });
    vec![ac, na, v]
}

/// Figure 9: three available copies (and three naive copies) vs. six voting
/// copies, ρ ∈ [0, 0.20].
pub fn fig9() -> Vec<Series> {
    availability_comparison(3, 6, &rho_grid_availability())
}

/// Figure 10: four available copies vs. eight voting copies, ρ ∈ [0, 0.20].
pub fn fig10() -> Vec<Series> {
    availability_comparison(4, 8, &rho_grid_availability())
}

/// The read:write ratios the paper plots in Figures 11/12 (x reads per
/// write, "reflecting read to write ratios of 1:1, 2:1, 4:1").
pub const READ_WRITE_RATIOS: [f64; 3] = [1.0, 2.0, 4.0];

/// The "typical value of ρ" used by Figures 11 and 12.
pub const RHO_TYPICAL: f64 = 0.05;

/// Traffic curves over the number of sites `n` for one network model:
/// voting at each read:write ratio, plus available copy and naive available
/// copy (whose costs are read-ratio independent since reads are free).
/// Recovery traffic is discounted, as the paper argues.
pub fn traffic_comparison(net: NetModel, ns: &[usize], rho: f64) -> Vec<Series> {
    let xs: Vec<f64> = ns.iter().map(|&n| n as f64).collect();
    let mut series = Vec::new();
    for &x in &READ_WRITE_RATIOS {
        series.push(Series {
            label: format!("voting x={x:.0}"),
            points: ns
                .iter()
                .map(|&n| {
                    (
                        n as f64,
                        costs(Scheme::Voting, net, n, rho).per_write_group(x),
                    )
                })
                .collect(),
        });
    }
    series.push(Series::from_fn("available-copy", &xs, |nf| {
        costs(Scheme::AvailableCopy, net, nf as usize, rho).per_write_group(1.0)
    }));
    series.push(Series::from_fn("naive-available-copy", &xs, |nf| {
        costs(Scheme::NaiveAvailableCopy, net, nf as usize, rho).per_write_group(1.0)
    }));
    series
}

/// The site counts Figures 11 and 12 sweep over.
pub fn n_grid_traffic() -> Vec<usize> {
    (2..=12).collect()
}

/// Figure 11: multicast traffic per (1 write + x reads), ρ = 0.05.
pub fn fig11() -> Vec<Series> {
    traffic_comparison(NetModel::Multicast, &n_grid_traffic(), RHO_TYPICAL)
}

/// Figure 12: unique-addressing traffic per (1 write + x reads), ρ = 0.05.
pub fn fig12() -> Vec<Series> {
    traffic_comparison(NetModel::Unicast, &n_grid_traffic(), RHO_TYPICAL)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_availability_ordering_holds_pointwise() {
        // "Both the traditional and the naive available copy algorithms
        // produce much higher availabilities than voting."
        for curves in [fig9(), fig10()] {
            let (ac, na, v) = (&curves[0], &curves[1], &curves[2]);
            for i in 1..ac.points.len() {
                // skip ρ=0 where everything is 1
                assert!(ac.points[i].1 > v.points[i].1);
                assert!(na.points[i].1 > v.points[i].1);
                assert!(ac.points[i].1 >= na.points[i].1);
            }
        }
    }

    #[test]
    fn fig9_ac_and_naive_indistinguishable_below_rho_010() {
        for curves in [fig9(), fig10()] {
            let (ac, na) = (&curves[0], &curves[1]);
            for i in 0..ac.points.len() {
                let (rho, a) = ac.points[i];
                if rho < 0.10 {
                    assert!(
                        (a - na.points[i].1).abs() < 5e-3,
                        "rho={rho}: gap {}",
                        (a - na.points[i].1).abs()
                    );
                }
            }
        }
    }

    #[test]
    fn fig11_naive_cheapest_voting_dearest_everywhere() {
        for curves in [fig11(), fig12()] {
            let n_pts = curves[0].points.len();
            for i in 0..n_pts {
                let voting_x1 = curves[0].points[i].1;
                let ac = curves[3].points[i].1;
                let na = curves[4].points[i].1;
                assert!(na < ac, "point {i}");
                assert!(ac < voting_x1, "point {i}");
            }
        }
    }

    #[test]
    fn fig11_voting_cost_grows_with_read_ratio() {
        let curves = fig11();
        for i in 0..curves[0].points.len() {
            assert!(curves[0].points[i].1 < curves[1].points[i].1);
            assert!(curves[1].points[i].1 < curves[2].points[i].1);
        }
    }

    #[test]
    fn fig12_amplifies_fig11_differences() {
        // "the differences are amplified in a single destination network":
        // the gap between voting (x=1) and naive grows under unicast for
        // every n >= 3 (at n = 2 a unicast "broadcast" is a single message,
        // so there is nothing to amplify yet).
        let m = fig11();
        let u = fig12();
        for i in 0..m[0].points.len() {
            if m[0].points[i].0 < 3.0 {
                continue;
            }
            let gap_m = m[0].points[i].1 - m[4].points[i].1;
            let gap_u = u[0].points[i].1 - u[4].points[i].1;
            assert!(
                gap_u > gap_m,
                "point {i}: multicast gap {gap_m}, unicast gap {gap_u}"
            );
        }
    }

    #[test]
    fn naive_multicast_write_cost_is_flat_one() {
        let curves = fig11();
        let na = &curves[4];
        for &(_, y) in &na.points {
            assert_eq!(y, 1.0);
        }
    }

    #[test]
    fn grids_are_paper_shaped() {
        let rhos = rho_grid_availability();
        assert_eq!(rhos[0], 0.0);
        assert_eq!(*rhos.last().unwrap(), 0.20);
        assert_eq!(n_grid_traffic().first(), Some(&2));
        assert_eq!(n_grid_traffic().last(), Some(&12));
    }
}
