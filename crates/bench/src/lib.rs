//! Shared experiment drivers for the figure-regeneration binaries and the
//! Criterion benches.
//!
//! Every evaluation figure of the paper has a regenerator here that
//! produces both the **analytic** series (from `blockrep-analysis`) and the
//! **measured** series (from the protocol implementation driven by the DES
//! harnesses in `blockrep-core`), aligned so the binaries can print them
//! side by side and `EXPERIMENTS.md` can record paper-vs-measured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fs_bench;
pub mod fsload;
pub mod load_bench;
pub mod protocol_bench;
pub mod report;
pub mod schema;
pub mod shard_bench;
pub mod storage_bench;
pub mod trace_bench;

use blockrep_analysis::sweep::Series;
use blockrep_core::simulate::availability::{estimate, AvailabilityConfig};
use blockrep_core::simulate::traffic::{measure, TrafficConfig};
use blockrep_net::DeliveryMode;
use blockrep_types::Scheme;

/// The coarser ρ grid the DES cross-check runs on (each point is a full
/// simulation; the analytic curves use the paper's fine grid).
pub fn sim_rho_grid() -> Vec<f64> {
    vec![0.02, 0.05, 0.10, 0.15, 0.20]
}

/// Availability rows for a Figure 9/10-style comparison: for each ρ, the
/// analytic and simulated availability of `n_ac` available/naive copies and
/// `n_voting` voting copies.
#[derive(Debug, Clone, Copy)]
pub struct AvailabilityRow {
    /// Failure-to-repair ratio.
    pub rho: f64,
    /// Analytic `A_A(n_ac)`.
    pub ac_analytic: f64,
    /// Simulated availability, available copy.
    pub ac_sim: f64,
    /// Analytic `A_NA(n_ac)`.
    pub naive_analytic: f64,
    /// Simulated availability, naive available copy.
    pub naive_sim: f64,
    /// Analytic `A_V(n_voting)`.
    pub voting_analytic: f64,
    /// Simulated availability, voting.
    pub voting_sim: f64,
}

/// Runs the Figure 9/10 experiment: analytic curves plus a DES cross-check
/// of all three schemes at each grid point.
pub fn availability_rows(n_ac: usize, n_voting: usize, horizon: f64) -> Vec<AvailabilityRow> {
    sim_rho_grid()
        .into_iter()
        .map(|rho| {
            let sim = |scheme: Scheme, n: usize| {
                let mut cfg = AvailabilityConfig::new(scheme, n, rho);
                cfg.horizon = horizon;
                estimate(&cfg)
            };
            let ac = sim(Scheme::AvailableCopy, n_ac);
            let na = sim(Scheme::NaiveAvailableCopy, n_ac);
            let v = sim(Scheme::Voting, n_voting);
            AvailabilityRow {
                rho,
                ac_analytic: ac.analytic,
                ac_sim: ac.availability,
                naive_analytic: na.analytic,
                naive_sim: na.availability,
                voting_analytic: v.analytic,
                voting_sim: v.availability,
            }
        })
        .collect()
}

/// Traffic rows for a Figure 11/12-style comparison at one site count:
/// measured and analytic cost of (1 write + x reads) per scheme.
#[derive(Debug, Clone)]
pub struct TrafficRow {
    /// Number of sites.
    pub n: usize,
    /// `(x, analytic, measured)` for voting at each read:write ratio.
    pub voting: Vec<(f64, f64, f64)>,
    /// `(analytic, measured)` for available copy (read-ratio independent).
    pub available_copy: (f64, f64),
    /// `(analytic, measured)` for naive available copy.
    pub naive: (f64, f64),
}

/// Runs the Figure 11/12 experiment for the given delivery mode.
pub fn traffic_rows(mode: DeliveryMode, ns: &[usize], ops: u64) -> Vec<TrafficRow> {
    ns.iter()
        .map(|&n| {
            let run = |scheme: Scheme, x: f64| {
                let mut cfg = TrafficConfig::new(scheme, n, mode);
                cfg.ops = ops;
                cfg.reads_per_write = x;
                let est = measure(&cfg);
                (est.model.per_write_group(x), est.per_write_group(x))
            };
            let voting = blockrep_analysis::figures::READ_WRITE_RATIOS
                .iter()
                .map(|&x| {
                    let (analytic, measured) = run(Scheme::Voting, x);
                    (x, analytic, measured)
                })
                .collect();
            let ac = run(Scheme::AvailableCopy, 1.0);
            let na = run(Scheme::NaiveAvailableCopy, 1.0);
            TrafficRow {
                n,
                voting,
                available_copy: ac,
                naive: na,
            }
        })
        .collect()
}

/// Prints a set of aligned series as a markdown table.
pub fn print_series(title: &str, x_name: &str, series: &[Series], precision: usize) {
    println!("## {title}\n");
    print!(
        "{}",
        blockrep_analysis::sweep::markdown_table(x_name, series, precision)
    );
    println!();
}

/// Prints availability rows as a markdown table.
pub fn print_availability(title: &str, rows: &[AvailabilityRow]) {
    println!("## {title}\n");
    println!(
        "| rho | AC analytic | AC sim | NAC analytic | NAC sim | Voting analytic | Voting sim |"
    );
    println!("|---|---|---|---|---|---|---|");
    for r in rows {
        println!(
            "| {:.2} | {:.6} | {:.6} | {:.6} | {:.6} | {:.6} | {:.6} |",
            r.rho,
            r.ac_analytic,
            r.ac_sim,
            r.naive_analytic,
            r.naive_sim,
            r.voting_analytic,
            r.voting_sim
        );
    }
    println!();
}

/// Prints traffic rows as a markdown table (analytic / measured pairs).
pub fn print_traffic(title: &str, rows: &[TrafficRow]) {
    println!("## {title}\n");
    println!("| n | voting x=1 (model/meas) | voting x=2 | voting x=4 | available-copy | naive |");
    println!("|---|---|---|---|---|---|");
    for r in rows {
        print!("| {} |", r.n);
        for &(_, analytic, measured) in &r.voting {
            print!(" {analytic:.2} / {measured:.2} |");
        }
        println!(
            " {:.2} / {:.2} | {:.2} / {:.2} |",
            r.available_copy.0, r.available_copy.1, r.naive.0, r.naive.1
        );
    }
    println!();
}
