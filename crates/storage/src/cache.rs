//! A write-through buffer cache.

use crate::BlockDevice;
use blockrep_types::{BlockData, BlockIndex, DeviceResult};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Gated global cache counters: mirrored into the process-wide metrics
/// registry only while observability is enabled, so the per-instance
/// [`CacheStats`] stay authoritative and the hot path pays one relaxed
/// atomic load when it is off.
mod obs_counters {
    use blockrep_obs::metrics::{global, Counter};
    use std::sync::{Arc, OnceLock};

    fn counter(slot: &'static OnceLock<Arc<Counter>>, name: &'static str) -> &'static Counter {
        slot.get_or_init(|| global().counter(name))
    }

    pub(super) fn hit() {
        if blockrep_obs::enabled() {
            static C: OnceLock<Arc<Counter>> = OnceLock::new();
            counter(&C, "cache.hit").inc();
        }
    }

    pub(super) fn miss() {
        if blockrep_obs::enabled() {
            static C: OnceLock<Arc<Counter>> = OnceLock::new();
            counter(&C, "cache.miss").inc();
        }
    }

    pub(super) fn evict() {
        if blockrep_obs::enabled() {
            static C: OnceLock<Arc<Counter>> = OnceLock::new();
            counter(&C, "cache.evict").inc();
        }
    }
}

/// A write-through LRU block cache in front of any [`BlockDevice`] — the
/// "buffer cache" of the paper's Figure 1, where the file system only asks
/// the device driver for blocks it does not already hold.
///
/// In front of a replicated device this is consequential: a cache hit costs
/// **zero** network transmissions, which is what blunts voting's expensive
/// reads in practice (and why the paper's UNIX model draws the cache above
/// the driver stub). Writes go straight through, so the replicas always
/// hold the current data and the cache never needs recovery handling.
///
/// # Examples
///
/// ```
/// use blockrep_storage::{BlockDevice, CacheStore, MemStore};
/// use blockrep_types::{BlockData, BlockIndex};
///
/// # fn main() -> Result<(), blockrep_types::DeviceError> {
/// let cached = CacheStore::new(MemStore::new(64, 512), 8);
/// let k = BlockIndex::new(0);
/// cached.write_block(k, BlockData::zeroed(512))?;
/// cached.read_block(k)?; // served from cache
/// assert_eq!(cached.stats().hits, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CacheStore<D> {
    inner: D,
    capacity: usize,
    state: Mutex<CacheState>,
}

#[derive(Debug, Default)]
struct CacheState {
    /// block -> (data, last-use stamp)
    entries: HashMap<u64, (BlockData, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Hit/miss/eviction counters of a [`CacheStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Reads served from the cache.
    pub hits: u64,
    /// Reads that had to go to the underlying device.
    pub misses: u64,
    /// Entries displaced to make room (LRU).
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (0 when nothing was read yet).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl<D: BlockDevice> CacheStore<D> {
    /// Wraps `inner` with a cache of `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(inner: D, capacity: usize) -> Self {
        assert!(capacity > 0, "a cache needs at least one slot");
        CacheStore {
            inner,
            capacity,
            state: Mutex::new(CacheState::default()),
        }
    }

    /// Borrows the underlying device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Unwraps the cache, returning the underlying device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        let state = self.state.lock();
        CacheStats {
            hits: state.hits,
            misses: state.misses,
            evictions: state.evictions,
        }
    }

    /// Drops every cached block (e.g. after reconnecting to a device whose
    /// content may have moved on).
    pub fn invalidate(&self) {
        self.state.lock().entries.clear();
    }
}

impl CacheState {
    fn touch(&mut self, block: u64) {
        self.clock += 1;
        if let Some((_, stamp)) = self.entries.get_mut(&block) {
            *stamp = self.clock;
        }
    }

    fn insert(&mut self, block: u64, data: BlockData, capacity: usize) {
        self.clock += 1;
        self.entries.insert(block, (data, self.clock));
        if self.entries.len() > capacity {
            // Evict the least recently used entry.
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(&b, _)| b)
                .expect("cache is nonempty when over capacity");
            self.entries.remove(&oldest);
            self.evictions += 1;
            obs_counters::evict();
        }
    }
}

impl<D: BlockDevice> BlockDevice for CacheStore<D> {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn read_block(&self, k: BlockIndex) -> DeviceResult<BlockData> {
        self.check_block(k)?;
        {
            let mut state = self.state.lock();
            if let Some((data, _)) = state.entries.get(&k.as_u64()) {
                let data = data.clone();
                state.hits += 1;
                obs_counters::hit();
                state.touch(k.as_u64());
                return Ok(data);
            }
        }
        // Miss: fetch outside the lock (the device may be a whole cluster),
        // then install.
        let data = self.inner.read_block(k)?;
        let mut state = self.state.lock();
        state.misses += 1;
        obs_counters::miss();
        state.insert(k.as_u64(), data.clone(), self.capacity);
        Ok(data)
    }

    fn write_block(&self, k: BlockIndex, data: BlockData) -> DeviceResult<()> {
        // Write-through: the device is the source of truth; cache only on
        // success.
        self.inner.write_block(k, data.clone())?;
        let mut state = self.state.lock();
        state.insert(k.as_u64(), data, self.capacity);
        Ok(())
    }

    fn flush(&self) -> DeviceResult<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A device that counts how often the backing store is actually read.
    struct CountingDevice {
        inner: MemStore,
        reads: AtomicU64,
    }

    impl CountingDevice {
        fn new() -> Self {
            CountingDevice {
                inner: MemStore::new(16, 32),
                reads: AtomicU64::new(0),
            }
        }
    }

    impl BlockDevice for CountingDevice {
        fn num_blocks(&self) -> u64 {
            self.inner.num_blocks()
        }
        fn block_size(&self) -> usize {
            self.inner.block_size()
        }
        fn read_block(&self, k: BlockIndex) -> DeviceResult<BlockData> {
            self.reads.fetch_add(1, Ordering::Relaxed);
            self.inner.read_block(k)
        }
        fn write_block(&self, k: BlockIndex, data: BlockData) -> DeviceResult<()> {
            self.inner.write_block(k, data)
        }
    }

    #[test]
    fn hits_bypass_the_device() {
        let cache = CacheStore::new(CountingDevice::new(), 4);
        let k = BlockIndex::new(1);
        cache.read_block(k).unwrap(); // miss
        cache.read_block(k).unwrap(); // hit
        cache.read_block(k).unwrap(); // hit
        assert_eq!(cache.inner().reads.load(Ordering::Relaxed), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert!((stats.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn writes_populate_the_cache() {
        let cache = CacheStore::new(CountingDevice::new(), 4);
        let k = BlockIndex::new(2);
        cache.write_block(k, BlockData::from(vec![7; 32])).unwrap();
        assert_eq!(cache.read_block(k).unwrap().as_slice(), &[7; 32]);
        assert_eq!(
            cache.inner().reads.load(Ordering::Relaxed),
            0,
            "write warmed the cache"
        );
    }

    #[test]
    fn write_through_is_durable() {
        let cache = CacheStore::new(MemStore::new(8, 16), 2);
        cache
            .write_block(BlockIndex::new(0), BlockData::from(vec![5; 16]))
            .unwrap();
        let inner = cache.into_inner();
        assert_eq!(
            inner.read_block(BlockIndex::new(0)).unwrap().as_slice(),
            &[5; 16]
        );
    }

    #[test]
    fn lru_eviction_keeps_recent_blocks() {
        let cache = CacheStore::new(CountingDevice::new(), 2);
        let (a, b, c) = (BlockIndex::new(0), BlockIndex::new(1), BlockIndex::new(2));
        cache.read_block(a).unwrap(); // miss: cache {a}
        cache.read_block(b).unwrap(); // miss: cache {a, b}
        cache.read_block(a).unwrap(); // hit, a freshened
        cache.read_block(c).unwrap(); // miss: evicts b
        let before = cache.inner().reads.load(Ordering::Relaxed);
        cache.read_block(a).unwrap(); // still cached
        assert_eq!(cache.inner().reads.load(Ordering::Relaxed), before);
        cache.read_block(b).unwrap(); // was evicted: device read
        assert_eq!(cache.inner().reads.load(Ordering::Relaxed), before + 1);
        // c evicted b, then re-reading b evicted the LRU survivor.
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn invalidate_clears_everything() {
        let cache = CacheStore::new(CountingDevice::new(), 4);
        cache.read_block(BlockIndex::new(0)).unwrap();
        cache.invalidate();
        cache.read_block(BlockIndex::new(0)).unwrap();
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn out_of_range_never_touches_cache() {
        let cache = CacheStore::new(MemStore::new(4, 16), 2);
        assert!(cache.read_block(BlockIndex::new(9)).is_err());
    }
}
