//! Block payloads.

use bytes::Bytes;
use core::fmt;

/// The data of one device block.
///
/// Cheap to clone (reference counted) so a single write can fan out to many
/// sites without copying the payload. The reliable device enforces that all
/// blocks of a device have the configured block size; `BlockData` itself is
/// size-agnostic so it can also carry partial transfers in tests.
///
/// # Examples
///
/// ```
/// use blockrep_types::BlockData;
///
/// let zero = BlockData::zeroed(512);
/// assert_eq!(zero.len(), 512);
/// let payload = BlockData::from(vec![1, 2, 3]);
/// assert_eq!(payload.as_slice(), &[1, 2, 3]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockData {
    bytes: Bytes,
}

impl BlockData {
    /// Creates a block filled with zero bytes, the content of a freshly
    /// formatted device.
    pub fn zeroed(len: usize) -> Self {
        BlockData {
            bytes: Bytes::from(vec![0u8; len]),
        }
    }

    /// Creates a block from raw bytes without copying.
    pub fn new(bytes: Bytes) -> Self {
        BlockData { bytes }
    }

    /// Length of the payload in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Borrows the payload.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Returns the underlying reference-counted buffer.
    pub fn into_bytes(self) -> Bytes {
        self.bytes
    }

    /// Whether every byte is zero (freshly formatted content).
    pub fn is_zeroed(&self) -> bool {
        self.bytes.iter().all(|&b| b == 0)
    }
}

impl fmt::Debug for BlockData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Blocks are large; show a short prefix instead of the whole payload.
        let prefix: Vec<u8> = self.bytes.iter().take(8).copied().collect();
        write!(f, "BlockData(len={}, {:02x?}…)", self.bytes.len(), prefix)
    }
}

impl From<Vec<u8>> for BlockData {
    fn from(value: Vec<u8>) -> Self {
        BlockData {
            bytes: Bytes::from(value),
        }
    }
}

impl From<&[u8]> for BlockData {
    fn from(value: &[u8]) -> Self {
        BlockData {
            bytes: Bytes::copy_from_slice(value),
        }
    }
}

impl From<Bytes> for BlockData {
    fn from(value: Bytes) -> Self {
        BlockData { bytes: value }
    }
}

impl AsRef<[u8]> for BlockData {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_block_is_zeroed() {
        let b = BlockData::zeroed(64);
        assert_eq!(b.len(), 64);
        assert!(b.is_zeroed());
        assert!(!b.is_empty());
    }

    #[test]
    fn from_vec_preserves_contents() {
        let b = BlockData::from(vec![9, 8, 7]);
        assert_eq!(b.as_slice(), &[9, 8, 7]);
        assert!(!b.is_zeroed());
    }

    #[test]
    fn clones_share_storage() {
        let b = BlockData::from(vec![1u8; 4096]);
        let c = b.clone();
        assert_eq!(b, c);
        // Bytes clones share the same backing allocation.
        assert_eq!(b.as_slice().as_ptr(), c.as_slice().as_ptr());
    }

    #[test]
    fn debug_is_truncated_and_nonempty() {
        let b = BlockData::from(vec![0xAB; 1024]);
        let s = format!("{b:?}");
        assert!(s.contains("len=1024"));
        assert!(s.len() < 120, "debug output should stay short: {s}");
    }

    #[test]
    fn roundtrip_through_bytes() {
        let b = BlockData::from(vec![5, 6]);
        let raw = b.clone().into_bytes();
        assert_eq!(BlockData::new(raw), b);
    }
}
