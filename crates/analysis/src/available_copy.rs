//! Availability of the available copy scheme (§4.2, Figure 7).

use crate::markov::CtmcBuilder;
use crate::math::check_args;

/// Index scheme for the 2n states of Figure 7 (shared with the naive chain
/// of Figure 8): `S_j` (j = 1..n available copies) then `S'_j` (all copies
/// failed, j = 0..n-1 comatose).
pub(crate) fn state_indices(n: usize) -> (impl Fn(usize) -> usize, impl Fn(usize) -> usize) {
    let avail = move |j: usize| {
        debug_assert!((1..=n).contains(&j));
        j - 1
    };
    let primed = move |j: usize| {
        debug_assert!(j < n);
        n + j
    };
    (avail, primed)
}

/// Builds the state-transition-rate diagram of Figure 7 for `n` copies with
/// failure rate `λ = ρ` and repair rate `µ = 1`.
///
/// States `S_j` have `j` available copies; once all copies have failed the
/// block sits in `S'_j` with `j` comatose copies, and only the recovery of
/// the *last copy to fail* (rate `µ`) returns it to service — at which point
/// every comatose copy repairs from it instantly, hence the transition
/// `S'_j → S_{j+1}`.
pub fn build_chain(n: usize, rho: f64) -> CtmcBuilder {
    check_args(n, rho);
    assert!(rho > 0.0, "the chain needs a positive failure rate");
    let (lambda, mu) = (rho, 1.0);
    let (s, sp) = state_indices(n);
    let mut chain = CtmcBuilder::new(2 * n);
    // Available states S_1..S_n.
    for j in 1..=n {
        if j < n {
            // Recovery of one of the n-j failed copies.
            chain.transition(s(j), s(j + 1), (n - j) as f64 * mu);
        }
        if j > 1 {
            // Failure of one of the j available copies.
            chain.transition(s(j), s(j - 1), j as f64 * lambda);
        } else {
            // The last available copy fails: total failure.
            chain.transition(s(1), sp(0), lambda);
        }
    }
    // Total-failure states S'_0..S'_{n-1}.
    for j in 0..n {
        // The last copy to fail recovers: all j comatose copies repair from
        // it immediately, giving j+1 available copies.
        chain.transition(sp(j), s(j + 1), mu);
        if j + 1 < n {
            // One of the other n-j-1 failed copies recovers but stays
            // comatose.
            chain.transition(sp(j), sp(j + 1), (n - j - 1) as f64 * mu);
        }
        if j > 0 {
            // A comatose copy fails again.
            chain.transition(sp(j), sp(j - 1), j as f64 * lambda);
        }
    }
    chain
}

/// Availability `A_A(n)`: the stationary probability of being in any state
/// `S_j` of Figure 7, for arbitrary `n`.
///
/// # Examples
///
/// ```
/// use blockrep_analysis::available_copy;
///
/// // Two available copies beat three voting copies (A_A(2) > A_V(3)).
/// let rho = 0.1;
/// assert!(
///     available_copy::availability(2, rho) > blockrep_analysis::voting::availability(3, rho)
/// );
/// ```
///
/// # Panics
///
/// Panics if `n == 0` or `rho` is negative or non-finite.
pub fn availability(n: usize, rho: f64) -> f64 {
    check_args(n, rho);
    if rho == 0.0 {
        return 1.0;
    }
    let chain = build_chain(n, rho);
    let pi = chain.stationary().expect("figure 7 chain is irreducible");
    pi[..n].iter().sum()
}

/// The closed forms printed in the paper — equations (2), (3) and (4) for
/// `n = 2, 3, 4` (plus the trivial `n = 1`). Returns `None` for larger `n`,
/// for which the paper gives no closed form; use [`availability`] instead.
///
/// # Panics
///
/// Panics if `n == 0` or `rho` is negative or non-finite.
pub fn availability_closed(n: usize, rho: f64) -> Option<f64> {
    check_args(n, rho);
    let r = rho;
    let value = match n {
        1 => 1.0 / (1.0 + r),
        2 => (1.0 + 3.0 * r + r * r) / (1.0 + r).powi(3),
        3 => {
            (2.0 + 9.0 * r + 17.0 * r.powi(2) + 11.0 * r.powi(3) + 2.0 * r.powi(4))
                / ((1.0 + r).powi(3) * (2.0 + 3.0 * r + 2.0 * r * r))
        }
        4 => {
            (6.0 + 37.0 * r
                + 99.0 * r.powi(2)
                + 152.0 * r.powi(3)
                + 124.0 * r.powi(4)
                + 47.0 * r.powi(5)
                + 6.0 * r.powi(6))
                / ((1.0 + r).powi(4) * (6.0 + 13.0 * r + 11.0 * r * r + 6.0 * r.powi(3)))
        }
        _ => return None,
    };
    Some(value)
}

/// The paper's inequality (5): `A_A(n) > 1 − nρⁿ/(1+ρ)ⁿ`, a lower bound
/// derived from the equilibrium of flows between available and comatose
/// states.
pub fn lower_bound(n: usize, rho: f64) -> f64 {
    check_args(n, rho);
    1.0 - n as f64 * rho.powi(n as i32) / (1.0 + rho).powi(n as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voting;

    #[test]
    fn single_copy_matches_site_availability() {
        for rho in [0.05, 0.2, 1.0] {
            assert!((availability(1, rho) - 1.0 / (1.0 + rho)).abs() < 1e-12);
            assert_eq!(availability_closed(1, rho).unwrap(), 1.0 / (1.0 + rho));
        }
    }

    #[test]
    fn markov_matches_equation_2() {
        for rho in [0.01, 0.05, 0.1, 0.2, 0.5, 1.0] {
            let closed = availability_closed(2, rho).unwrap();
            let markov = availability(2, rho);
            assert!(
                (closed - markov).abs() < 1e-10,
                "rho={rho}: closed {closed} markov {markov}"
            );
        }
    }

    #[test]
    fn markov_matches_equation_3() {
        for rho in [0.01, 0.05, 0.1, 0.2, 0.5, 1.0] {
            let closed = availability_closed(3, rho).unwrap();
            let markov = availability(3, rho);
            assert!(
                (closed - markov).abs() < 1e-10,
                "rho={rho}: closed {closed} markov {markov}"
            );
        }
    }

    #[test]
    fn markov_matches_equation_4() {
        for rho in [0.01, 0.05, 0.1, 0.2, 0.5, 1.0] {
            let closed = availability_closed(4, rho).unwrap();
            let markov = availability(4, rho);
            assert!(
                (closed - markov).abs() < 1e-10,
                "rho={rho}: closed {closed} markov {markov}"
            );
        }
    }

    #[test]
    fn no_closed_form_beyond_four() {
        assert!(availability_closed(5, 0.1).is_none());
    }

    #[test]
    fn perfect_copies_are_always_available() {
        for n in 1..8 {
            assert_eq!(availability(n, 0.0), 1.0);
        }
    }

    #[test]
    fn inequality_5_lower_bound_holds() {
        // Compare in unavailability space where the margin is resolvable:
        // Σp' < nρⁿ/(1+ρ)ⁿ (the availability itself rounds to 1.0 in f64
        // for large n and small ρ).
        for n in 2..=10 {
            for rho in [0.01, 0.05, 0.1, 0.5, 1.0, 2.0] {
                let chain = build_chain(n, rho);
                let pi = chain.stationary().unwrap();
                let unavail: f64 = pi[n..].iter().sum();
                let term = n as f64 * rho.powi(n as i32) / (1.0 + rho).powi(n as i32);
                assert!(
                    unavail < term * (1.0 + 1e-9),
                    "n={n} rho={rho}: 1-A_A={unavail} bound term={term}"
                );
            }
        }
    }

    #[test]
    fn theorem_4_1_ac_n_beats_voting_2n() {
        // A_A(n) > A_V(2n-1) = A_V(2n) for ρ <= 1.
        for n in 2..=8 {
            for rho in [0.01, 0.05, 0.1, 0.2, 0.5, 1.0] {
                let ac = availability(n, rho);
                let v = voting::availability(2 * n, rho);
                assert!(ac > v, "n={n} rho={rho}: A_A={ac} A_V(2n)={v}");
            }
        }
    }

    #[test]
    fn availability_increases_with_copies() {
        let rho = 0.1;
        for n in 1..8 {
            assert!(availability(n + 1, rho) > availability(n, rho));
        }
    }

    #[test]
    fn availability_decreases_with_rho() {
        let mut last = 1.0;
        for step in 1..=20 {
            let a = availability(4, step as f64 * 0.1);
            assert!(a < last);
            last = a;
        }
    }
}
