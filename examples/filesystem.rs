//! The paper's headline demo: an **unmodified file system** gains fault
//! tolerance by being pointed at a reliable device instead of a local disk.
//!
//! The same `FileSystem` code first runs over a plain in-memory disk, then
//! over a replicated reliable device whose sites crash mid-workload.
//!
//! ```text
//! cargo run --example filesystem
//! ```

use blockrep::core::{Cluster, ClusterOptions, ReliableDevice};
use blockrep::fs::FileSystem;
use blockrep::storage::MemStore;
use blockrep::types::{DeviceConfig, Scheme, SiteId};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Act 1: the file system over an ordinary local disk. -------------
    let local = FileSystem::format(MemStore::new(512, 512))?;
    local.mkdir("/home")?;
    local.write_file("/home/readme", b"single disk, single point of failure")?;
    println!("local disk: {:?}", local.read_dir("/home")?);

    // --- Act 2: the *same* file-system code over a reliable device. ------
    let cfg = DeviceConfig::builder(Scheme::AvailableCopy)
        .sites(3)
        .num_blocks(512)
        .block_size(512)
        .build()?;
    let cluster = Arc::new(Cluster::new(cfg, ClusterOptions::default()));
    let device = ReliableDevice::new(Arc::clone(&cluster), SiteId::new(0));
    let fs = FileSystem::format(device)?;

    fs.mkdir("/home")?;
    fs.mkdir("/home/alice")?;
    fs.write_file("/home/alice/thesis.tex", b"\\documentclass{article}...")?;

    // Crash the preferred site mid-workload.
    cluster.fail_site(SiteId::new(0));
    println!("s0 crashed; writing more files anyway…");
    fs.write_file("/home/alice/notes", b"written while s0 was down")?;

    // Crash another. One copy left — still fully functional.
    cluster.fail_site(SiteId::new(1));
    println!(
        "s1 crashed; device still available: {}",
        cluster.is_available()
    );
    assert_eq!(
        fs.read_file("/home/alice/thesis.tex")?,
        b"\\documentclass{article}..."
    );

    // Repair everyone; the recovered sites resynchronize block by block.
    cluster.repair_site(SiteId::new(0));
    cluster.repair_site(SiteId::new(1));
    println!("sites repaired; listing: {:?}", fs.read_dir("/home/alice")?);
    assert_eq!(
        fs.read_file("/home/alice/notes")?,
        b"written while s0 was down"
    );

    println!(
        "every file intact across 2 crashes + repairs; total traffic:\n{}",
        cluster.traffic()
    );
    Ok(())
}
