//! Versioned per-site storage.

use blockrep_types::{BlockData, BlockIndex, VersionNumber, VersionVector};

/// A fault injected into the *storage* layer at install time, modelling the
/// two ways a crash in the middle of a synchronous block write leaves the
/// disk inconsistent (cf. the torn-write regime studied for stable memory
/// devices).
///
/// Both faults are detectable on restart because every block carries a
/// checksum over `(version, data)`: a torn block commits the new metadata
/// with partially old data, a stale-version block commits the new data under
/// the old metadata, and in either case [`VersionedStore::scrub`] finds the
/// mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// The metadata (version + checksum) of the new write reached the disk,
    /// but only the first `keep` bytes of the data did; the tail still holds
    /// the previous contents.
    Torn {
        /// Number of leading bytes of the new payload that were persisted.
        keep: usize,
    },
    /// The data of the new write reached the disk but the crash hit before
    /// the version (and checksum) were updated, so the new bytes sit under
    /// the old version number.
    StaleVersion,
    /// The crash hit during the *journal* append: only the first `keep`
    /// bytes of the write-ahead record reached the log, and the block write
    /// itself never started. The block stays intact at its old value (the
    /// checksum still matches, so a scrub finds nothing) — with a journal in
    /// force the torn record is discarded by the recovery scan, and without
    /// one the write is simply lost before touching the platter.
    WalTorn {
        /// Number of leading bytes of the encoded record that were
        /// persisted to the journal.
        keep: usize,
    },
}

/// FNV-1a over the version number followed by the block data — cheap,
/// deterministic, and dependency-free; collision resistance is irrelevant
/// here because the threat model is a crash, not an adversary.
fn checksum(v: VersionNumber, data: &BlockData) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in v.as_u64().to_le_bytes().iter().chain(data.as_slice()) {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A site's disk as the consistency protocols see it: every block carries a
/// version number alongside its data.
///
/// This is deliberately *not* a [`BlockDevice`](crate::BlockDevice): version
/// numbers are protocol metadata that the file system must never observe.
/// The store is single-owner (each server process owns its disk) and
/// therefore needs no interior locking.
///
/// # Examples
///
/// ```
/// use blockrep_storage::VersionedStore;
/// use blockrep_types::{BlockData, BlockIndex, VersionNumber};
///
/// let mut disk = VersionedStore::new(8, 512);
/// let k = BlockIndex::new(0);
/// disk.install(k, BlockData::zeroed(512), VersionNumber::new(3));
/// assert_eq!(disk.version(k), VersionNumber::new(3));
/// ```
#[derive(Debug, Clone)]
pub struct VersionedStore {
    blocks: Vec<BlockData>,
    versions: VersionVector,
    checksums: Vec<u64>,
    block_size: usize,
}

impl VersionedStore {
    /// Creates a zero-filled store at version zero, the state of a freshly
    /// formatted replica.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks` or `block_size` is zero.
    pub fn new(num_blocks: u64, block_size: usize) -> Self {
        assert!(num_blocks > 0, "a device needs at least one block");
        assert!(block_size > 0, "block size must be nonzero");
        let zero_sum = checksum(VersionNumber::ZERO, &BlockData::zeroed(block_size));
        VersionedStore {
            blocks: vec![BlockData::zeroed(block_size); num_blocks as usize],
            versions: VersionVector::new(num_blocks),
            checksums: vec![zero_sum; num_blocks as usize],
            block_size,
        }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Size of each block in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The version number of block `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn version(&self, k: BlockIndex) -> VersionNumber {
        self.versions.get(k)
    }

    /// The data of block `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn data(&self, k: BlockIndex) -> BlockData {
        self.blocks[k.index()].clone()
    }

    /// Both the version and the data of block `k`, as shipped during lazy
    /// voting recovery.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn versioned(&self, k: BlockIndex) -> (VersionNumber, BlockData) {
        (self.versions.get(k), self.blocks[k.index()].clone())
    }

    /// Installs `data` at version `v`, but only if `v` is newer than the
    /// local copy. Returns whether the block was replaced.
    ///
    /// Installation is idempotent and monotone: replaying an old write (or
    /// the same write twice) never regresses a block — the invariant that
    /// keeps recovery safe.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range or the payload size differs from the
    /// block size.
    pub fn install(&mut self, k: BlockIndex, data: BlockData, v: VersionNumber) -> bool {
        assert_eq!(data.len(), self.block_size, "payload must match block size");
        if v > self.versions.get(k) {
            self.checksums[k.index()] = checksum(v, &data);
            self.blocks[k.index()] = data;
            self.versions.set(k, v);
            true
        } else {
            false
        }
    }

    /// Installs `data` at version `v` but leaves the block in the broken
    /// on-disk state that `fault` describes, simulating a crash in the
    /// middle of the synchronous block write. The same monotone guard as
    /// [`install`](Self::install) applies, so replaying a faulty old write
    /// is still a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range or the payload size differs from the
    /// block size.
    pub fn install_faulty(
        &mut self,
        k: BlockIndex,
        data: BlockData,
        v: VersionNumber,
        fault: StorageFault,
    ) -> bool {
        assert_eq!(data.len(), self.block_size, "payload must match block size");
        if v <= self.versions.get(k) {
            return false;
        }
        match fault {
            StorageFault::Torn { keep } => {
                // Metadata of the new write committed; data only partially.
                self.checksums[k.index()] = checksum(v, &data);
                self.versions.set(k, v);
                let keep = keep.min(self.block_size);
                let mut torn = self.blocks[k.index()].as_slice().to_vec();
                torn[..keep].copy_from_slice(&data.as_slice()[..keep]);
                self.blocks[k.index()] = BlockData::from(torn);
            }
            StorageFault::StaleVersion => {
                // Data committed; version and checksum still the old ones.
                self.blocks[k.index()] = data;
            }
            StorageFault::WalTorn { .. } => {
                // The crash preceded the block write: the store keeps its
                // old, checksum-consistent contents. The torn journal bytes
                // are the caller's to model (see `core::Replica`).
            }
        }
        true
    }

    /// Whether block `k`'s checksum matches its `(version, data)` pair —
    /// `false` exactly when a faulty install left the block broken.
    pub fn checksum_ok(&self, k: BlockIndex) -> bool {
        self.checksums[k.index()] == checksum(self.versions.get(k), &self.blocks[k.index()])
    }

    /// Restart-time integrity pass: every block whose checksum does not
    /// match its contents is reset to the freshly-formatted state (zeroed
    /// data at version zero), which re-enters the normal repair lattice —
    /// any peer holding a valid copy is newer and will overwrite it.
    /// Returns the blocks that were reset.
    pub fn scrub(&mut self) -> Vec<BlockIndex> {
        let mut reset = Vec::new();
        for k in BlockIndex::all(self.num_blocks()) {
            if !self.checksum_ok(k) {
                self.blocks[k.index()] = BlockData::zeroed(self.block_size);
                self.versions.set(k, VersionNumber::ZERO);
                self.checksums[k.index()] = checksum(VersionNumber::ZERO, &self.blocks[k.index()]);
                reset.push(k);
            }
        }
        reset
    }

    /// A copy of the full version vector, as exchanged during recovery.
    pub fn version_vector(&self) -> VersionVector {
        self.versions.clone()
    }

    /// Blocks (with versions and data) whose version here differs from
    /// `remote` — the repair payload an authoritative site sends to a
    /// recovering one. The diff runs in *both* directions: a recovering
    /// site can be ahead on a block it installed just before crashing
    /// without the update ever leaving the machine, and such an orphaned
    /// write must be rolled back to the source's copy (see
    /// [`VersionVector::divergent_from`]).
    ///
    /// # Panics
    ///
    /// Panics if `remote` covers a different number of blocks.
    pub fn diff_against(
        &self,
        remote: &VersionVector,
    ) -> Vec<(BlockIndex, VersionNumber, BlockData)> {
        remote
            .divergent_from(&self.versions)
            .into_iter()
            .map(|k| {
                let (v, d) = self.versioned(k);
                (k, v, d)
            })
            .collect()
    }

    /// Applies a repair payload produced by [`diff_against`](Self::diff_against)
    /// on an authoritative site. Unlike [`install`](Self::install) this
    /// overwrites unconditionally — the source decides, even when that
    /// means regressing a block the recovering site wrote orphaned just
    /// before crashing. Returns the number of blocks replaced.
    pub fn apply_repair(&mut self, blocks: Vec<(BlockIndex, VersionNumber, BlockData)>) -> usize {
        let mut replaced = 0;
        for (k, v, data) in blocks {
            assert_eq!(data.len(), self.block_size, "payload must match block size");
            self.checksums[k.index()] = checksum(v, &data);
            self.blocks[k.index()] = data;
            self.versions.set(k, v);
            replaced += 1;
        }
        replaced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_store_is_version_zero() {
        let s = VersionedStore::new(4, 16);
        for k in BlockIndex::all(4) {
            assert_eq!(s.version(k), VersionNumber::ZERO);
            assert!(s.data(k).is_zeroed());
        }
    }

    #[test]
    fn install_is_monotone() {
        let mut s = VersionedStore::new(2, 4);
        let k = BlockIndex::new(0);
        assert!(s.install(k, BlockData::from(vec![1; 4]), VersionNumber::new(2)));
        // Older and equal versions are rejected.
        assert!(!s.install(k, BlockData::from(vec![9; 4]), VersionNumber::new(1)));
        assert!(!s.install(k, BlockData::from(vec![9; 4]), VersionNumber::new(2)));
        assert_eq!(s.data(k).as_slice(), &[1; 4]);
        assert!(s.install(k, BlockData::from(vec![3; 4]), VersionNumber::new(3)));
        assert_eq!(s.version(k), VersionNumber::new(3));
    }

    #[test]
    fn diff_and_repair_synchronize_stores() {
        let mut current = VersionedStore::new(4, 4);
        let mut stale = VersionedStore::new(4, 4);
        current.install(
            BlockIndex::new(1),
            BlockData::from(vec![1; 4]),
            VersionNumber::new(5),
        );
        current.install(
            BlockIndex::new(3),
            BlockData::from(vec![3; 4]),
            VersionNumber::new(1),
        );
        // stale is *ahead* on a block the source never saw — an orphaned
        // write installed just before a crash. The source is authoritative:
        // repair rolls the orphan back, otherwise the next write at the
        // colliding version would leave the replicas permanently divergent.
        stale.install(
            BlockIndex::new(2),
            BlockData::from(vec![2; 4]),
            VersionNumber::new(7),
        );

        let payload = current.diff_against(&stale.version_vector());
        assert_eq!(payload.len(), 3);
        let repaired = stale.apply_repair(payload);
        assert_eq!(repaired, 3);
        assert_eq!(stale.version(BlockIndex::new(1)), VersionNumber::new(5));
        assert_eq!(stale.data(BlockIndex::new(3)).as_slice(), &[3; 4]);
        assert_eq!(stale.version(BlockIndex::new(2)), VersionNumber::ZERO);
        assert!(stale.data(BlockIndex::new(2)).is_zeroed());
        // The stores now agree bit for bit.
        assert!(current.diff_against(&stale.version_vector()).is_empty());
    }

    #[test]
    fn diff_against_identical_is_empty() {
        let s = VersionedStore::new(4, 4);
        assert!(s.diff_against(&s.version_vector()).is_empty());
    }

    #[test]
    fn torn_install_breaks_checksum_and_scrub_resets() {
        let mut s = VersionedStore::new(2, 4);
        let k = BlockIndex::new(0);
        s.install(k, BlockData::from(vec![1; 4]), VersionNumber::new(1));
        assert!(s.install_faulty(
            k,
            BlockData::from(vec![2; 4]),
            VersionNumber::new(2),
            StorageFault::Torn { keep: 2 },
        ));
        // New metadata, half-old data.
        assert_eq!(s.version(k), VersionNumber::new(2));
        assert_eq!(s.data(k).as_slice(), &[2, 2, 1, 1]);
        assert!(!s.checksum_ok(k));
        assert!(s.checksum_ok(BlockIndex::new(1)));

        let reset = s.scrub();
        assert_eq!(reset, vec![k]);
        assert_eq!(s.version(k), VersionNumber::ZERO);
        assert!(s.data(k).is_zeroed());
        assert!(s.checksum_ok(k));
        assert!(s.scrub().is_empty());
    }

    #[test]
    fn stale_version_install_breaks_checksum() {
        let mut s = VersionedStore::new(1, 4);
        let k = BlockIndex::new(0);
        s.install(k, BlockData::from(vec![1; 4]), VersionNumber::new(1));
        assert!(s.install_faulty(
            k,
            BlockData::from(vec![9; 4]),
            VersionNumber::new(2),
            StorageFault::StaleVersion,
        ));
        // New data under the old version number.
        assert_eq!(s.version(k), VersionNumber::new(1));
        assert_eq!(s.data(k).as_slice(), &[9; 4]);
        assert!(!s.checksum_ok(k));
        s.scrub();
        // A clean reinstall at the lost version now succeeds again.
        assert!(s.install(k, BlockData::from(vec![9; 4]), VersionNumber::new(2)));
        assert!(s.checksum_ok(k));
    }

    #[test]
    fn faulty_install_respects_monotone_guard() {
        let mut s = VersionedStore::new(1, 4);
        let k = BlockIndex::new(0);
        s.install(k, BlockData::from(vec![1; 4]), VersionNumber::new(3));
        assert!(!s.install_faulty(
            k,
            BlockData::from(vec![9; 4]),
            VersionNumber::new(3),
            StorageFault::Torn { keep: 4 },
        ));
        assert!(s.checksum_ok(k));
        assert_eq!(s.data(k).as_slice(), &[1; 4]);
    }

    #[test]
    fn wal_torn_install_leaves_store_untouched() {
        let mut s = VersionedStore::new(1, 4);
        let k = BlockIndex::new(0);
        s.install(k, BlockData::from(vec![1; 4]), VersionNumber::new(1));
        assert!(s.install_faulty(
            k,
            BlockData::from(vec![9; 4]),
            VersionNumber::new(2),
            StorageFault::WalTorn { keep: 5 },
        ));
        // The crash hit the journal append, not the block write: the old
        // copy survives, the checksum still matches, scrub finds nothing.
        assert_eq!(s.version(k), VersionNumber::new(1));
        assert_eq!(s.data(k).as_slice(), &[1; 4]);
        assert!(s.checksum_ok(k));
        assert!(s.scrub().is_empty());
        // The lost version can be reinstalled cleanly.
        assert!(s.install(k, BlockData::from(vec![9; 4]), VersionNumber::new(2)));
    }

    #[test]
    #[should_panic(expected = "payload must match block size")]
    fn install_rejects_wrong_size() {
        let mut s = VersionedStore::new(1, 4);
        s.install(
            BlockIndex::new(0),
            BlockData::zeroed(5),
            VersionNumber::new(1),
        );
    }
}
