//! Offline placeholder for `serde`.
//!
//! `blockrep-types` declares serde support behind an off-by-default feature.
//! With no registry access the real crate cannot be fetched, so this
//! placeholder exists purely to satisfy Cargo's resolution of the optional
//! dependency; enabling the `serde` feature of `blockrep-types` offline is
//! not supported (the derive macros are not provided).

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Stand-in for the `serde::de` module.
pub mod de {
    /// Marker trait standing in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
}
