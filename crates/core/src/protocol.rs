//! Scheme dispatch and the recovery sweep.
//!
//! These are the crate-internal entry points both cluster runtimes
//! ([`Cluster`](crate::Cluster) and [`LiveCluster`](crate::LiveCluster))
//! call; they route each operation to the protocol selected by the device
//! configuration.

use crate::backend::Backend;
use crate::{available_copy, naive, obs_hooks, voting};
use blockrep_types::{BlockData, BlockIndex, DeviceResult, Scheme, SiteId, SiteState};

/// Reads block `k`, coordinated by `origin`, under the configured scheme.
///
/// Holds `k`'s block-lock shard for shared access for the duration: reads
/// of the same block run concurrently, but never interleave with a writer
/// of that block (see [`crate::locks`]).
pub(crate) fn read<B: Backend + ?Sized>(
    b: &B,
    origin: SiteId,
    k: BlockIndex,
) -> DeviceResult<BlockData> {
    let _timer = obs_hooks::timer(obs_hooks::read_latency);
    let _op = obs_hooks::op_span(obs_hooks::op_read, origin.index() as u32);
    let _block = b.block_locks().read_guard(k);
    match b.config().scheme() {
        Scheme::Voting => voting::read(b, origin, k),
        Scheme::AvailableCopy => available_copy::read(b, origin, k),
        Scheme::NaiveAvailableCopy => naive::read(b, origin, k),
    }
}

/// Writes block `k`, coordinated by `origin`, under the configured scheme.
///
/// Holds `k`'s block-lock shard exclusively for the duration, so the
/// vote → `max(v) + 1` → install sequence is atomic with respect to every
/// other operation on the same block; operations on distinct blocks (in
/// distinct shards) proceed in parallel.
pub(crate) fn write<B: Backend + ?Sized>(
    b: &B,
    origin: SiteId,
    k: BlockIndex,
    data: &BlockData,
) -> DeviceResult<()> {
    let _timer = obs_hooks::timer(obs_hooks::write_latency);
    let _op = obs_hooks::op_span(obs_hooks::op_write, origin.index() as u32);
    let _block = b.block_locks().write_guard(k);
    match b.config().scheme() {
        Scheme::Voting => voting::write(b, origin, k, data),
        Scheme::AvailableCopy => available_copy::write(b, origin, k, data, false),
        Scheme::NaiveAvailableCopy => naive::write(b, origin, k, data),
    }
}

/// Reads a run of distinct blocks in one batched protocol round, under the
/// configured scheme. Byte-identical (and §5 traffic-identical) to reading
/// each block in turn; only the number of physical exchanges shrinks.
pub(crate) fn read_many<B: Backend + ?Sized>(
    b: &B,
    origin: SiteId,
    ks: &[BlockIndex],
) -> DeviceResult<Vec<BlockData>> {
    let _timer = obs_hooks::timer(obs_hooks::read_latency);
    let _op = obs_hooks::op_span(obs_hooks::op_read_many, origin.index() as u32);
    let _blocks = b.block_locks().read_guard_many(ks);
    match b.config().scheme() {
        Scheme::Voting => voting::read_many(b, origin, ks),
        Scheme::AvailableCopy => available_copy::read_many(b, origin, ks),
        Scheme::NaiveAvailableCopy => naive::read_many(b, origin, ks),
    }
}

/// Writes a run of distinct blocks in one batched protocol round, under the
/// configured scheme. State- and §5 traffic-identical to writing each block
/// in turn against an unchanging cluster.
pub(crate) fn write_many<B: Backend + ?Sized>(
    b: &B,
    origin: SiteId,
    writes: &[(BlockIndex, BlockData)],
) -> DeviceResult<()> {
    let _timer = obs_hooks::timer(obs_hooks::write_latency);
    let _op = obs_hooks::op_span(obs_hooks::op_write_many, origin.index() as u32);
    let ks: Vec<BlockIndex> = writes.iter().map(|&(k, _)| k).collect();
    let _blocks = b.block_locks().write_guard_many(&ks);
    match b.config().scheme() {
        Scheme::Voting => voting::write_many(b, origin, writes),
        Scheme::AvailableCopy => available_copy::write_many(b, origin, writes, false),
        Scheme::NaiveAvailableCopy => naive::write_many(b, origin, writes),
    }
}

/// Fail-stops site `s`. Every outstanding read lease dies with it: the
/// failed site may have been a lease holder, so the lease epoch is bumped
/// before the survivors carry on.
pub(crate) fn fail<B: Backend + ?Sized>(b: &B, s: SiteId) {
    b.leases().bump_epoch();
    match b.config().scheme() {
        Scheme::Voting => b.set_local_state(s, SiteState::Failed),
        Scheme::AvailableCopy => available_copy::fail(b, s, false),
        Scheme::NaiveAvailableCopy => naive::fail(b, s),
    }
}

/// Restarts site `s` after a failure and runs the recovery sweep. Bumps
/// the lease epoch: the repaired site holds stale blocks and must not be
/// named by any pre-repair grant.
pub(crate) fn repair<B: Backend + ?Sized>(b: &B, s: SiteId) {
    let _timer = obs_hooks::timer(obs_hooks::recovery_latency);
    let _op = obs_hooks::op_span(obs_hooks::op_repair, s.index() as u32);
    b.leases().bump_epoch();
    match b.config().scheme() {
        Scheme::Voting => voting::repair(b, s),
        Scheme::AvailableCopy => {
            available_copy::begin_recovery(b, s);
            sweep(b);
        }
        Scheme::NaiveAvailableCopy => {
            naive::begin_recovery(b, s);
            sweep(b);
        }
    }
}

/// Promotes every comatose site whose recovery condition is now satisfied,
/// repeating until a fixpoint: one promotion (e.g. the last site to fail
/// coming back) can unblock the rest, which then repair from it.
pub(crate) fn sweep<B: Backend + ?Sized>(b: &B) {
    let naive = match b.config().scheme() {
        Scheme::Voting => return, // voting has no comatose state
        Scheme::AvailableCopy => false,
        Scheme::NaiveAvailableCopy => true,
    };
    loop {
        let mut progressed = false;
        for c in b.config().site_ids() {
            if b.local_state(c) == SiteState::Comatose
                && available_copy::try_complete_recovery(b, c, naive)
            {
                progressed = true;
            }
        }
        if !progressed {
            return;
        }
    }
}

/// Whether the replicated block is currently available under the configured
/// scheme's own criterion: a live quorum for voting, an available copy for
/// the others.
pub(crate) fn is_available<B: Backend + ?Sized>(b: &B) -> bool {
    match b.config().scheme() {
        Scheme::Voting => voting::is_available(b),
        Scheme::AvailableCopy | Scheme::NaiveAvailableCopy => available_copy::is_available(b),
    }
}
