//! Naive available copy (§3.3, Figure 6).
//!
//! Identical to [`available copy`](crate::available_copy) on the hot path —
//! write to all available copies, read locally — but it "does not maintain
//! any failure information": no was-available sets, no write
//! acknowledgements, and the recovery rule degenerates to Figure 6's
//! `SIMPLE_RECOVERY`: repair from any available site, or after a total
//! failure wait until *all* sites have recovered and adopt the highest
//! version.
//!
//! The paper's conclusion is that this is the algorithm of choice: one
//! multicast per write, no bookkeeping, and (§4.4) an availability loss that
//! is negligible at realistic failure-to-repair ratios.

use crate::available_copy;
use crate::backend::Backend;
use blockrep_types::{BlockData, BlockIndex, DeviceResult, SiteId};

/// Read: local, free. See [`available_copy::read`].
pub(crate) fn read<B: Backend + ?Sized>(
    b: &B,
    origin: SiteId,
    k: BlockIndex,
) -> DeviceResult<BlockData> {
    available_copy::read(b, origin, k)
}

/// Write to all available copies with no acknowledgements — "the naive
/// available copy scheme need only broadcast one message when a write is
/// performed".
pub(crate) fn write<B: Backend + ?Sized>(
    b: &B,
    origin: SiteId,
    k: BlockIndex,
    data: &BlockData,
) -> DeviceResult<()> {
    available_copy::write(b, origin, k, data, true)
}

/// Vectored read: local, free. See [`available_copy::read_many`].
pub(crate) fn read_many<B: Backend + ?Sized>(
    b: &B,
    origin: SiteId,
    ks: &[BlockIndex],
) -> DeviceResult<Vec<BlockData>> {
    available_copy::read_many(b, origin, ks)
}

/// Vectored write to all available copies, still with no acknowledgements:
/// one batched broadcast for the whole run of blocks.
pub(crate) fn write_many<B: Backend + ?Sized>(
    b: &B,
    origin: SiteId,
    writes: &[(BlockIndex, BlockData)],
) -> DeviceResult<()> {
    available_copy::write_many(b, origin, writes, true)
}

/// Fail-stop a site; the naive scheme records nothing about it.
pub(crate) fn fail<B: Backend + ?Sized>(b: &B, s: SiteId) {
    available_copy::fail(b, s, true)
}

/// Restart a site: comatose + recovery query, then the sweep applies
/// Figure 6's `SIMPLE_RECOVERY` via
/// [`available_copy::try_complete_recovery`] with `naive = true`.
pub(crate) fn begin_recovery<B: Backend + ?Sized>(b: &B, s: SiteId) {
    available_copy::begin_recovery(b, s)
}
