//! Virtual simulation time.

use core::fmt;
use core::ops::{Add, Sub};

/// A point on the simulation clock, in abstract time units.
///
/// The availability analysis is parameterized by the failure-to-repair rate
/// ratio `ρ = λ/μ` only, so experiments conventionally set `μ = 1` and let
/// one time unit equal one mean repair time.
///
/// `SimTime` is totally ordered; constructing a NaN time panics, which is
/// what makes the ordering total.
///
/// # Examples
///
/// ```
/// use blockrep_sim::SimTime;
///
/// let t = SimTime::new(1.5) + SimTime::new(2.0);
/// assert_eq!(t, SimTime::new(3.5));
/// assert!(SimTime::ZERO < t);
/// assert_eq!((t - SimTime::new(3.0)).as_f64(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point.
    ///
    /// # Panics
    ///
    /// Panics if `t` is NaN or negative.
    pub fn new(t: f64) -> Self {
        assert!(!t.is_nan(), "simulation time cannot be NaN");
        assert!(t >= 0.0, "simulation time cannot be negative");
        SimTime(t)
    }

    /// The raw value in time units.
    pub const fn as_f64(self) -> f64 {
        self.0
    }
}

// SimTime values are never NaN (enforced by `new`), so the ordering is total.
impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime::new(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics if the result would be negative.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime::new(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}", self.0)
    }
}

impl From<f64> for SimTime {
    fn from(value: f64) -> Self {
        SimTime::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.5);
        assert!(a < b);
        assert_eq!(a + b, SimTime::new(3.5));
        assert_eq!(b - a, SimTime::new(1.5));
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_rejected() {
        let _ = SimTime::new(-1.0);
    }

    #[test]
    fn display_shows_value() {
        assert_eq!(SimTime::new(1.25).to_string(), "t=1.250000");
    }
}
