//! File-backed block store.

use crate::BlockDevice;
use blockrep_types::{BlockData, BlockIndex, DeviceResult};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// A block store backed by a regular file, one block at offset
/// `k * block_size`.
///
/// This is what a production deployment of the reliable device would put
/// under each server process; the geometry (block count and size) is fixed at
/// creation and persisted implicitly by the file length.
///
/// # Examples
///
/// ```no_run
/// use blockrep_storage::{BlockDevice, FileStore};
/// use blockrep_types::{BlockData, BlockIndex};
///
/// # fn main() -> Result<(), blockrep_types::DeviceError> {
/// let disk = FileStore::create("/tmp/site0.img", 128, 512)?;
/// disk.write_block(BlockIndex::new(5), BlockData::from(vec![1u8; 512]))?;
/// disk.flush()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FileStore {
    file: Mutex<File>,
    num_blocks: u64,
    block_size: usize,
}

impl FileStore {
    /// Creates (or truncates) the backing file and zero-fills it to
    /// `num_blocks * block_size` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`blockrep_types::DeviceError::Io`] if the file cannot be
    /// created or sized.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks` or `block_size` is zero.
    pub fn create(
        path: impl AsRef<Path>,
        num_blocks: u64,
        block_size: usize,
    ) -> DeviceResult<Self> {
        assert!(num_blocks > 0, "a device needs at least one block");
        assert!(block_size > 0, "block size must be nonzero");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len(num_blocks * block_size as u64)?;
        Ok(FileStore {
            file: Mutex::new(file),
            num_blocks,
            block_size,
        })
    }

    /// Opens an existing backing file created by [`FileStore::create`],
    /// inferring the block count from the file length.
    ///
    /// # Errors
    ///
    /// Returns [`blockrep_types::DeviceError::Io`] if the file cannot be
    /// opened, or [`blockrep_types::DeviceError::InvalidConfig`] if its
    /// length is not a multiple of `block_size`.
    pub fn open(path: impl AsRef<Path>, block_size: usize) -> DeviceResult<Self> {
        assert!(block_size > 0, "block size must be nonzero");
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len == 0 || len % block_size as u64 != 0 {
            return Err(blockrep_types::DeviceError::InvalidConfig(format!(
                "file length {len} is not a positive multiple of block size {block_size}"
            )));
        }
        Ok(FileStore {
            num_blocks: len / block_size as u64,
            file: Mutex::new(file),
            block_size,
        })
    }
}

impl BlockDevice for FileStore {
    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn block_size(&self) -> usize {
        self.block_size
    }

    fn read_block(&self, k: BlockIndex) -> DeviceResult<BlockData> {
        self.check_block(k)?;
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(k.as_u64() * self.block_size as u64))?;
        let mut buf = vec![0u8; self.block_size];
        file.read_exact(&mut buf)?;
        Ok(BlockData::from(buf))
    }

    fn write_block(&self, k: BlockIndex, data: BlockData) -> DeviceResult<()> {
        self.check_block(k)?;
        self.check_payload(&data)?;
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(k.as_u64() * self.block_size as u64))?;
        file.write_all(data.as_slice())?;
        Ok(())
    }

    fn flush(&self) -> DeviceResult<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("blockrep-filestore-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn create_write_read_roundtrip() {
        let path = temp_path("roundtrip");
        let disk = FileStore::create(&path, 8, 64).unwrap();
        disk.write_block(BlockIndex::new(3), BlockData::from(vec![0xAD; 64]))
            .unwrap();
        assert_eq!(
            disk.read_block(BlockIndex::new(3)).unwrap().as_slice()[0],
            0xAD
        );
        assert!(disk.read_block(BlockIndex::new(4)).unwrap().is_zeroed());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn reopen_preserves_contents_and_geometry() {
        let path = temp_path("reopen");
        {
            let disk = FileStore::create(&path, 4, 32).unwrap();
            disk.write_block(BlockIndex::new(1), BlockData::from(vec![7; 32]))
                .unwrap();
            disk.flush().unwrap();
        }
        let disk = FileStore::open(&path, 32).unwrap();
        assert_eq!(disk.num_blocks(), 4);
        assert_eq!(
            disk.read_block(BlockIndex::new(1)).unwrap().as_slice()[0],
            7
        );
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn open_rejects_misaligned_file() {
        let path = temp_path("misaligned");
        std::fs::write(&path, vec![0u8; 33]).unwrap();
        assert!(FileStore::open(&path, 32).is_err());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn out_of_range_rejected() {
        let path = temp_path("range");
        let disk = FileStore::create(&path, 2, 16).unwrap();
        assert!(disk.read_block(BlockIndex::new(2)).is_err());
        std::fs::remove_file(path).unwrap();
    }
}
