//! Network-traffic shoot-out (Figures 11/12 in miniature): measured
//! high-level transmissions per operation for each scheme, in both network
//! environments, next to the §5 cost model.
//!
//! ```text
//! cargo run --release --example traffic_comparison
//! ```

use blockrep::core::simulate::traffic::{measure, TrafficConfig};
use blockrep::net::DeliveryMode;
use blockrep::types::Scheme;

fn main() {
    let n = 5;
    println!("measured vs modeled transmissions, n = {n}, rho = 0.05, read:write = 2.5\n");
    for mode in DeliveryMode::ALL {
        println!("### {mode}\n");
        println!("| scheme | read (meas/model) | write (meas/model) | recovery (meas/model) |");
        println!("|---|---|---|---|");
        for scheme in Scheme::ALL {
            let est = measure(&TrafficConfig::new(scheme, n, mode));
            println!(
                "| {} | {:.2} / {:.2} | {:.2} / {:.2} | {:.2} / {:.2} |",
                scheme,
                est.per_read,
                est.model.read,
                est.per_write,
                est.model.write,
                est.per_recovery,
                est.model.recovery,
            );
        }
        println!();
    }
    println!("The paper's verdict, reproduced: reads are free under the available copy");
    println!("schemes and nearly as dear as writes under voting; naive available copy");
    println!("writes cost a single multicast; voting alone pays nothing on recovery");
    println!("(block-level laziness) but loses overall unless failures outnumber accesses.");
}
