//! Device configuration: scheme selection, voting weights, quorums.

use crate::{DeviceError, DeviceResult, SiteId};
use core::fmt;

/// The consistency control scheme managing the replicated blocks (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Scheme {
    /// Majority consensus voting with per-block versions and lazy,
    /// access-time block recovery (§3.1, Figures 3–4).
    Voting,
    /// Available copy with was-available sets and closure-based recovery
    /// (§3.2, Figure 5).
    AvailableCopy,
    /// Naive available copy: no failure bookkeeping; after a total failure
    /// recovery waits for all sites (§3.3, Figure 6).
    NaiveAvailableCopy,
}

impl Scheme {
    /// All three schemes, in the order the paper presents them.
    pub const ALL: [Scheme; 3] = [
        Scheme::Voting,
        Scheme::AvailableCopy,
        Scheme::NaiveAvailableCopy,
    ];

    /// Short label used in tables and benches.
    pub const fn label(self) -> &'static str {
        match self {
            Scheme::Voting => "voting",
            Scheme::AvailableCopy => "available-copy",
            Scheme::NaiveAvailableCopy => "naive-available-copy",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How an available copy configuration learns which sites hold the most
/// recent data.
///
/// The paper's availability model (Figure 7) assumes the *last site to fail*
/// is known exactly, which requires updating availability information when a
/// failure is detected. The protocol of §3.2 instead refreshes was-available
/// sets only on writes and repairs, trading "some small increase in recovery
/// time" for less traffic. Both variants are implemented; the difference is
/// measured by an ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FailureTracking {
    /// Was-available sets are refreshed whenever a failure is detected, so
    /// after a total failure the block recovers as soon as the last site to
    /// fail recovers. Matches the Markov chain of Figure 7.
    #[default]
    OnFailure,
    /// Was-available sets are refreshed only by writes and repairs (the
    /// traffic-minimizing variant described in §3.2's relaxation).
    OnWrite,
}

/// A voting weight.
///
/// Weights are small integers; quorum tests compare integer sums, so draw
/// conditions are resolved exactly rather than with floating-point epsilons.
/// The paper breaks even-`n` ties by nudging one copy's weight "by a small
/// quantity"; [`Weight::tie_broken`] realizes that by doubling every weight
/// and adding one to the distinguished site's.
///
/// # Examples
///
/// ```
/// use blockrep_types::Weight;
///
/// let w = Weight::tie_broken(4);
/// assert_eq!(w, vec![Weight::new(3), Weight::new(2), Weight::new(2), Weight::new(2)]);
/// let total: u64 = w.iter().map(|w| w.value() as u64).sum();
/// assert_eq!(total, 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Weight(u32);

impl Weight {
    /// Creates a weight.
    pub const fn new(value: u32) -> Self {
        Weight(value)
    }

    /// The raw weight value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// The weight widened to `u64`, the unit quorum arithmetic uses.
    pub const fn as_u64(self) -> u64 {
        self.0 as u64
    }

    /// The paper's equal-weight assignment with the even-`n` tie break:
    /// every site gets weight 2 and site 0 gets weight 3 when `n` is even.
    /// For odd `n` ties are impossible, so every site gets weight 2.
    pub fn tie_broken(n: usize) -> Vec<Weight> {
        (0..n)
            .map(|i| {
                if n % 2 == 0 && i == 0 {
                    Weight(3)
                } else {
                    Weight(2)
                }
            })
            .collect()
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Static configuration of one reliable device.
///
/// Construct with [`DeviceConfig::builder`]; validation happens at
/// [`DeviceConfigBuilder::build`].
///
/// # Examples
///
/// ```
/// use blockrep_types::{DeviceConfig, Scheme};
///
/// let cfg = DeviceConfig::builder(Scheme::Voting)
///     .sites(5)
///     .num_blocks(128)
///     .block_size(512)
///     .build()?;
/// assert_eq!(cfg.total_weight(), 10);
/// assert_eq!(cfg.read_quorum(), 6); // strict majority of 10
/// # Ok::<(), blockrep_types::DeviceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeviceConfig {
    scheme: Scheme,
    weights: Vec<Weight>,
    num_blocks: u64,
    block_size: usize,
    read_quorum: u64,
    write_quorum: u64,
    failure_tracking: FailureTracking,
    journaled: bool,
}

impl DeviceConfig {
    /// Starts building a configuration for the given scheme with defaults:
    /// 3 sites, 64 blocks of 512 bytes, majority quorums, no journal.
    pub fn builder(scheme: Scheme) -> DeviceConfigBuilder {
        DeviceConfigBuilder {
            scheme,
            sites: 3,
            weights: None,
            num_blocks: 64,
            block_size: 512,
            read_quorum: None,
            write_quorum: None,
            failure_tracking: FailureTracking::default(),
            journaled: false,
        }
    }

    /// The consistency scheme in force.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Number of sites holding copies.
    pub fn num_sites(&self) -> usize {
        self.weights.len()
    }

    /// The voting weight of a site.
    ///
    /// # Panics
    ///
    /// Panics if the site does not belong to this device.
    pub fn weight(&self, site: SiteId) -> Weight {
        self.weights[site.index()]
    }

    /// All per-site weights, indexed by site.
    pub fn weights(&self) -> &[Weight] {
        &self.weights
    }

    /// Sum of all weights.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().map(|w| w.value() as u64).sum()
    }

    /// Number of blocks on the device.
    pub fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    /// Size of each block in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Minimum total weight a read quorum must gather.
    pub fn read_quorum(&self) -> u64 {
        self.read_quorum
    }

    /// Minimum total weight a write quorum must gather.
    pub fn write_quorum(&self) -> u64 {
        self.write_quorum
    }

    /// Failure-information policy for available copy (ignored by the other
    /// schemes).
    pub fn failure_tracking(&self) -> FailureTracking {
        self.failure_tracking
    }

    /// Whether each site keeps a write-ahead journal of its installs, so a
    /// restart replays committed records instead of scrubbing broken blocks
    /// back to the freshly-formatted state.
    pub fn journaled(&self) -> bool {
        self.journaled
    }

    /// Flips the per-site journal on an already-built configuration —
    /// useful for replaying a generated chaos script with durability
    /// turned on without disturbing the generator's random stream.
    pub fn set_journaled(&mut self, on: bool) {
        self.journaled = on;
    }

    /// Iterates over this device's site identifiers.
    pub fn site_ids(&self) -> impl DoubleEndedIterator<Item = SiteId> + ExactSizeIterator {
        SiteId::all(self.weights.len())
    }

    /// Whether `site` belongs to this device.
    pub fn contains_site(&self, site: SiteId) -> bool {
        site.index() < self.weights.len()
    }
}

/// Incremental builder for [`DeviceConfig`]; see [`DeviceConfig::builder`].
#[derive(Debug, Clone)]
pub struct DeviceConfigBuilder {
    scheme: Scheme,
    sites: usize,
    weights: Option<Vec<Weight>>,
    num_blocks: u64,
    block_size: usize,
    read_quorum: Option<u64>,
    write_quorum: Option<u64>,
    failure_tracking: FailureTracking,
    journaled: bool,
}

impl DeviceConfigBuilder {
    /// Sets the number of sites (equal weights with the paper's tie break).
    pub fn sites(&mut self, n: usize) -> &mut Self {
        self.sites = n;
        self
    }

    /// Sets explicit per-site weights (overrides [`sites`](Self::sites)).
    pub fn weights(&mut self, weights: Vec<Weight>) -> &mut Self {
        self.sites = weights.len();
        self.weights = Some(weights);
        self
    }

    /// Sets the number of blocks on the device.
    pub fn num_blocks(&mut self, n: u64) -> &mut Self {
        self.num_blocks = n;
        self
    }

    /// Sets the block size in bytes.
    pub fn block_size(&mut self, bytes: usize) -> &mut Self {
        self.block_size = bytes;
        self
    }

    /// Sets an explicit read quorum (defaults to a strict majority).
    pub fn read_quorum(&mut self, weight: u64) -> &mut Self {
        self.read_quorum = Some(weight);
        self
    }

    /// Sets an explicit write quorum (defaults to a strict majority).
    pub fn write_quorum(&mut self, weight: u64) -> &mut Self {
        self.write_quorum = Some(weight);
        self
    }

    /// Selects the failure-information policy for available copy.
    pub fn failure_tracking(&mut self, policy: FailureTracking) -> &mut Self {
        self.failure_tracking = policy;
        self
    }

    /// Enables the per-site write-ahead journal (defaults to off).
    pub fn journaled(&mut self, on: bool) -> &mut Self {
        self.journaled = on;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidConfig`] if there are no sites or
    /// blocks, the block size is zero, any weight is zero, or the quorums
    /// violate the intersection requirements (`r + w > total` and
    /// `2w > total`).
    pub fn build(&self) -> DeviceResult<DeviceConfig> {
        if self.sites == 0 {
            return Err(DeviceError::InvalidConfig(
                "at least one site required".into(),
            ));
        }
        if self.num_blocks == 0 {
            return Err(DeviceError::InvalidConfig(
                "at least one block required".into(),
            ));
        }
        if self.block_size == 0 {
            return Err(DeviceError::InvalidConfig(
                "block size must be nonzero".into(),
            ));
        }
        let weights = self
            .weights
            .clone()
            .unwrap_or_else(|| Weight::tie_broken(self.sites));
        if weights.iter().any(|w| w.value() == 0) {
            return Err(DeviceError::InvalidConfig("weights must be nonzero".into()));
        }
        let total: u64 = weights.iter().map(|w| w.value() as u64).sum();
        let majority = total / 2 + 1;
        let read_quorum = self.read_quorum.unwrap_or(majority);
        let write_quorum = self.write_quorum.unwrap_or(majority);
        if self.scheme == Scheme::Voting {
            if read_quorum + write_quorum <= total {
                return Err(DeviceError::InvalidConfig(format!(
                    "read quorum {read_quorum} + write quorum {write_quorum} must exceed total weight {total}"
                )));
            }
            if 2 * write_quorum <= total {
                return Err(DeviceError::InvalidConfig(format!(
                    "write quorum {write_quorum} must exceed half the total weight {total}"
                )));
            }
            if read_quorum > total || write_quorum > total {
                return Err(DeviceError::InvalidConfig(
                    "quorums cannot exceed the total weight".into(),
                ));
            }
        }
        Ok(DeviceConfig {
            scheme: self.scheme,
            weights,
            num_blocks: self.num_blocks,
            block_size: self.block_size,
            read_quorum,
            write_quorum,
            failure_tracking: self.failure_tracking,
            journaled: self.journaled,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_build_is_valid() {
        let cfg = DeviceConfig::builder(Scheme::Voting).build().unwrap();
        assert_eq!(cfg.num_sites(), 3);
        assert_eq!(cfg.total_weight(), 6);
        assert_eq!(cfg.read_quorum(), 4);
        assert_eq!(cfg.write_quorum(), 4);
    }

    #[test]
    fn tie_break_applies_only_for_even_n() {
        assert_eq!(Weight::tie_broken(3), vec![Weight::new(2); 3]);
        let even = Weight::tie_broken(4);
        assert_eq!(even[0], Weight::new(3));
        assert!(even[1..].iter().all(|w| *w == Weight::new(2)));
    }

    #[test]
    fn even_n_majority_requires_distinguished_site_on_ties() {
        // 4 sites, weights 3,2,2,2, total 9, majority 5. Any half containing
        // site 0 reaches 3+2=5; the other half reaches only 4.
        let cfg = DeviceConfig::builder(Scheme::Voting)
            .sites(4)
            .build()
            .unwrap();
        assert_eq!(cfg.total_weight(), 9);
        assert_eq!(cfg.write_quorum(), 5);
        let with_s0 =
            cfg.weight(SiteId::new(0)).value() as u64 + cfg.weight(SiteId::new(1)).value() as u64;
        let without_s0 =
            cfg.weight(SiteId::new(2)).value() as u64 + cfg.weight(SiteId::new(3)).value() as u64;
        assert!(with_s0 >= cfg.write_quorum());
        assert!(without_s0 < cfg.write_quorum());
    }

    #[test]
    fn zero_sites_rejected() {
        let err = DeviceConfig::builder(Scheme::Voting)
            .sites(0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("at least one site"));
    }

    #[test]
    fn bad_quorums_rejected_for_voting_only() {
        // read 1 + write 1 on total 6 violates intersection for voting...
        let err = DeviceConfig::builder(Scheme::Voting)
            .read_quorum(1)
            .write_quorum(1)
            .build()
            .unwrap_err();
        assert!(matches!(err, DeviceError::InvalidConfig(_)));
        // ...but available copy ignores quorums entirely.
        assert!(DeviceConfig::builder(Scheme::AvailableCopy)
            .read_quorum(1)
            .write_quorum(1)
            .build()
            .is_ok());
    }

    #[test]
    fn explicit_weights_override_site_count() {
        let cfg = DeviceConfig::builder(Scheme::Voting)
            .sites(10)
            .weights(vec![Weight::new(1), Weight::new(1), Weight::new(1)])
            .build()
            .unwrap();
        assert_eq!(cfg.num_sites(), 3);
        assert_eq!(cfg.total_weight(), 3);
        assert_eq!(cfg.read_quorum(), 2);
    }

    #[test]
    fn gifford_style_asymmetric_quorums_accepted() {
        // total 7; r=2, w=6 satisfies r+w>7 and 2w>7: read-optimized.
        let cfg = DeviceConfig::builder(Scheme::Voting)
            .weights(vec![Weight::new(3), Weight::new(2), Weight::new(2)])
            .read_quorum(2)
            .write_quorum(6)
            .build()
            .unwrap();
        assert_eq!(cfg.read_quorum(), 2);
        assert_eq!(cfg.write_quorum(), 6);
    }

    #[test]
    fn scheme_labels_are_stable() {
        assert_eq!(Scheme::Voting.to_string(), "voting");
        assert_eq!(Scheme::AvailableCopy.to_string(), "available-copy");
        assert_eq!(
            Scheme::NaiveAvailableCopy.to_string(),
            "naive-available-copy"
        );
        assert_eq!(Scheme::ALL.len(), 3);
    }

    #[test]
    fn journaled_defaults_off_and_can_be_flipped() {
        let mut cfg = DeviceConfig::builder(Scheme::Voting).build().unwrap();
        assert!(!cfg.journaled());
        cfg.set_journaled(true);
        assert!(cfg.journaled());
        let cfg = DeviceConfig::builder(Scheme::AvailableCopy)
            .journaled(true)
            .build()
            .unwrap();
        assert!(cfg.journaled());
    }

    #[test]
    fn zero_block_size_rejected() {
        assert!(DeviceConfig::builder(Scheme::Voting)
            .block_size(0)
            .build()
            .is_err());
        assert!(DeviceConfig::builder(Scheme::Voting)
            .num_blocks(0)
            .build()
            .is_err());
    }
}
