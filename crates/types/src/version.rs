//! Per-block version numbers and version vectors.
//!
//! Every consistency scheme in the paper tags each block copy with a
//! monotonically increasing *version number*. A site's *version vector*
//! gathers the version numbers of all its block copies; recovery protocols
//! exchange version vectors to find which blocks went stale while a site was
//! down (§3.2 of the paper).

use crate::BlockIndex;
use core::fmt;

/// Monotonically increasing version number of one block copy.
///
/// A write that gathers versions `v_1..v_m` installs `max(v_i) + 1`, so the
/// copy with the highest version number always holds the most recent data.
///
/// # Examples
///
/// ```
/// use blockrep_types::VersionNumber;
///
/// let v = VersionNumber::ZERO;
/// assert_eq!(v.next(), VersionNumber::new(1));
/// assert!(v < v.next());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VersionNumber(u64);

impl VersionNumber {
    /// The initial version of a freshly formatted block.
    pub const ZERO: VersionNumber = VersionNumber(0);

    /// Creates a version number from its raw value.
    pub const fn new(value: u64) -> Self {
        VersionNumber(value)
    }

    /// Returns the raw numeric value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the successor version, as installed by a successful write.
    ///
    /// # Panics
    ///
    /// Panics on `u64` overflow, which would require 2^64 writes to a single
    /// block.
    pub const fn next(self) -> Self {
        VersionNumber(self.0 + 1)
    }
}

impl fmt::Display for VersionNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u64> for VersionNumber {
    fn from(value: u64) -> Self {
        VersionNumber(value)
    }
}

impl From<VersionNumber> for u64 {
    fn from(value: VersionNumber) -> Self {
        value.0
    }
}

/// The version numbers of every block copy held by one site.
///
/// During recovery a repairing site sends its version vector `v` to an
/// up-to-date site, which answers with its own vector `v'` plus the data of
/// every block whose version differs (Figure 5 of the paper). The vector is
/// indexed by [`BlockIndex`].
///
/// # Examples
///
/// ```
/// use blockrep_types::{BlockIndex, VersionVector};
///
/// let mut ours = VersionVector::new(4);
/// let mut theirs = VersionVector::new(4);
/// theirs.bump(BlockIndex::new(2));
/// let stale = ours.stale_against(&theirs);
/// assert_eq!(stale, vec![BlockIndex::new(2)]);
/// ours.set(BlockIndex::new(2), theirs.get(BlockIndex::new(2)));
/// assert!(ours.stale_against(&theirs).is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VersionVector {
    versions: Vec<VersionNumber>,
}

impl VersionVector {
    /// Creates an all-zero vector covering `num_blocks` blocks.
    pub fn new(num_blocks: u64) -> Self {
        VersionVector {
            versions: vec![VersionNumber::ZERO; num_blocks as usize],
        }
    }

    /// Number of blocks the vector covers.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether the vector covers zero blocks.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Returns the version of block `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn get(&self, k: BlockIndex) -> VersionNumber {
        self.versions[k.index()]
    }

    /// Sets the version of block `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn set(&mut self, k: BlockIndex, v: VersionNumber) {
        self.versions[k.index()] = v;
    }

    /// Increments the version of block `k` and returns the new version.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn bump(&mut self, k: BlockIndex) -> VersionNumber {
        let next = self.versions[k.index()].next();
        self.versions[k.index()] = next;
        next
    }

    /// Blocks whose version in `self` is strictly older than in `other` —
    /// exactly the blocks a recovering site must re-fetch.
    ///
    /// # Panics
    ///
    /// Panics if the vectors cover different numbers of blocks.
    pub fn stale_against(&self, other: &VersionVector) -> Vec<BlockIndex> {
        assert_eq!(
            self.versions.len(),
            other.versions.len(),
            "version vectors must cover the same device"
        );
        self.versions
            .iter()
            .zip(&other.versions)
            .enumerate()
            .filter(|(_, (mine, theirs))| mine < theirs)
            .map(|(i, _)| BlockIndex::new(i as u64))
            .collect()
    }

    /// Blocks whose version in `self` differs from `other` in *either*
    /// direction — the blocks a recovering site must adopt from an
    /// authoritative repair source. A recovering site can be ahead of the
    /// source on a block it installed just before crashing, without the
    /// update ever reaching another site; such an orphaned write was never
    /// acknowledged and must be rolled back to the source's copy, or the
    /// next write at the colliding version would leave the replicas
    /// permanently divergent.
    ///
    /// # Panics
    ///
    /// Panics if the vectors cover different numbers of blocks.
    pub fn divergent_from(&self, other: &VersionVector) -> Vec<BlockIndex> {
        assert_eq!(
            self.versions.len(),
            other.versions.len(),
            "version vectors must cover the same device"
        );
        self.versions
            .iter()
            .zip(&other.versions)
            .enumerate()
            .filter(|(_, (mine, theirs))| mine != theirs)
            .map(|(i, _)| BlockIndex::new(i as u64))
            .collect()
    }

    /// Whether `self` is component-wise `>=` `other`, i.e. at least as
    /// current for every block.
    ///
    /// # Panics
    ///
    /// Panics if the vectors cover different numbers of blocks.
    pub fn dominates(&self, other: &VersionVector) -> bool {
        assert_eq!(self.versions.len(), other.versions.len());
        self.versions
            .iter()
            .zip(&other.versions)
            .all(|(mine, theirs)| mine >= theirs)
    }

    /// Sum of all version numbers; a convenient totally ordered recency
    /// proxy used to pick the most current site among a set whose vectors
    /// are mutually comparable.
    pub fn total(&self) -> u64 {
        self.versions.iter().map(|v| v.as_u64()).sum()
    }

    /// Iterates over `(block, version)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BlockIndex, VersionNumber)> + '_ {
        self.versions
            .iter()
            .enumerate()
            .map(|(i, v)| (BlockIndex::new(i as u64), *v))
    }
}

impl FromIterator<VersionNumber> for VersionVector {
    fn from_iter<T: IntoIterator<Item = VersionNumber>>(iter: T) -> Self {
        VersionVector {
            versions: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for VersionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.versions.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", v.as_u64())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_number_next_is_monotone() {
        let mut v = VersionNumber::ZERO;
        for _ in 0..10 {
            let n = v.next();
            assert!(n > v);
            v = n;
        }
        assert_eq!(v.as_u64(), 10);
    }

    #[test]
    fn version_number_display() {
        assert_eq!(VersionNumber::new(5).to_string(), "v5");
    }

    #[test]
    fn fresh_vectors_are_equal_and_dominate_each_other() {
        let a = VersionVector::new(8);
        let b = VersionVector::new(8);
        assert_eq!(a, b);
        assert!(a.dominates(&b) && b.dominates(&a));
        assert!(a.stale_against(&b).is_empty());
    }

    #[test]
    fn bump_makes_vector_dominate() {
        let mut a = VersionVector::new(4);
        let b = VersionVector::new(4);
        a.bump(BlockIndex::new(1));
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert_eq!(b.stale_against(&a), vec![BlockIndex::new(1)]);
    }

    #[test]
    fn incomparable_vectors_dominate_neither_way() {
        let mut a = VersionVector::new(4);
        let mut b = VersionVector::new(4);
        a.bump(BlockIndex::new(0));
        b.bump(BlockIndex::new(3));
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn stale_against_lists_only_strictly_older() {
        let mut a = VersionVector::new(3);
        let mut b = VersionVector::new(3);
        a.bump(BlockIndex::new(0)); // a newer on b0
        b.bump(BlockIndex::new(1)); // b newer on b1
        a.bump(BlockIndex::new(2));
        b.bump(BlockIndex::new(2)); // equal on b2
        assert_eq!(a.stale_against(&b), vec![BlockIndex::new(1)]);
        assert_eq!(b.stale_against(&a), vec![BlockIndex::new(0)]);
    }

    #[test]
    fn divergent_from_lists_both_directions() {
        let mut a = VersionVector::new(3);
        let mut b = VersionVector::new(3);
        a.bump(BlockIndex::new(0)); // a ahead on b0 (e.g. an orphaned write)
        b.bump(BlockIndex::new(1)); // b ahead on b1
        a.bump(BlockIndex::new(2));
        b.bump(BlockIndex::new(2)); // equal on b2
        assert_eq!(
            a.divergent_from(&b),
            vec![BlockIndex::new(0), BlockIndex::new(1)]
        );
        assert_eq!(a.divergent_from(&a), vec![]);
    }

    #[test]
    fn total_sums_versions() {
        let mut a = VersionVector::new(3);
        a.bump(BlockIndex::new(0));
        a.bump(BlockIndex::new(0));
        a.bump(BlockIndex::new(2));
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn from_iterator_collects() {
        let vv: VersionVector = (0..3).map(VersionNumber::new).collect();
        assert_eq!(vv.len(), 3);
        assert_eq!(vv.get(BlockIndex::new(2)), VersionNumber::new(2));
        assert_eq!(vv.to_string(), "[0 1 2]");
    }

    #[test]
    #[should_panic(expected = "same device")]
    fn mismatched_lengths_panic() {
        let a = VersionVector::new(2);
        let b = VersionVector::new(3);
        let _ = a.stale_against(&b);
    }
}
